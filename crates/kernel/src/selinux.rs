//! The `selinux_state` security switches, §3.2.3 of the paper.
//!
//! Real-world attacks disable SELinux by overwriting `selinux_enforcing` /
//! `ss_initialized` (gathered into `struct selinux_state` in modern
//! kernels). RegVault randomizes every non-lock field of the struct with
//! integrity protection.
//!
//! Guest layout (ciphertext-expanded):
//!
//! ```text
//! +0   lock         u64 (plain — locks are excluded by the paper)
//! +8   enforcing    u32 __rand_integrity
//! +16  initialized  u32 __rand_integrity
//! +24  policy_id    u32 __rand_integrity
//! ```

use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::Kmalloc;
use crate::pfield;

/// Offset of the `enforcing` field.
pub const ENFORCING_OFFSET: u64 = 8;
/// Offset of the `initialized` field.
pub const INITIALIZED_OFFSET: u64 = 16;
/// Offset of the `policy_id` field.
pub const POLICY_ID_OFFSET: u64 = 24;
/// Size of the state object.
pub const STATE_SIZE: u64 = 32;

/// The global `selinux_state` object in guest memory.
#[derive(Debug, Clone)]
pub struct SelinuxState {
    base: u64,
}

impl SelinuxState {
    /// Allocates and initializes the state (enforcing, initialized).
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn new(
        heap: &mut Kmalloc,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
    ) -> Result<Self, KernelError> {
        let base = heap.alloc(STATE_SIZE, 8);
        let state = Self { base };
        machine.kernel_store_u64(base, 0)?; // the (plain) lock word
        state.set_field(machine, cfg, ENFORCING_OFFSET, 1)?;
        state.set_field(machine, cfg, INITIALIZED_OFFSET, 1)?;
        state.set_field(machine, cfg, POLICY_ID_OFFSET, 7)?;
        Ok(state)
    }

    /// Guest address of the state object (the attacker's target).
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    fn set_field(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        offset: u64,
        value: u32,
    ) -> Result<(), KernelError> {
        pfield::write_u32(
            machine,
            cfg,
            cfg.key_policy().data,
            self.base + offset,
            value,
            cfg.non_control,
        )
    }

    fn field(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        offset: u64,
        what: &'static str,
    ) -> Result<u32, KernelError> {
        pfield::read_u32(
            machine,
            cfg.key_policy().data,
            self.base + offset,
            cfg.non_control,
            what,
        )
    }

    /// The access-vector-cache check every security-relevant syscall runs:
    /// returns `Ok(true)` when the operation is permitted.
    ///
    /// Mirrors the kernel logic: if SELinux is not initialized or not
    /// enforcing, everything is permitted — which is exactly why attackers
    /// target these fields.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] when a state field was tampered
    /// with.
    pub fn avc_check(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        permitted_by_policy: bool,
    ) -> Result<bool, KernelError> {
        let initialized = self.field(
            machine,
            cfg,
            INITIALIZED_OFFSET,
            "selinux_state.initialized",
        )?;
        if initialized == 0 {
            return Ok(true);
        }
        let enforcing = self.field(machine, cfg, ENFORCING_OFFSET, "selinux_state.enforcing")?;
        if enforcing == 0 {
            return Ok(true);
        }
        Ok(permitted_by_policy)
    }

    /// Reads the `enforcing` switch.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] on tampering.
    pub fn enforcing(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
    ) -> Result<u32, KernelError> {
        self.field(machine, cfg, ENFORCING_OFFSET, "selinux_state.enforcing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(cfg: &ProtectionConfig) -> (Machine, SelinuxState) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
        let mut heap = Kmalloc::new();
        let state = SelinuxState::new(&mut heap, &mut machine, cfg).unwrap();
        (machine, state)
    }

    #[test]
    fn enforcing_denies_unpermitted_operations() {
        let cfg = ProtectionConfig::full();
        let (mut machine, state) = setup(&cfg);
        assert!(!state.avc_check(&mut machine, &cfg, false).unwrap());
        assert!(state.avc_check(&mut machine, &cfg, true).unwrap());
    }

    #[test]
    fn selinux_bypass_by_overwrite_is_detected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, state) = setup(&cfg);
        // The Di Shen attack: zero `initialized` to disable SELinux.
        machine
            .memory_mut()
            .write_u64(state.base() + INITIALIZED_OFFSET, 0)
            .unwrap();
        assert!(matches!(
            state.avc_check(&mut machine, &cfg, false),
            Err(KernelError::IntegrityViolation {
                what: "selinux_state.initialized"
            })
        ));
    }

    #[test]
    fn selinux_bypass_succeeds_without_protection() {
        let cfg = ProtectionConfig::off();
        let (mut machine, state) = setup(&cfg);
        machine
            .memory_mut()
            .write_u64(state.base() + INITIALIZED_OFFSET, 0)
            .unwrap();
        // Everything is now permitted — the bypass works on the baseline.
        assert!(state.avc_check(&mut machine, &cfg, false).unwrap());
    }

    #[test]
    fn enforcing_zeroing_is_detected_when_protected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, state) = setup(&cfg);
        machine
            .memory_mut()
            .write_u64(state.base() + ENFORCING_OFFSET, 0)
            .unwrap();
        assert!(state.avc_check(&mut machine, &cfg, false).is_err());
    }
}
