//! Chain-based interrupt context protection (CIP), §2.4.3 of the paper.
//!
//! On an interrupt the kernel stores all general-purpose registers to the
//! interrupt context in memory, where an attacker can leak or corrupt them
//! (the "time-of-derandomize-to-time-of-use" window, §4.3.2). CIP encrypts
//! the context *as a chain*: register `i` is encrypted with the previous
//! register's **plaintext** value as tweak (the first tweak is the storing
//! address, defeating spatial substitution), and a trailing encrypted zero
//! closes the chain. Corrupting any block in the middle garbles every
//! subsequent decryption, so the final zero check catches it. A dedicated
//! per-thread key register defeats cross-data-type and cross-thread
//! substitution.
//!
//! With nonce-diversified rekey enabled
//! ([`regvault_sim::MachineConfig::epoch_rekey`]) every save additionally
//! issues a fresh rekey epoch for the CIP key and parks the nonce — in
//! plaintext — in a dedicated frame slot past the terminator; the matching
//! restore reads it back and re-installs it before decrypting. The epoch is
//! folded into every tweak by the engine, so two saves of identical
//! register values at the same frame produce unlinkable ciphertexts (the
//! ciphertext side-channel mitigation, DESIGN.md §16). The nonce itself
//! needs no secrecy — it is a diversifier, not a key — and tampering with
//! it garbles the whole chain, which the terminator check catches.

use regvault_isa::{ByteRange, KeyReg, Reg};
use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;

/// Number of saved general-purpose registers (`x1`–`x31`).
pub const SAVED_REGS: usize = 31;

/// Frame slots: the saved registers plus the trailing integrity zero.
pub const FRAME_SLOTS: usize = SAVED_REGS + 1;

/// Byte offset of the plaintext rekey-epoch nonce within the frame (one
/// slot past the chain terminator). Written on save and consumed on restore
/// only when the machine's `epoch_rekey` knob is on; otherwise it stays
/// zero.
pub const NONCE_SLOT: u64 = (FRAME_SLOTS as u64) * 8;

/// Frame size in bytes (chain slots plus the nonce slot).
pub const FRAME_SIZE: u64 = NONCE_SLOT + 8;

/// Saves the hart's register file into the interrupt frame at `frame`.
///
/// With `cip` enabled the frame is chain-encrypted as described above;
/// otherwise registers are stored in plaintext (the baseline the paper
/// attacks).
///
/// # Errors
///
/// Propagates guest-memory faults.
pub fn save_context(
    machine: &mut Machine,
    cfg: &ProtectionConfig,
    key: KeyReg,
    frame: u64,
) -> Result<(), KernelError> {
    let regs = machine.hart().regs();
    if cfg.cip {
        machine.trace_emit(regvault_sim::TraceEvent::CipOpen { frame });
        if machine.epoch_rekey() {
            // Fresh epoch per save: the engine folds it into every tweak
            // below, so this frame's ciphertexts are unlinkable to any
            // earlier save of the same values. The nonce is parked in
            // plaintext for the matching restore.
            let nonce = machine.issue_key_epoch(key);
            machine.kernel_store_u64(frame + NONCE_SLOT, nonce)?;
        }
        let mut tweak = frame;
        for i in 0..SAVED_REGS {
            let value = regs[i + 1]; // skip x0
            let ct = machine.kernel_encrypt(key, tweak, value, ByteRange::FULL);
            machine.kernel_store_u64(frame + 8 * i as u64, ct)?;
            tweak = value;
        }
        let terminator = machine.kernel_encrypt(key, tweak, 0, ByteRange::FULL);
        machine.kernel_store_u64(frame + 8 * SAVED_REGS as u64, terminator)?;
    } else {
        for i in 0..SAVED_REGS {
            machine.kernel_store_u64(frame + 8 * i as u64, regs[i + 1])?;
        }
        machine.kernel_store_u64(frame + 8 * SAVED_REGS as u64, 0)?;
    }
    Ok(())
}

/// Restores a register file from the interrupt frame at `frame`.
///
/// # Errors
///
/// [`KernelError::IntegrityViolation`] when the chain's trailing zero does
/// not decrypt to zero — i.e. any saved register was corrupted in memory.
pub fn restore_context(
    machine: &mut Machine,
    cfg: &ProtectionConfig,
    key: KeyReg,
    frame: u64,
) -> Result<[u64; SAVED_REGS], KernelError> {
    let mut regs = [0u64; SAVED_REGS];
    if cfg.cip {
        if machine.epoch_rekey() {
            // Re-install the epoch the matching save issued. A tampered
            // nonce garbles the whole chain and is caught by the
            // terminator check like any other frame corruption.
            let nonce = machine.kernel_load_u64(frame + NONCE_SLOT)?;
            machine.set_key_epoch(key, nonce);
        }
        // Full-range decrypts have no redundancy and never fail the zero
        // check themselves; corruption anywhere in the chain garbles every
        // later plaintext and is caught by the terminator below. Taking the
        // garbled plaintext from the error arm keeps the chain semantics
        // intact even if a hardware fault (e.g. a poisoned CLB entry) makes
        // a full-range decrypt report a failure.
        let mut tweak = frame;
        for (i, slot) in regs.iter_mut().enumerate() {
            let ct = machine.kernel_load_u64(frame + 8 * i as u64)?;
            let value = machine
                .kernel_decrypt(key, tweak, ct, ByteRange::FULL)
                .unwrap_or_else(|garbled| garbled);
            *slot = value;
            tweak = value;
        }
        let terminator_ct = machine.kernel_load_u64(frame + 8 * SAVED_REGS as u64)?;
        let terminator = machine
            .kernel_decrypt(key, tweak, terminator_ct, ByteRange::FULL)
            .unwrap_or_else(|garbled| garbled);
        if terminator != 0 {
            return Err(KernelError::IntegrityViolation {
                what: "interrupt context",
            });
        }
        machine.trace_emit(regvault_sim::TraceEvent::CipClose { frame });
    } else {
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = machine.kernel_load_u64(frame + 8 * i as u64)?;
        }
    }
    Ok(regs)
}

/// Writes a restored register file back into the hart.
pub fn apply_to_hart(machine: &mut Machine, regs: &[u64; SAVED_REGS]) {
    for (i, &value) in regs.iter().enumerate() {
        let reg = Reg::from_index((i + 1) as u8).expect("x1..x31");
        machine.hart_mut().set_reg(reg, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_sim::MachineConfig;

    fn machine_with_regs() -> Machine {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::C, 0xC0, 0xC1).unwrap();
        for i in 1..32u8 {
            let reg = Reg::from_index(i).unwrap();
            machine.hart_mut().set_reg(reg, 0x1000 + u64::from(i) * 7);
        }
        machine
    }

    const FRAME: u64 = 0xFFFF_FFC0_0900_0000;

    #[test]
    fn save_restore_round_trip_with_cip() {
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_regs();
        let expected = machine.hart().regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        // Clobber the registers, then restore.
        for i in 1..32u8 {
            machine.hart_mut().set_reg(Reg::from_index(i).unwrap(), 0);
        }
        let regs = restore_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        apply_to_hart(&mut machine, &regs);
        assert_eq!(machine.hart().regs(), expected);
    }

    #[test]
    fn frame_is_randomized_with_cip() {
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_regs();
        let ra = machine.hart().reg(Reg::Ra);
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        assert_ne!(machine.memory().read_u64(FRAME).unwrap(), ra);
    }

    #[test]
    fn frame_is_plaintext_without_cip() {
        let cfg = ProtectionConfig::off();
        let mut machine = machine_with_regs();
        let ra = machine.hart().reg(Reg::Ra);
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        assert_eq!(machine.memory().read_u64(FRAME).unwrap(), ra);
    }

    #[test]
    fn corrupting_any_slot_is_detected() {
        let cfg = ProtectionConfig::full();
        for slot in [0usize, 7, 15, 30, 31] {
            let mut machine = machine_with_regs();
            save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
            let addr = FRAME + 8 * slot as u64;
            let ct = machine.memory().read_u64(addr).unwrap();
            machine.memory_mut().write_u64(addr, ct ^ 0xFF00).unwrap();
            assert!(
                matches!(
                    restore_context(&mut machine, &cfg, KeyReg::C, FRAME),
                    Err(KernelError::IntegrityViolation { .. })
                ),
                "corruption of slot {slot} must be caught"
            );
        }
    }

    #[test]
    fn corruption_is_silent_without_cip() {
        let cfg = ProtectionConfig::off();
        let mut machine = machine_with_regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        machine.memory_mut().write_u64(FRAME, 0x4141).unwrap();
        let regs = restore_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        assert_eq!(regs[0], 0x4141, "attacker controls the restored ra");
    }

    fn epoch_machine_with_regs() -> Machine {
        let mut machine = Machine::new(MachineConfig {
            epoch_rekey: true,
            ..MachineConfig::default()
        });
        machine.write_key_register(KeyReg::C, 0xC0, 0xC1).unwrap();
        for i in 1..32u8 {
            let reg = Reg::from_index(i).unwrap();
            machine.hart_mut().set_reg(reg, 0x1000 + u64::from(i) * 7);
        }
        machine
    }

    fn frame_bytes(machine: &Machine) -> Vec<u64> {
        (0..SAVED_REGS as u64 + 1)
            .map(|i| machine.memory().read_u64(FRAME + 8 * i).unwrap())
            .collect()
    }

    #[test]
    fn rekey_round_trip_and_diversified_resave() {
        let cfg = ProtectionConfig::full();
        let mut machine = epoch_machine_with_regs();
        let expected = machine.hart().regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        let first = frame_bytes(&machine);
        // Identical registers, identical frame: without the mitigation this
        // second save would be byte-identical; with it, every slot differs.
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        let second = frame_bytes(&machine);
        assert!(
            first.iter().zip(&second).all(|(a, b)| a != b),
            "every chain slot must be rekeyed"
        );
        let regs = restore_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        apply_to_hart(&mut machine, &regs);
        assert_eq!(machine.hart().regs(), expected);
    }

    #[test]
    fn tampered_nonce_is_detected() {
        let cfg = ProtectionConfig::full();
        let mut machine = epoch_machine_with_regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        let nonce = machine.memory().read_u64(FRAME + NONCE_SLOT).unwrap();
        machine
            .memory_mut()
            .write_u64(FRAME + NONCE_SLOT, nonce ^ 1)
            .unwrap();
        assert!(matches!(
            restore_context(&mut machine, &cfg, KeyReg::C, FRAME),
            Err(KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn rekey_off_never_issues_an_epoch() {
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        assert_eq!(machine.engine().epoch(KeyReg::C), 0);
        assert_eq!(machine.memory().read_u64(FRAME + NONCE_SLOT).unwrap(), 0);
    }

    #[test]
    fn swapping_frame_blocks_is_detected() {
        // Chain tweaks make in-frame reordering detectable too.
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_regs();
        save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
        let a = machine.memory().read_u64(FRAME + 8).unwrap();
        let b = machine.memory().read_u64(FRAME + 16).unwrap();
        machine.memory_mut().write_u64(FRAME + 8, b).unwrap();
        machine.memory_mut().write_u64(FRAME + 16, a).unwrap();
        assert!(restore_context(&mut machine, &cfg, KeyReg::C, FRAME).is_err());
    }
}
