//! A miniature operating-system kernel protected by RegVault.
//!
//! The RegVault paper applies its hardware/compiler machinery to Linux
//! v5.8.18, protecting six classes of sensitive kernel data (Table 2):
//!
//! | data | tweak | mechanism |
//! |---|---|---|
//! | return addresses | stack pointer | per-thread key, prologue/epilogue |
//! | function pointers | storage address | dedicated key, load/store instrumentation |
//! | kernel keys | storage address | manual instrumentation of the crypto subsystem |
//! | `cred` (uid/gid) | storage address | `__rand_integrity` annotation |
//! | `selinux_state` | storage address | `__rand_integrity` annotation |
//! | PGD pointers | storage address | `pgd_t` annotation |
//!
//! This crate rebuilds the protected substrate as a miniature kernel whose
//! state lives entirely in the simulated machine's guest memory — so the
//! paper's attacker (arbitrary kernel-memory read/write, §2.1) is exactly
//! reproducible — while its control logic runs in Rust, charging simulated
//! cycles and executing every cryptographic operation on the real
//! [`regvault_sim`] crypto-engine (so overhead and CLB behaviour are
//! measured, not estimated).
//!
//! Subsystems:
//!
//! * [`thread`] — threads, per-thread wrapped keys, context switches;
//! * [`trap`] — chain-based interrupt context protection (CIP, §2.4.3);
//! * [`cred`] — user credentials with integrity randomization (§3.2.2);
//! * [`selinux`] — the `selinux_state` security switches (§3.2.3);
//! * [`keyring`] + [`aes`] — kernel keys kept encrypted in memory and an
//!   AES-128 engine that unwraps them only into registers (§3.2.1);
//! * [`pgd`] — page-table directory pointers randomized by address
//!   (§3.2.4);
//! * [`fs`] — a small in-memory VFS with function-pointer dispatch tables
//!   (the function-pointer protection target, §3.1.2) and pipes;
//! * [`syscall`] — the syscall layer used by the benchmark workloads.
//!
//! # Examples
//!
//! Boot a fully protected kernel and exercise a syscall:
//!
//! ```
//! use regvault_kernel::{Kernel, KernelConfig, ProtectionConfig};
//!
//! # fn main() -> Result<(), regvault_kernel::KernelError> {
//! let mut kernel = Kernel::boot(KernelConfig {
//!     protection: ProtectionConfig::full(),
//!     ..KernelConfig::default()
//! })?;
//! let uid = kernel.sys_getuid()?;
//! assert_eq!(uid, 1000, "init thread runs as uid 1000");
//! kernel.sys_setuid(0).expect_err("non-root cannot setuid");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
mod config;
pub mod cred;
mod error;
pub mod fs;
mod kernel;
pub mod keyring;
pub mod layout;
mod pfield;
pub mod pgd;
mod rotate;
pub mod selinux;
pub mod signal;
pub mod syscall;
pub mod thread;
pub mod trap;

pub use config::{KernelConfig, ProtectionConfig};
pub use error::KernelError;
pub use kernel::{FailOver, Kernel, RecoveryStats};
pub use rotate::RotationReport;
pub use syscall::Sysno;
