//! Guest physical memory map.
//!
//! Everything the kernel owns lives in guest memory so the paper's attacker
//! model (arbitrary kernel-memory read/write) applies byte-for-byte. The
//! map mirrors the RISC-V Linux convention of a high kernel half; the
//! simulator's sparse memory makes the gaps free.

/// Base of user program text.
pub const USER_CODE_BASE: u64 = 0x0000_0000_0040_0000;

/// Top of the user stack (grows down).
pub const USER_STACK_TOP: u64 = 0x0000_0000_7FF0_0000;

/// Size mapped for the user stack.
pub const USER_STACK_SIZE: u64 = 0x4_0000;

/// Base of the kernel data heap (`kmalloc` arena).
pub const KERNEL_HEAP_BASE: u64 = 0xFFFF_FFC0_0000_0000;

/// Base of per-thread kernel stacks.
pub const KERNEL_STACK_BASE: u64 = 0xFFFF_FFC0_1000_0000;

/// Bytes per kernel stack.
pub const KERNEL_STACK_SIZE: u64 = 0x4000;

/// Base of the page-table (PGD/PT) arena.
pub const PAGE_TABLE_BASE: u64 = 0xFFFF_FFC0_2000_0000;

/// Synthetic kernel text base, used to fabricate realistic return-address
/// values for the RA-protection model.
pub const KERNEL_TEXT_BASE: u64 = 0xFFFF_FFFF_8000_0000;

/// A bump allocator over the kernel heap.
///
/// # Examples
///
/// ```
/// use regvault_kernel::layout::{Kmalloc, KERNEL_HEAP_BASE};
///
/// let mut heap = Kmalloc::new();
/// let a = heap.alloc(24, 8);
/// let b = heap.alloc(100, 8);
/// assert_eq!(a, KERNEL_HEAP_BASE);
/// assert!(b >= a + 24);
/// assert_eq!(b % 8, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Kmalloc {
    next: u64,
}

impl Default for Kmalloc {
    fn default() -> Self {
        Self::new()
    }
}

impl Kmalloc {
    /// A fresh arena starting at [`KERNEL_HEAP_BASE`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: KERNEL_HEAP_BASE,
        }
    }

    /// Allocates `size` bytes at `align` alignment; never fails (the arena
    /// is terabytes of sparse address space).
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        let addr = self.next.next_multiple_of(align);
        self.next = addr + size;
        addr
    }

    /// Bytes allocated so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next - KERNEL_HEAP_BASE
    }
}

/// Kernel stack pointer for thread `tid` (top of its stack).
#[must_use]
pub fn kernel_stack_top(tid: u32) -> u64 {
    KERNEL_STACK_BASE + (u64::from(tid) + 1) * KERNEL_STACK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmalloc_respects_alignment() {
        let mut heap = Kmalloc::new();
        heap.alloc(3, 1);
        let addr = heap.alloc(8, 64);
        assert_eq!(addr % 64, 0);
    }

    #[test]
    fn stacks_do_not_overlap() {
        let a = kernel_stack_top(0);
        let b = kernel_stack_top(1);
        assert_eq!(b - a, KERNEL_STACK_SIZE);
    }

    #[test]
    fn used_tracks_allocation() {
        let mut heap = Kmalloc::new();
        assert_eq!(heap.used(), 0);
        heap.alloc(16, 8);
        assert_eq!(heap.used(), 16);
    }
}
