//! Key rotation: periodic re-randomization of protected kernel data.
//!
//! The paper's related work discusses CoDaRR, which re-randomizes DSR
//! masks periodically to limit what a leaked ciphertext is worth. RegVault
//! already rotates the per-thread RA/CIP keys on every context switch;
//! this module adds the analogous operation for the *shared* domains (the
//! data key `d` and the function-pointer key `b`): generate fresh keys,
//! decrypt every protected object under the old key, re-encrypt under the
//! new one, and only then install the new keys in the hardware registers
//! (which also invalidates the stale CLB entries).
//!
//! The sequence stays inside the paper's key-access rules (the kernel may
//! *write* general key registers but never read any): the fresh key value
//! is generated in software, installed into a spare register, each block
//! is `crd`-decrypted under the old register and `cre`-encrypted under the
//! spare, and finally the same fresh value is written into the domain's
//! own register.
//!
//! After a rotation, any ciphertext an attacker recorded earlier is dead:
//! replaying it decrypts to garbage or trips the integrity check.

use regvault_isa::{ByteRange, KeyReg};

use crate::error::KernelError;
use crate::kernel::Kernel;

/// Spare key register used to stage the new data key during a rotation.
const DATA_STAGING: KeyReg = KeyReg::F;
/// Spare key register used to stage the new function-pointer key.
const FN_PTR_STAGING: KeyReg = KeyReg::G;

/// Statistics from one rotation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RotationReport {
    /// 64-bit blocks re-encrypted under the data key.
    pub data_blocks: u64,
    /// 64-bit blocks re-encrypted under the function-pointer key.
    pub fn_ptr_blocks: u64,
}

impl Kernel {
    /// Rotates the data and function-pointer keys, re-encrypting every
    /// protected object in place (no-op on configurations that do not
    /// protect the respective domain).
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] if any protected object fails
    /// its integrity check during re-encryption — i.e. the rotation also
    /// audits the whole protected working set.
    pub fn rotate_shared_keys(&mut self) -> Result<RotationReport, KernelError> {
        let cfg = self.protection();
        let mut report = RotationReport::default();

        if cfg.non_control {
            // Generate the fresh key, install it in the staging register
            // (the kernel knows the value it generated — it just can never
            // read it back out of a register).
            let (w0, k0) = (self.rng_gen(), self.rng_gen());
            self.machine_mut()
                .write_key_register(DATA_STAGING, w0, k0)
                .expect("staging key is general-purpose");
            report.data_blocks = self.reencrypt_data_domain(cfg.key_policy().data, DATA_STAGING)?;
            self.machine_mut()
                .write_key_register(cfg.key_policy().data, w0, k0)
                .expect("data key is general-purpose");
            // Hygiene: scrub the staging register.
            self.machine_mut()
                .write_key_register(DATA_STAGING, 0, 0)
                .expect("staging key is general-purpose");
        }
        if cfg.fp {
            let (w0, k0) = (self.rng_gen(), self.rng_gen());
            self.machine_mut()
                .write_key_register(FN_PTR_STAGING, w0, k0)
                .expect("staging key is general-purpose");
            report.fn_ptr_blocks =
                self.reencrypt_fn_ptr_domain(cfg.key_policy().fn_ptr, FN_PTR_STAGING)?;
            self.machine_mut()
                .write_key_register(cfg.key_policy().fn_ptr, w0, k0)
                .expect("fn-ptr key is general-purpose");
            self.machine_mut()
                .write_key_register(FN_PTR_STAGING, 0, 0)
                .expect("staging key is general-purpose");
        }
        Ok(report)
    }

    /// Re-encrypts one 64-bit block in place via `crd` (old register) and
    /// `cre` (staging register) — the plaintext exists only in registers.
    fn reencrypt_block(
        &mut self,
        old: KeyReg,
        staging: KeyReg,
        addr: u64,
        range: ByteRange,
        what: &'static str,
    ) -> Result<(), KernelError> {
        let ct = self.machine_mut().kernel_load_u64(addr)?;
        let pt = self
            .machine_mut()
            .kernel_decrypt(old, addr, ct, range)
            .map_err(|_| KernelError::IntegrityViolation { what })?;
        let new_ct = self.machine_mut().kernel_encrypt(staging, addr, pt, range);
        self.machine_mut().kernel_store_u64(addr, new_ct)?;
        Ok(())
    }

    fn reencrypt_data_domain(&mut self, old: KeyReg, new: KeyReg) -> Result<u64, KernelError> {
        let mut blocks = 0;
        // Credentials of every live thread: four u32 fields + the split
        // 64-bit session token.
        for tid in 0..crate::thread::MAX_THREADS {
            if self.threads.state(tid) == crate::thread::ThreadState::Free {
                continue;
            }
            let base = self.creds.cred_addr(tid);
            for offset in [
                crate::cred::UID_OFFSET,
                crate::cred::GID_OFFSET,
                crate::cred::EUID_OFFSET,
                crate::cred::EGID_OFFSET,
            ] {
                self.reencrypt_block(old, new, base + offset, ByteRange::LOW32, "cred")?;
                blocks += 1;
            }
            self.reencrypt_block(
                old,
                new,
                base + crate::cred::SESSION_OFFSET,
                ByteRange::LOW32,
                "cred.session",
            )?;
            self.reencrypt_block(
                old,
                new,
                base + crate::cred::SESSION_OFFSET + 8,
                ByteRange::HIGH32,
                "cred.session",
            )?;
            blocks += 2;
        }
        // SELinux state.
        for offset in [
            crate::selinux::ENFORCING_OFFSET,
            crate::selinux::INITIALIZED_OFFSET,
            crate::selinux::POLICY_ID_OFFSET,
        ] {
            self.reencrypt_block(
                old,
                new,
                self.selinux.base() + offset,
                ByteRange::LOW32,
                "selinux_state",
            )?;
            blocks += 1;
        }
        // Keyring material (confidentiality-only blocks).
        for index in 0..self.keyring.count() {
            let entry = self.keyring.entry_addr(index);
            for offset in [8u64, 16] {
                self.reencrypt_block(old, new, entry + offset, ByteRange::FULL, "keyring")?;
                blocks += 1;
            }
        }
        // PGD entries (confidentiality-only pointers).
        for slot in self.page_tables.live_pgd_slots(self.machine())? {
            self.reencrypt_block(old, new, slot, ByteRange::FULL, "pgd entry")?;
            blocks += 1;
        }
        Ok(blocks)
    }

    fn reencrypt_fn_ptr_domain(&mut self, old: KeyReg, new: KeyReg) -> Result<u64, KernelError> {
        let mut blocks = 0;
        let mut slots: Vec<u64> = Vec::new();
        for op in [
            crate::fs::FileOp::Read,
            crate::fs::FileOp::Write,
            crate::fs::FileOp::Stat,
        ] {
            slots.push(self.fs.file_ops.slot_addr(op));
            slots.push(self.fs.pipe_ops.slot_addr(op));
        }
        for slot in 0..8u64 {
            slots.push(self.ops_table_slot(slot));
        }
        for tid in 0..crate::thread::MAX_THREADS {
            if self.threads.state(tid) == crate::thread::ThreadState::Free {
                continue;
            }
            for signo in 0..crate::signal::NUM_SIGNALS {
                slots.push(self.signals.handler_slot(tid, signo));
            }
        }
        for slot in slots {
            self.reencrypt_block(old, new, slot, ByteRange::FULL, "fn ptr")?;
            blocks += 1;
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kernel, KernelConfig, ProtectionConfig, Sysno};

    fn kernel() -> Kernel {
        Kernel::boot(KernelConfig {
            protection: ProtectionConfig::full(),
            ..KernelConfig::default()
        })
        .expect("boot")
    }

    #[test]
    fn rotation_preserves_all_functional_state() {
        let mut k = kernel();
        let key_ptr = 0x20_0000u64;
        k.machine_mut()
            .memory_mut()
            .write_slice(key_ptr, b"0123456789abcdef");
        let serial = k.dispatch(Sysno::AddKey as u64, [key_ptr, 0, 0]).unwrap();
        k.dispatch(Sysno::Mmap as u64, [0x5000_0000, 0, 0]).unwrap();

        let report = k.rotate_shared_keys().unwrap();
        assert!(report.data_blocks > 0);
        assert!(report.fn_ptr_blocks > 0);

        // Everything still reads correctly under the new keys.
        assert_eq!(k.sys_getuid().unwrap(), 1000);
        let cfg = k.protection();
        let ring = k.keyring.clone();
        assert_eq!(
            ring.load_key(k.machine_mut(), &cfg, serial).unwrap(),
            *b"0123456789abcdef"
        );
        let tables = k.page_tables.clone();
        assert_eq!(
            tables.walk(k.machine_mut(), &cfg, 0x5000_0000).unwrap(),
            0xE000_0000, // mmap maps paddr 0x9000_0000 + (vaddr & 0xFFFFF000)
        );
        let fops = k.fs.file_ops;
        assert_eq!(
            fops.resolve(k.machine_mut(), &cfg, crate::fs::FileOp::Read)
                .unwrap(),
            crate::fs::handlers::FILE_READ
        );
    }

    #[test]
    fn recorded_ciphertexts_die_at_rotation() {
        let mut k = kernel();
        let uid_addr = k.creds.cred_addr(0) + crate::cred::UID_OFFSET;
        let recorded = k.machine().memory().read_u64(uid_addr).unwrap();

        k.rotate_shared_keys().unwrap();

        // Replaying the pre-rotation ciphertext now fails integrity.
        k.machine_mut()
            .memory_mut()
            .write_u64(uid_addr, recorded)
            .unwrap();
        assert!(matches!(
            k.dispatch(Sysno::Getuid as u64, [0; 3]),
            Err(crate::KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn rotation_changes_every_stored_block() {
        let mut k = kernel();
        let uid_addr = k.creds.cred_addr(0) + crate::cred::UID_OFFSET;
        let fptr_addr = k.fs.file_ops.slot_addr(crate::fs::FileOp::Read);
        let before = (
            k.machine().memory().read_u64(uid_addr).unwrap(),
            k.machine().memory().read_u64(fptr_addr).unwrap(),
        );
        k.rotate_shared_keys().unwrap();
        let after = (
            k.machine().memory().read_u64(uid_addr).unwrap(),
            k.machine().memory().read_u64(fptr_addr).unwrap(),
        );
        assert_ne!(before.0, after.0);
        assert_ne!(before.1, after.1);
    }

    #[test]
    fn rotation_audits_tampered_state() {
        let mut k = kernel();
        let uid_addr = k.creds.cred_addr(0) + crate::cred::UID_OFFSET;
        k.machine_mut()
            .memory_mut()
            .write_u64(uid_addr, 0x41)
            .unwrap();
        assert!(matches!(
            k.rotate_shared_keys(),
            Err(crate::KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn rotation_is_a_noop_for_unprotected_kernels() {
        let mut k = Kernel::boot(KernelConfig {
            protection: ProtectionConfig::off(),
            ..KernelConfig::default()
        })
        .unwrap();
        let report = k.rotate_shared_keys().unwrap();
        assert_eq!(report, RotationReport::default());
    }
}
