//! Kernel error type.

use std::error::Error;
use std::fmt;

use regvault_sim::{ExceptionCause, SimError};

/// Errors surfaced by kernel operations.
///
/// `IntegrityViolation` is the interesting one for the security evaluation:
/// it is the kernel-visible form of the hardware `crd` integrity exception,
/// raised when an attacker corrupted or substituted protected data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A `crd` integrity check failed while accessing protected data.
    IntegrityViolation {
        /// Which object tripped the check (e.g. `"cred.uid"`).
        what: &'static str,
    },
    /// The caller lacks the required credentials.
    PermissionDenied,
    /// Unknown file, key, or object.
    NotFound,
    /// Invalid descriptor or handle.
    BadHandle,
    /// Invalid argument.
    InvalidArgument,
    /// Out of a fixed kernel resource (threads, fds, keys, pages).
    ResourceExhausted,
    /// A guest memory access faulted inside a kernel operation.
    MemoryFault(ExceptionCause),
    /// The simulated user program failed.
    UserFault {
        /// The architectural cause.
        cause: ExceptionCause,
        /// Faulting pc.
        pc: u64,
    },
    /// Run budget exceeded while executing user code.
    StepLimit,
    /// Unknown syscall number.
    BadSyscall(u64),
    /// An indirect call landed outside any known handler — the observable
    /// effect of jumping through a corrupted (and, under RegVault,
    /// garbled) function pointer.
    WildJump {
        /// Where control flow would have gone.
        target: u64,
    },
    /// A simulator-level failure (e.g. a watchdog timeout on a wedged
    /// guest) that is not attributable to a single guest instruction.
    Sim(SimError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::IntegrityViolation { what } => {
                write!(f, "regvault integrity violation on {what}")
            }
            KernelError::PermissionDenied => f.write_str("permission denied"),
            KernelError::NotFound => f.write_str("not found"),
            KernelError::BadHandle => f.write_str("bad handle"),
            KernelError::InvalidArgument => f.write_str("invalid argument"),
            KernelError::ResourceExhausted => f.write_str("resource exhausted"),
            KernelError::MemoryFault(cause) => write!(f, "kernel memory fault: {cause}"),
            KernelError::UserFault { cause, pc } => {
                write!(f, "user fault at {pc:#x}: {cause}")
            }
            KernelError::StepLimit => f.write_str("step limit exceeded"),
            KernelError::BadSyscall(num) => write!(f, "bad syscall number {num}"),
            KernelError::WildJump { target } => {
                write!(f, "indirect call to unknown target {target:#x}")
            }
            KernelError::Sim(err) => write!(f, "simulator error: {err}"),
        }
    }
}

impl Error for KernelError {}

impl From<ExceptionCause> for KernelError {
    fn from(cause: ExceptionCause) -> Self {
        KernelError::MemoryFault(cause)
    }
}

impl From<SimError> for KernelError {
    fn from(err: SimError) -> Self {
        KernelError::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_violation_names_the_object() {
        let err = KernelError::IntegrityViolation { what: "cred.uid" };
        assert_eq!(err.to_string(), "regvault integrity violation on cred.uid");
    }

    #[test]
    fn memory_faults_convert() {
        let err: KernelError = ExceptionCause::LoadAccessFault.into();
        assert!(matches!(err, KernelError::MemoryFault(_)));
    }
}
