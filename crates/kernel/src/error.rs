//! Kernel error type.

use std::error::Error;
use std::fmt;

use regvault_sim::{ExceptionCause, SimError};

use crate::kernel::RecoveryStats;

/// Errors surfaced by kernel operations.
///
/// `IntegrityViolation` is the interesting one for the security evaluation:
/// it is the kernel-visible form of the hardware `crd` integrity exception,
/// raised when an attacker corrupted or substituted protected data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A `crd` integrity check failed while accessing protected data.
    IntegrityViolation {
        /// Which object tripped the check (e.g. `"cred.uid"`).
        what: &'static str,
    },
    /// The caller lacks the required credentials.
    PermissionDenied,
    /// Unknown file, key, or object.
    NotFound,
    /// Invalid descriptor or handle.
    BadHandle,
    /// Invalid argument.
    InvalidArgument,
    /// Out of a fixed kernel resource (fds, keys, pages).
    ResourceExhausted,
    /// The thread table has no free slot. Distinct from
    /// [`KernelError::ResourceExhausted`] so a supervisor can classify a
    /// denied respawn as a *degradation event* (back off, try later)
    /// rather than a generic exhaustion.
    ThreadTableFull,
    /// A guest memory access faulted inside a kernel operation.
    MemoryFault(ExceptionCause),
    /// The simulated user program failed.
    UserFault {
        /// The architectural cause.
        cause: ExceptionCause,
        /// Faulting pc.
        pc: u64,
    },
    /// Run budget exceeded while executing user code.
    StepLimit,
    /// Unknown syscall number.
    BadSyscall(u64),
    /// An indirect call landed outside any known handler — the observable
    /// effect of jumping through a corrupted (and, under RegVault,
    /// garbled) function pointer.
    WildJump {
        /// Where control flow would have gone.
        target: u64,
    },
    /// A simulator-level failure that is not attributable to a single
    /// guest instruction.
    Sim(SimError),
    /// The step-budget watchdog fired while executing user code. Unlike
    /// [`KernelError::Sim`], this carries the recovery counters accumulated
    /// up to the cutoff, so a truncated run is still diagnosable — the
    /// campaign can tell "wedged after surviving three traps" from "wedged
    /// immediately".
    Timeout {
        /// The armed watchdog budget that was exhausted.
        budget: u64,
        /// Recovery counters at the moment the watchdog fired.
        recovery: RecoveryStats,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::IntegrityViolation { what } => {
                write!(f, "regvault integrity violation on {what}")
            }
            KernelError::PermissionDenied => f.write_str("permission denied"),
            KernelError::NotFound => f.write_str("not found"),
            KernelError::BadHandle => f.write_str("bad handle"),
            KernelError::InvalidArgument => f.write_str("invalid argument"),
            KernelError::ResourceExhausted => f.write_str("resource exhausted"),
            KernelError::ThreadTableFull => f.write_str("thread table full"),
            KernelError::MemoryFault(cause) => write!(f, "kernel memory fault: {cause}"),
            KernelError::UserFault { cause, pc } => {
                write!(f, "user fault at {pc:#x}: {cause}")
            }
            KernelError::StepLimit => f.write_str("step limit exceeded"),
            KernelError::BadSyscall(num) => write!(f, "bad syscall number {num}"),
            KernelError::WildJump { target } => {
                write!(f, "indirect call to unknown target {target:#x}")
            }
            KernelError::Sim(err) => write!(f, "simulator error: {err}"),
            KernelError::Timeout { budget, recovery } => write!(
                f,
                "watchdog timeout after {budget} work units \
                 (quarantined {}, respawned {}, traps survived {})",
                recovery.quarantined, recovery.respawned, recovery.traps_survived
            ),
        }
    }
}

impl Error for KernelError {}

impl From<ExceptionCause> for KernelError {
    fn from(cause: ExceptionCause) -> Self {
        KernelError::MemoryFault(cause)
    }
}

impl From<SimError> for KernelError {
    fn from(err: SimError) -> Self {
        KernelError::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_violation_names_the_object() {
        let err = KernelError::IntegrityViolation { what: "cred.uid" };
        assert_eq!(err.to_string(), "regvault integrity violation on cred.uid");
    }

    #[test]
    fn memory_faults_convert() {
        let err: KernelError = ExceptionCause::LoadAccessFault.into();
        assert!(matches!(err, KernelError::MemoryFault(_)));
    }
}
