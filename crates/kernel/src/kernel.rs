//! The kernel proper: boot, syscall dispatch, interrupts, user execution.

use rand::{Rng, SeedableRng};
use regvault_isa::{ByteRange, KeyReg, Reg};
use regvault_metrics::{Counter, Histogram, MetricsRegistry};
use regvault_sim::{Event, InsnClass, Machine, Privilege, TraceEvent, TrapCause};

use crate::config::{KernelConfig, ProtectionConfig};
use crate::cred::{CredField, CredStore};
use crate::error::KernelError;
use crate::fs::MiniFs;
use crate::keyring::Keyring;
use crate::layout::{Kmalloc, KERNEL_TEXT_BASE, USER_CODE_BASE, USER_STACK_SIZE, USER_STACK_TOP};
use crate::pgd::PageTables;
use crate::selinux::SelinuxState;
use crate::signal::SignalTable;
use crate::syscall::Sysno;
use crate::thread::{ThreadState, ThreadTable, MAX_THREADS};

/// Counters for the panic-free trap-recovery path.
///
/// The security claim these numbers back: an injected fault on protected
/// data is *detected* (integrity trap) and *contained* (the offending
/// thread is quarantined), and the kernel keeps scheduling healthy threads
/// instead of panicking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Threads taken out of scheduling after a fault.
    pub quarantined: u64,
    /// Fresh replacement threads spawned to keep the pool populated.
    pub respawned: u64,
    /// Faults survived: the kernel recovered and kept running.
    pub traps_survived: u64,
}

/// Outcome of a successful [`Kernel::fail_over`]: which threads were
/// quarantined (and reaped) in the recovery chain, and which healthy thread
/// is now current.
///
/// The supervisor maps the quarantined tids back to tenants, applies its
/// backoff/circuit-breaker policy, and decides when (and whether) to call
/// [`Kernel::spawn_service_thread`] for each lost slot — the kernel itself
/// does not auto-respawn on this path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailOver {
    /// Threads quarantined and reaped during the fail-over, in quarantine
    /// order. The first entry is the originally faulted thread; any later
    /// entries faulted in turn while the kernel searched for a healthy
    /// successor.
    pub quarantined: Vec<u32>,
    /// The thread now running.
    pub current: u32,
}

/// Synthetic return-address region in kernel text for the call-site model.
const KCALL_RA_BASE: u64 = KERNEL_TEXT_BASE + 0x10_0000;

/// Pre-registered scheduler/syscall metric handles, registered in the
/// machine's [`MetricsRegistry`] at boot so kernel numbers export alongside
/// the simulator's CLB/QARMA counters.
#[derive(Debug, Clone)]
struct SchedMetrics {
    context_switches: Counter,
    preemptions: Counter,
    syscalls: Counter,
    quarantines: Counter,
    syscall_cycles: Histogram,
    timeslice_cycles: Histogram,
}

impl SchedMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        Self {
            context_switches: metrics.counter("sched_context_switches"),
            preemptions: metrics.counter("sched_preemptions"),
            syscalls: metrics.counter("sched_syscalls"),
            quarantines: metrics.counter("sched_quarantines"),
            syscall_cycles: metrics.histogram("syscall_cycles"),
            timeslice_cycles: metrics.histogram("timeslice_cycles"),
        }
    }
}

/// The miniature RegVault-protected kernel.
///
/// Owns the simulated [`Machine`]; kernel state lives in guest memory (see
/// [`crate::layout`]), so `kernel.machine_mut().memory_mut()` is exactly
/// the paper's attacker primitive: arbitrary kernel memory read/write.
///
/// See the [crate-level documentation](crate) for an example.
///
/// `Clone` is cheap: guest memory is copy-on-write at page granularity
/// (see [`regvault_sim::Memory`]), so cloning a booted kernel shares every
/// page until one side writes. The server's micro-reboot recovery keeps a
/// warm post-boot clone around and swaps it in when a tenant kernel is
/// corrupted, instead of paying a cold re-boot.
#[derive(Debug, Clone)]
pub struct Kernel {
    machine: Machine,
    cfg: ProtectionConfig,
    heap: Kmalloc,
    /// Per-thread credentials (§3.2.2).
    pub creds: CredStore,
    /// The global SELinux state (§3.2.3).
    pub selinux: SelinuxState,
    /// Kernel keyrings (§3.2.1).
    pub keyring: Keyring,
    /// Page tables (§3.2.4).
    pub page_tables: PageTables,
    /// The VFS (function-pointer protection target, §3.1.2).
    pub fs: MiniFs,
    /// Threads and scheduler (§3.1.1, §2.4.3).
    pub threads: ThreadTable,
    /// Per-thread signal tables (handler pointers are FP-protected).
    pub signals: SignalTable,
    rng: rand::rngs::StdRng,
    /// Base of the generic kernel ops table (8 protected fn pointers used
    /// by the FP-configuration hook model).
    ops_table: u64,
    /// Kernel stack pointer of the in-flight syscall (for the RA model).
    ksp: u64,
    saved_pc: Vec<u64>,
    /// Interrupted pc per thread while its signal handler runs.
    signal_return_pc: Vec<Option<u64>>,
    recovery: RecoveryStats,
    sched: SchedMetrics,
    /// Cycle stamp of the last thread switch (timeslice histogram).
    last_switch_cycle: u64,
}

impl Kernel {
    /// Boots the kernel: installs the general keys, builds every
    /// subsystem, spawns the init thread (uid 1000) and creates a couple
    /// of files.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults during initialization.
    pub fn boot(config: KernelConfig) -> Result<Self, KernelError> {
        let mut machine_config = config.machine;
        machine_config.timer_interval = config.timer_interval;
        let mut machine = Machine::new(machine_config);
        let sched = SchedMetrics::register(machine.metrics_mut());
        let cfg = config.protection;
        let mut rng = rand::rngs::StdRng::seed_from_u64(machine_config.seed ^ 0xB007);

        // Boot-time key ceremony: fresh random general keys.
        for key in [
            KeyReg::A,
            KeyReg::B,
            KeyReg::C,
            KeyReg::D,
            KeyReg::E,
            KeyReg::F,
            KeyReg::G,
        ] {
            machine
                .write_key_register(key, rng.gen(), rng.gen())
                .expect("general keys are writable");
        }

        let mut heap = Kmalloc::new();
        let creds = CredStore::new(&mut heap, MAX_THREADS);
        let selinux = SelinuxState::new(&mut heap, &mut machine, &cfg)?;
        let keyring = Keyring::new(&mut heap, 16);
        let page_tables = PageTables::new(&mut machine, rng.gen())?;
        let mut fs = MiniFs::new(&mut heap, &mut machine, &cfg)?;
        fs.create(&mut heap, &mut machine, "data", 1 << 16)?;
        fs.create(&mut heap, &mut machine, "etc_passwd", 4096)?;
        let mut threads = ThreadTable::new(&mut heap);
        let signals = SignalTable::new(&mut heap);

        // Generic kernel ops table: security hooks, driver ops — the
        // indirect-call sites the FP configuration protects beyond the VFS.
        let ops_table = heap.alloc(64, 8);
        for slot in 0..8u64 {
            let addr = ops_table + 8 * slot;
            let target = Self::ops_hook_target(slot);
            crate::pfield::write_u64_conf(
                &mut machine,
                cfg.key_policy().fn_ptr,
                addr,
                target,
                cfg.fp,
            )?;
        }

        let init = threads.spawn(&mut machine, &cfg, &mut rng)?;
        creds.init(&mut machine, &cfg, init, 1000, 1000)?;
        threads.current = init;
        threads.install_keys(&mut machine, &cfg, init)?;

        let ksp = crate::layout::kernel_stack_top(init) - crate::trap::FRAME_SIZE - 64;
        Ok(Self {
            machine,
            cfg,
            heap,
            creds,
            selinux,
            keyring,
            page_tables,
            fs,
            threads,
            signals,
            rng,
            ops_table,
            ksp,
            saved_pc: vec![0; MAX_THREADS as usize],
            signal_return_pc: vec![None; MAX_THREADS as usize],
            recovery: RecoveryStats::default(),
            sched,
            last_switch_cycle: 0,
        })
    }

    /// The active protection configuration.
    #[must_use]
    pub fn protection(&self) -> ProtectionConfig {
        self.cfg
    }

    /// The simulated machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access — also the attacker's arbitrary kernel
    /// memory read/write primitive.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The currently running thread.
    #[must_use]
    pub fn current_tid(&self) -> u32 {
        self.threads.current
    }

    /// Counters for the trap-recovery path.
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Draws kernel-internal randomness (key generation).
    pub(crate) fn rng_gen(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Guest address of generic ops-table slot `slot` (crate-internal, for
    /// key rotation).
    pub(crate) fn ops_table_slot(&self, slot: u64) -> u64 {
        self.ops_table + 8 * (slot % 8)
    }

    // --- Return-address protection model (§3.1.1) ----------------------
    //
    // Every nested kernel function call pushes a return address onto the
    // kernel stack. With RA protection the prologue encrypts it (per-thread
    // key, stack pointer as tweak) and the epilogue decrypts it. These two
    // methods perform that sequence with real stores/loads on the kernel
    // stack; the benchmark overhead of the "RA" configuration comes from
    // exactly these operations.

    fn kcall_ra(site: u32) -> u64 {
        KCALL_RA_BASE + u64::from(site) * 16
    }

    /// Top of thread `tid`'s fixed user-stack region.
    ///
    /// Stacks are assigned per slot, not bump-allocated: slot reuse after a
    /// reap maps the same region again (idempotent), so marathon
    /// fault/respawn runs cannot walk the stack area down into user code
    /// the way a monotonically descending allocator would.
    fn user_stack_top(tid: u32) -> u64 {
        USER_STACK_TOP - u64::from(tid) * USER_STACK_SIZE
    }

    /// The legitimate target of generic ops-table slot `slot`.
    fn ops_hook_target(slot: u64) -> u64 {
        KERNEL_TEXT_BASE + 0x2000 + slot * 64
    }

    /// Dispatches one indirect call through the generic ops table: load,
    /// decrypt (under FP protection), jump. A corrupted pointer surfaces
    /// as a wild jump.
    fn ops_hook(&mut self, slot: u64) -> Result<(), KernelError> {
        let addr = self.ops_table + 8 * (slot % 8);
        let target = crate::pfield::read_u64_conf(
            &mut self.machine,
            self.cfg.key_policy().fn_ptr,
            addr,
            self.cfg.fp,
        )?;
        self.machine.charge(InsnClass::Jump, 1);
        if target != Self::ops_hook_target(slot % 8) {
            return Err(KernelError::WildJump { target });
        }
        Ok(())
    }

    /// Enters a kernel function: pushes the (possibly encrypted) return
    /// address for `site`.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn push_kframe(&mut self, site: u32) -> Result<u64, KernelError> {
        self.ksp -= 48;
        self.machine.charge(InsnClass::Alu, 4);
        self.machine.charge(InsnClass::Store, 2);
        let ra = Self::kcall_ra(site);
        let slot = self.ksp;
        let stored = if self.cfg.ra {
            self.machine.kernel_encrypt(
                self.cfg.key_policy().return_addr,
                slot,
                ra,
                ByteRange::FULL,
            )
        } else {
            ra
        };
        self.machine.kernel_store_u64(slot, stored)?;
        Ok(slot)
    }

    /// Leaves a kernel function: pops and (with protection) decrypts the
    /// return address, then "returns" to it.
    ///
    /// # Errors
    ///
    /// [`KernelError::WildJump`] when the popped return address is not the
    /// call site's — i.e. an attacker overwrote the stack slot. Under RA
    /// protection the attacker-controlled value decrypts to garbage.
    pub fn pop_kframe(&mut self, site: u32) -> Result<(), KernelError> {
        let slot = self.ksp;
        let raw = self.machine.kernel_load_u64(slot)?;
        // Full-range decrypts carry no redundancy; a corrupted slot yields
        // garbage rather than a failure, and the address comparison below
        // is what catches it. Taking the garbled value from the error arm
        // keeps even a faulted crypto datapath panic-free.
        let ra = if self.cfg.ra {
            self.machine
                .kernel_decrypt(
                    self.cfg.key_policy().return_addr,
                    slot,
                    raw,
                    ByteRange::FULL,
                )
                .unwrap_or_else(|garbled| garbled)
        } else {
            raw
        };
        self.machine.charge(InsnClass::Alu, 3);
        self.machine.charge(InsnClass::Load, 1);
        self.ksp += 48;
        let expected = Self::kcall_ra(site);
        if ra != expected {
            return Err(KernelError::WildJump { target: ra });
        }
        Ok(())
    }

    // --- Syscalls -------------------------------------------------------

    /// Dispatches a syscall by number with up to three arguments.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSyscall`] for unknown numbers; handler errors
    /// otherwise. Integrity violations and wild jumps indicate the kernel
    /// detected (or crashed on) tampering.
    pub fn dispatch(&mut self, num: u64, args: [u64; 3]) -> Result<u64, KernelError> {
        let sysno = Sysno::from_u64(num).ok_or(KernelError::BadSyscall(num))?;
        let entry_cycle = self.machine.stats().cycles;
        self.machine.metrics_mut().inc(self.sched.syscalls);
        self.machine.trace_emit(TraceEvent::TrapEnter {
            cause: TrapCause::Syscall(num),
        });
        // Trap entry: privilege switch + pt_regs save.
        self.machine.charge(InsnClass::Alu, 35);
        self.machine.charge(InsnClass::Store, 31);
        self.machine.charge(InsnClass::Alu, sysno.base_insns());

        // Permission check on credential-guarded paths (reads the
        // protected cred.euid).
        if sysno.checks_creds() {
            let tid = self.threads.current;
            let cfg = self.cfg;
            let _ = self
                .creds
                .read(&mut self.machine, &cfg, tid, CredField::Euid)?;
            // LSM hook: the security module consults selinux_state.
            let selinux = self.selinux.clone();
            let _ = selinux.avc_check(&mut self.machine, &cfg, true)?;
        }
        // Indirect calls through protected kernel ops tables.
        for hook in 0..sysno.fp_hooks() {
            self.ops_hook(u64::from(hook))?;
        }

        // The nested call chain of this syscall path.
        let depth = sysno.call_depth();
        let site_base = (num as u32) * 100;
        for level in 0..depth {
            self.push_kframe(site_base + level)?;
        }

        // `Yield` switches threads mid-path: the per-thread RA key changes
        // with the switch, so (as in a real `schedule()`, where each thread
        // pops its own frames after resuming) the call chain completes
        // before control leaves this thread.
        let result = if matches!(sysno, Sysno::Yield | Sysno::Exit) {
            for level in (0..depth).rev() {
                self.pop_kframe(site_base + level)?;
            }
            self.handle(sysno, args)
        } else {
            let result = self.handle(sysno, args);
            for level in (0..depth).rev() {
                self.pop_kframe(site_base + level)?;
            }
            result
        };
        // Trap exit: pt_regs restore + return to user.
        self.machine.charge(InsnClass::Load, 31);
        self.machine.charge(InsnClass::Alu, 22);
        let elapsed = self.machine.stats().cycles - entry_cycle;
        self.machine
            .metrics_mut()
            .observe(self.sched.syscall_cycles, elapsed);
        self.machine.trace_emit(TraceEvent::TrapExit {
            cause: TrapCause::Syscall(num),
        });
        result
    }

    fn handle(&mut self, sysno: Sysno, args: [u64; 3]) -> Result<u64, KernelError> {
        let tid = self.threads.current;
        let cfg = self.cfg;
        match sysno {
            Sysno::Null => Ok(0),
            Sysno::Getpid => Ok(u64::from(tid)),
            Sysno::Getuid => Ok(u64::from(self.creds.read(
                &mut self.machine,
                &cfg,
                tid,
                CredField::Uid,
            )?)),
            Sysno::Geteuid => Ok(u64::from(self.creds.read(
                &mut self.machine,
                &cfg,
                tid,
                CredField::Euid,
            )?)),
            Sysno::Getgid => Ok(u64::from(self.creds.read(
                &mut self.machine,
                &cfg,
                tid,
                CredField::Gid,
            )?)),
            Sysno::Setuid => {
                let new_uid = args[0] as u32;
                if !self.selinux.avc_check(&mut self.machine, &cfg, true)? {
                    return Err(KernelError::PermissionDenied);
                }
                let euid = self
                    .creds
                    .read(&mut self.machine, &cfg, tid, CredField::Euid)?;
                let uid = self
                    .creds
                    .read(&mut self.machine, &cfg, tid, CredField::Uid)?;
                if euid != 0 && new_uid != uid {
                    return Err(KernelError::PermissionDenied);
                }
                for field in [CredField::Uid, CredField::Euid] {
                    self.creds
                        .write(&mut self.machine, &cfg, tid, field, new_uid)?;
                }
                Ok(0)
            }
            Sysno::Open => {
                let (name_ptr, len) = (args[0], args[1]);
                if len > 64 {
                    return Err(KernelError::InvalidArgument);
                }
                if !self.selinux.avc_check(&mut self.machine, &cfg, true)? {
                    return Err(KernelError::PermissionDenied);
                }
                let bytes = self.machine.memory().read_vec(name_ptr, len as usize)?;
                let name = String::from_utf8(bytes).map_err(|_| KernelError::InvalidArgument)?;
                self.fs.open(&mut self.machine, &name)
            }
            Sysno::Close => self.fs.close(args[0]).map(|()| 0),
            Sysno::Read => {
                if !self.selinux.avc_check(&mut self.machine, &cfg, true)? {
                    return Err(KernelError::PermissionDenied);
                }
                self.fs
                    .read(&mut self.machine, &cfg, args[0], args[1], args[2])
            }
            Sysno::Write => {
                if !self.selinux.avc_check(&mut self.machine, &cfg, true)? {
                    return Err(KernelError::PermissionDenied);
                }
                self.fs
                    .write(&mut self.machine, &cfg, args[0], args[1], args[2])
            }
            Sysno::Stat => self.fs.stat(&mut self.machine, &cfg, args[0]),
            Sysno::Seek => self.fs.seek(args[0], args[1]).map(|()| 0),
            Sysno::Pipe => {
                let (rfd, wfd) = self.fs.pipe(&mut self.heap, &mut self.machine)?;
                Ok((rfd << 32) | wfd)
            }
            Sysno::Yield => {
                self.switch_to(self.threads.next_runnable())?;
                Ok(0)
            }
            Sysno::AddKey => {
                let bytes = self.machine.memory().read_vec(args[0], 16)?;
                let material: [u8; 16] = bytes.try_into().expect("16 bytes");
                self.machine.charge(InsnClass::Load, 2);
                self.keyring.add_key(&mut self.machine, &cfg, material)
            }
            Sysno::AesEncrypt => {
                let bytes = self.machine.memory().read_vec(args[1], 16)?;
                let block: [u8; 16] = bytes.try_into().expect("16 bytes");
                self.machine.charge(InsnClass::Load, 2);
                let ct = self
                    .keyring
                    .aes_encrypt(&mut self.machine, &cfg, args[0], block)?;
                self.machine.memory_mut().write_slice(args[2], &ct);
                self.machine.charge(InsnClass::Store, 2);
                Ok(0)
            }
            Sysno::Mmap => {
                let vaddr = args[0] & !0xFFF;
                let paddr = 0x9000_0000 + (vaddr & 0xFFFF_F000);
                self.page_tables
                    .map(&mut self.machine, &cfg, vaddr, paddr)?;
                self.machine.memory_mut().map_region(vaddr, 4096);
                Ok(vaddr)
            }
            Sysno::Munmap => self
                .page_tables
                .unmap(&mut self.machine, &cfg, args[0] & !0xFFF)
                .map(|()| 0),
            Sysno::Spawn => {
                let tid = self.spawn_thread(args[0])?;
                Ok(u64::from(tid))
            }
            Sysno::SelinuxCheck => Ok(u64::from(self.selinux.avc_check(
                &mut self.machine,
                &cfg,
                false,
            )?)),
            Sysno::Sigaction => {
                let signals = self.signals.clone();
                signals
                    .register(&mut self.machine, &cfg, tid, args[0], args[1])
                    .map(|()| 0)
            }
            Sysno::Kill => {
                let target = args[0] as u32;
                if target >= crate::thread::MAX_THREADS {
                    return Err(KernelError::InvalidArgument);
                }
                let signals = self.signals.clone();
                signals
                    .raise(&mut self.machine, target, args[1])
                    .map(|()| 0)
            }
            Sysno::Exit => {
                // Only non-init threads exit through here (init terminates
                // the program with ebreak).
                if tid == 0 {
                    return Err(KernelError::InvalidArgument);
                }
                self.machine.charge(InsnClass::Alu, 200); // teardown
                let next = {
                    self.threads.free(tid);
                    self.threads.next_runnable()
                };
                self.signal_return_pc[tid as usize] = None;
                self.switch_to(next)?;
                Ok(0)
            }
            Sysno::Sigreturn => {
                let return_pc = self.signal_return_pc[tid as usize]
                    .take()
                    .ok_or(KernelError::InvalidArgument)?;
                // The saved pc is the post-ecall resume point (run_user
                // advances before dispatch); restore it verbatim.
                self.machine.hart_mut().set_pc(return_pc);
                Ok(0)
            }
        }
    }

    /// Spawns a user thread starting at `entry_pc` (0 = caller's pc,
    /// kernel-side threads only).
    fn spawn_thread(&mut self, entry_pc: u64) -> Result<u32, KernelError> {
        let cfg = self.cfg;
        let parent = self.threads.current;
        let tid = self.threads.spawn(&mut self.machine, &cfg, &mut self.rng)?;
        let uid = self
            .creds
            .read(&mut self.machine, &cfg, parent, CredField::Uid)?;
        let gid = self
            .creds
            .read(&mut self.machine, &cfg, parent, CredField::Gid)?;
        self.creds.init(&mut self.machine, &cfg, tid, uid, gid)?;
        self.saved_pc[tid as usize] = entry_pc;
        // Give the thread its slot's fixed user stack and an initial CIP
        // frame (written under the *new* thread's interrupt key).
        let stack_top = Self::user_stack_top(tid);
        let user_sp = stack_top - 16;
        self.machine
            .memory_mut()
            .map_region(stack_top - USER_STACK_SIZE, USER_STACK_SIZE);
        let snapshot = self.machine.hart().regs();
        self.machine.hart_mut().set_reg(Reg::Sp, user_sp);
        self.threads.install_keys(&mut self.machine, &cfg, tid)?;
        crate::trap::save_context(
            &mut self.machine,
            &cfg,
            cfg.key_policy().interrupt,
            self.threads.interrupt_frame_addr(tid),
        )?;
        // Restore the parent's registers and keys.
        for (i, value) in snapshot.iter().enumerate().skip(1) {
            let reg = Reg::from_index(i as u8).expect("register index");
            self.machine.hart_mut().set_reg(reg, *value);
        }
        self.threads.install_keys(&mut self.machine, &cfg, parent)?;
        Ok(tid)
    }

    /// Switches to thread `to` (scheduler path; also the timer handler).
    fn switch_to(&mut self, to: u32) -> Result<(), KernelError> {
        let cfg = self.cfg;
        let from = self.threads.current;
        if to != from {
            self.saved_pc[from as usize] = self.machine.hart().pc();
        }
        self.threads.context_switch(&mut self.machine, &cfg, to)?;
        if to != from {
            let pc = self.saved_pc[to as usize];
            self.machine.hart_mut().set_pc(pc);
            self.ksp = crate::layout::kernel_stack_top(to) - crate::trap::FRAME_SIZE - 64;
            let now = self.machine.stats().cycles;
            let slice = now - self.last_switch_cycle;
            self.last_switch_cycle = now;
            self.machine.metrics_mut().inc(self.sched.context_switches);
            self.machine
                .metrics_mut()
                .observe(self.sched.timeslice_cycles, slice);
            self.machine
                .trace_emit(TraceEvent::ContextSwitch { from, to });
        }
        Ok(())
    }

    /// Delivers one pending signal to the current thread if it is not
    /// already inside a handler: saves the interrupted pc and redirects
    /// control to the (decrypted) handler. A corrupted handler pointer
    /// garbles under FP protection and crashes at a wild pc.
    fn maybe_deliver_signal(&mut self) -> Result<(), KernelError> {
        let cfg = self.cfg;
        let tid = self.threads.current;
        if self.signal_return_pc[tid as usize].is_some() {
            return Ok(()); // handlers do not nest in this model
        }
        let signals = self.signals.clone();
        if let Some((_signo, handler)) = signals.deliver(&mut self.machine, &cfg, tid)? {
            self.signal_return_pc[tid as usize] = Some(self.machine.hart().pc());
            self.machine.hart_mut().set_pc(handler);
        }
        Ok(())
    }

    /// The shared recovery core: quarantines the current (faulted) thread
    /// and switches to a healthy runnable one, abandoning the faulted
    /// context entirely. If the incoming thread's own saved context turns
    /// out to be corrupted (its CIP restore trips the integrity check), it
    /// is quarantined in turn and the search continues — at most
    /// [`MAX_THREADS`] iterations.
    ///
    /// On success, **every** thread quarantined along the chain is reaped
    /// (its slot freed for a fresh spawn) and the chain is returned — not
    /// just the last link, so a multi-hop recovery cannot strand
    /// intermediate slots in quarantine forever. On failure (`None`), no
    /// healthy thread remains; the chain members stay quarantined for the
    /// embedder to inspect.
    fn quarantine_and_switch(&mut self) -> Option<Vec<u32>> {
        let cfg = self.cfg;
        let mut chain = Vec::new();
        for _ in 0..=MAX_THREADS {
            let faulted = self.threads.current;
            self.threads.quarantine(faulted);
            self.recovery.quarantined = self.recovery.quarantined.saturating_add(1);
            self.machine.metrics_mut().inc(self.sched.quarantines);
            self.signal_return_pc[faulted as usize] = None;
            chain.push(faulted);
            let next = self.threads.next_runnable();
            if next == faulted || self.threads.state(next) != ThreadState::Runnable {
                return None;
            }
            match self.threads.switch_abandon(&mut self.machine, &cfg, next) {
                Ok(()) => {
                    self.machine.hart_mut().set_pc(self.saved_pc[next as usize]);
                    self.ksp = crate::layout::kernel_stack_top(next) - crate::trap::FRAME_SIZE - 64;
                    // Quarantined slots are safe to reuse: spawn rewrites
                    // thread_info and generates fresh keys.
                    for &tid in &chain {
                        self.threads.reap(tid);
                    }
                    self.recovery.traps_survived = self.recovery.traps_survived.saturating_add(1);
                    return Some(chain);
                }
                // `switch_abandon` updates `current` before restoring, so a
                // failed restore leaves the corrupt incoming thread as
                // current — the next iteration quarantines it too.
                Err(_) => continue,
            }
        }
        None
    }

    /// The in-kernel recovery policy used by [`Kernel::run_user`]: fail over
    /// and immediately respawn a freshly-keyed replacement per reaped slot,
    /// so sustained fault injection cannot drain the pool. Returns `true`
    /// when the kernel can keep running.
    fn recover_current_thread(&mut self) -> bool {
        match self.quarantine_and_switch() {
            Some(chain) => {
                for _ in &chain {
                    if self.respawn_replacement().is_ok() {
                        self.recovery.respawned = self.recovery.respawned.saturating_add(1);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Fails over away from the current (faulted) thread **without**
    /// auto-respawning — the supervisor-facing recovery hook.
    ///
    /// The quarantine chain is reaped and returned so the embedder can map
    /// lost threads back to tenants and apply its own respawn policy
    /// (backoff, circuit breakers) via [`Kernel::spawn_service_thread`].
    ///
    /// When *no* healthy thread remains (every slot quarantined — e.g. a
    /// master-key tamper felled the whole pool), this reaps the entire
    /// table and cold-spawns one fresh boot-cred thread so the kernel can
    /// keep serving; the returned chain then lists every reaped thread.
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadTableFull`] (or a propagated spawn error) only
    /// when even the cold-spawn fallback fails; the kernel is then beyond
    /// in-place recovery and the embedder should reboot it.
    pub fn fail_over(&mut self) -> Result<FailOver, KernelError> {
        if let Some(chain) = self.quarantine_and_switch() {
            return Ok(FailOver {
                quarantined: chain,
                current: self.threads.current,
            });
        }
        // Total loss: every thread is quarantined. Reap them all and
        // cold-spawn a fresh thread to become current.
        let mut reaped = Vec::new();
        for tid in 0..MAX_THREADS {
            if self.threads.state(tid) == ThreadState::Quarantined {
                self.threads.reap(tid);
                reaped.push(tid);
            }
        }
        let fresh = self.cold_spawn_current()?;
        self.recovery.traps_survived = self.recovery.traps_survived.saturating_add(1);
        Ok(FailOver {
            quarantined: reaped,
            current: fresh,
        })
    }

    /// Spawns a freshly-keyed boot-cred thread for the supervisor's respawn
    /// path, counting it in [`RecoveryStats::respawned`].
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadTableFull`] when no slot is free — a typed
    /// degradation event the supervisor can back off on, never a panic.
    pub fn spawn_service_thread(&mut self) -> Result<u32, KernelError> {
        let tid = self.respawn_replacement()?;
        self.recovery.respawned = self.recovery.respawned.saturating_add(1);
        Ok(tid)
    }

    /// Switches execution to thread `to` — the supervisor's dispatch path
    /// for directing the service loop at a chosen tenant thread.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvalidArgument`] when `to` is out of range or not
    /// schedulable; [`KernelError::IntegrityViolation`] when the incoming
    /// thread's saved context was tampered with (the caller should then
    /// invoke [`Kernel::fail_over`]).
    pub fn switch_thread(&mut self, to: u32) -> Result<(), KernelError> {
        if to >= MAX_THREADS
            || !matches!(
                self.threads.state(to),
                ThreadState::Runnable | ThreadState::Current
            )
        {
            return Err(KernelError::InvalidArgument);
        }
        self.switch_to(to)
    }

    /// Cold-spawns a fresh thread and makes it current without saving any
    /// outgoing context — the last-resort path when the whole pool was
    /// quarantined and nothing trustworthy remains to return to.
    fn cold_spawn_current(&mut self) -> Result<u32, KernelError> {
        let cfg = self.cfg;
        let tid = self.threads.spawn(&mut self.machine, &cfg, &mut self.rng)?;
        self.creds.init(&mut self.machine, &cfg, tid, 1000, 1000)?;
        self.signal_return_pc[tid as usize] = None;
        self.saved_pc[tid as usize] = self.machine.hart().pc();
        let stack_top = Self::user_stack_top(tid);
        self.machine
            .memory_mut()
            .map_region(stack_top - USER_STACK_SIZE, USER_STACK_SIZE);
        self.machine.hart_mut().set_reg(Reg::Sp, stack_top - 16);
        self.threads.install_keys(&mut self.machine, &cfg, tid)?;
        crate::trap::save_context(
            &mut self.machine,
            &cfg,
            cfg.key_policy().interrupt,
            self.threads.interrupt_frame_addr(tid),
        )?;
        self.threads.switch_abandon(&mut self.machine, &cfg, tid)?;
        self.machine.hart_mut().set_pc(self.saved_pc[tid as usize]);
        self.ksp = crate::layout::kernel_stack_top(tid) - crate::trap::FRAME_SIZE - 64;
        self.recovery.respawned = self.recovery.respawned.saturating_add(1);
        Ok(tid)
    }

    /// Spawns a freshly-keyed replacement for a reaped thread.
    ///
    /// Unlike [`Kernel::spawn_thread`] the replacement does **not** inherit
    /// the faulted parent's credentials — that cred block is untrusted —
    /// and instead starts with the boot uid/gid.
    fn respawn_replacement(&mut self) -> Result<u32, KernelError> {
        let cfg = self.cfg;
        let current = self.threads.current;
        let tid = self.threads.spawn(&mut self.machine, &cfg, &mut self.rng)?;
        self.creds.init(&mut self.machine, &cfg, tid, 1000, 1000)?;
        self.saved_pc[tid as usize] = self.machine.hart().pc();
        self.signal_return_pc[tid as usize] = None;
        let stack_top = Self::user_stack_top(tid);
        let user_sp = stack_top - 16;
        self.machine
            .memory_mut()
            .map_region(stack_top - USER_STACK_SIZE, USER_STACK_SIZE);
        // Seed the replacement's CIP frame under its own keys, then put the
        // running thread's registers and keys back.
        let snapshot = self.machine.hart().regs();
        self.machine.hart_mut().set_reg(Reg::Sp, user_sp);
        self.threads.install_keys(&mut self.machine, &cfg, tid)?;
        crate::trap::save_context(
            &mut self.machine,
            &cfg,
            cfg.key_policy().interrupt,
            self.threads.interrupt_frame_addr(tid),
        )?;
        for (i, value) in snapshot.iter().enumerate().skip(1) {
            let reg = Reg::from_index(i as u8).expect("register index");
            self.machine.hart_mut().set_reg(reg, *value);
        }
        self.threads
            .install_keys(&mut self.machine, &cfg, current)?;
        Ok(tid)
    }

    /// Handles a timer interrupt: CIP-protect the interrupted context,
    /// run the scheduler, restore.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] if a saved context was tampered
    /// with (attack ❼ of Table 4).
    pub fn handle_timer(&mut self) -> Result<(), KernelError> {
        self.machine.trace_emit(TraceEvent::TrapEnter {
            cause: TrapCause::Timer,
        });
        self.machine.charge(InsnClass::Alu, 40); // trap entry/exit
        self.machine.charge(InsnClass::Store, 6);
        let next = self.threads.next_runnable();
        if next != self.threads.current {
            self.machine.metrics_mut().inc(self.sched.preemptions);
        }
        let result = self.switch_to(next);
        self.machine.trace_emit(TraceEvent::TrapExit {
            cause: TrapCause::Timer,
        });
        result
    }

    // --- Convenience syscall wrappers (used by tests and examples) ------

    /// `getuid()`.
    ///
    /// # Errors
    ///
    /// Integrity violations on tampered credentials.
    pub fn sys_getuid(&mut self) -> Result<u32, KernelError> {
        self.dispatch(Sysno::Getuid as u64, [0; 3])
            .map(|v| v as u32)
    }

    /// `setuid(uid)`.
    ///
    /// # Errors
    ///
    /// [`KernelError::PermissionDenied`] for unprivileged callers.
    pub fn sys_setuid(&mut self, uid: u32) -> Result<(), KernelError> {
        self.dispatch(Sysno::Setuid as u64, [u64::from(uid), 0, 0])
            .map(|_| ())
    }

    /// Runs a user program image to completion (its `ebreak`), returning
    /// the final `a0`.
    ///
    /// Detected tampering (integrity violations, wild jumps, memory faults
    /// inside a syscall) and guest exceptions are *recoverable*: the
    /// offending thread is quarantined and execution continues on a healthy
    /// thread when one exists. Only when no healthy thread remains does the
    /// original error surface — so a single-threaded program still reports
    /// its fault, while a multi-threaded kernel survives per-thread damage
    /// (see [`Kernel::recovery_stats`]).
    ///
    /// # Errors
    ///
    /// [`KernelError::UserFault`] on unrecovered guest exceptions,
    /// [`KernelError::StepLimit`] when the budget runs out,
    /// [`KernelError::Sim`] for simulator-level failures (e.g. an armed
    /// watchdog timing out a wedged guest), and any unrecovered fatal
    /// kernel error (integrity violation, wild jump) raised by syscalls.
    pub fn run_user(
        &mut self,
        image: &[u8],
        entry_offset: u64,
        max_steps: u64,
    ) -> Result<u64, KernelError> {
        self.machine.load_program(USER_CODE_BASE, image);
        self.machine
            .memory_mut()
            .map_region(USER_STACK_TOP - USER_STACK_SIZE, USER_STACK_SIZE + 16);
        self.machine
            .hart_mut()
            .set_pc(USER_CODE_BASE + entry_offset);
        self.machine
            .hart_mut()
            .set_reg(Reg::Sp, USER_STACK_TOP - 64);
        self.machine.hart_mut().set_privilege(Privilege::User);

        let mut budget = max_steps;
        loop {
            let event = match self.machine.run(budget.min(1_000_000)) {
                Ok(event) => event,
                Err(regvault_sim::SimError::StepLimitExceeded { limit }) => {
                    budget = budget.saturating_sub(limit);
                    if budget == 0 {
                        return Err(KernelError::StepLimit);
                    }
                    continue;
                }
                // A watchdog timeout still carries the recovery counters
                // accumulated so far — a truncated run stays diagnosable.
                Err(regvault_sim::SimError::Timeout { budget }) => {
                    return Err(KernelError::Timeout {
                        budget,
                        recovery: self.recovery,
                    })
                }
                // Other simulator-level failures are not attributable to
                // one instruction; surface them typed.
                Err(err) => return Err(KernelError::Sim(err)),
            };
            match event {
                Event::Break => {
                    return Ok(self.machine.hart().reg(Reg::A0));
                }
                Event::Ecall { .. } => {
                    let num = self.machine.hart().reg(Reg::A7);
                    let args = [
                        self.machine.hart().reg(Reg::A0),
                        self.machine.hart().reg(Reg::A1),
                        self.machine.hart().reg(Reg::A2),
                    ];
                    // Resume point is the instruction after the ecall; set
                    // it *before* dispatch so a scheduling syscall saves
                    // the advanced pc.
                    self.machine.advance_pc();
                    self.machine.hart_mut().set_privilege(Privilege::Kernel);
                    let switches = num == Sysno::Yield as u64 || num == Sysno::Exit as u64;
                    match self.dispatch(num, args) {
                        // After a thread switch the hart holds the incoming
                        // thread's registers; the yield return value is not
                        // written (its a0 was restored from its frame).
                        Ok(_) if switches => {}
                        Ok(value) => self.machine.hart_mut().set_reg(Reg::A0, value),
                        // The kernel detected tampering (or crashed on its
                        // garbled residue) in this thread's syscall path:
                        // quarantine it and keep scheduling healthy threads
                        // rather than taking the whole kernel down.
                        Err(
                            err @ (KernelError::IntegrityViolation { .. }
                            | KernelError::WildJump { .. }
                            | KernelError::MemoryFault(_)),
                        ) => {
                            if !self.recover_current_thread() {
                                return Err(err);
                            }
                        }
                        Err(_) => self.machine.hart_mut().set_reg(Reg::A0, u64::MAX),
                    }
                    self.maybe_deliver_signal()?;
                    self.machine.hart_mut().set_privilege(Privilege::User);
                }
                Event::TimerInterrupt => {
                    self.machine.hart_mut().set_privilege(Privilege::Kernel);
                    // A failed switch means the *incoming* thread's saved
                    // context was corrupted (context_switch already made it
                    // current); quarantine it and continue if possible.
                    if let Err(err) = self.handle_timer() {
                        if !self.recover_current_thread() {
                            return Err(err);
                        }
                    }
                    self.machine.hart_mut().set_privilege(Privilege::User);
                }
                Event::Exception { cause, tval: _ } => {
                    let pc = self.machine.hart().pc();
                    self.machine.hart_mut().set_privilege(Privilege::Kernel);
                    self.machine.trace_emit(TraceEvent::TrapEnter {
                        cause: TrapCause::Exception(cause),
                    });
                    let recovered = self.recover_current_thread();
                    self.machine.hart_mut().set_privilege(Privilege::User);
                    if !recovered {
                        return Err(KernelError::UserFault { cause, pc });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(cfg: ProtectionConfig) -> Kernel {
        Kernel::boot(KernelConfig {
            protection: cfg,
            ..KernelConfig::default()
        })
        .expect("boot")
    }

    #[test]
    fn boot_and_basic_syscalls() {
        let mut k = kernel(ProtectionConfig::full());
        assert_eq!(k.sys_getuid().unwrap(), 1000);
        assert_eq!(k.dispatch(Sysno::Getpid as u64, [0; 3]).unwrap(), 0);
        assert_eq!(k.dispatch(Sysno::Null as u64, [0; 3]).unwrap(), 0);
        assert!(matches!(
            k.dispatch(999, [0; 3]),
            Err(KernelError::BadSyscall(999))
        ));
    }

    #[test]
    fn setuid_policy() {
        let mut k = kernel(ProtectionConfig::full());
        // Non-root cannot change uid.
        assert!(matches!(
            k.sys_setuid(0),
            Err(KernelError::PermissionDenied)
        ));
        // Setting the same uid is a no-op success.
        k.sys_setuid(1000).unwrap();
    }

    #[test]
    fn file_syscalls_round_trip() {
        let mut k = kernel(ProtectionConfig::full());
        let name_ptr = 0x20_0000u64;
        k.machine_mut().memory_mut().write_slice(name_ptr, b"data");
        let fd = k.dispatch(Sysno::Open as u64, [name_ptr, 4, 0]).unwrap();
        let buf = 0x21_0000u64;
        k.machine_mut().memory_mut().write_slice(buf, b"regvault");
        assert_eq!(k.dispatch(Sysno::Write as u64, [fd, buf, 8]).unwrap(), 8);
        k.dispatch(Sysno::Seek as u64, [fd, 0, 0]).unwrap();
        let out = 0x22_0000u64;
        k.machine_mut().memory_mut().map_region(out, 64);
        assert_eq!(k.dispatch(Sysno::Read as u64, [fd, out, 8]).unwrap(), 8);
        assert_eq!(k.machine().memory().read_vec(out, 8).unwrap(), b"regvault");
        assert_eq!(k.dispatch(Sysno::Stat as u64, [fd, 0, 0]).unwrap(), 8);
        k.dispatch(Sysno::Close as u64, [fd, 0, 0]).unwrap();
    }

    #[test]
    fn pipe_syscalls() {
        let mut k = kernel(ProtectionConfig::full());
        let pair = k.dispatch(Sysno::Pipe as u64, [0; 3]).unwrap();
        let (rfd, wfd) = (pair >> 32, pair & 0xFFFF_FFFF);
        let buf = 0x23_0000u64;
        k.machine_mut().memory_mut().write_slice(buf, b"xy");
        assert_eq!(k.dispatch(Sysno::Write as u64, [wfd, buf, 2]).unwrap(), 2);
        let out = 0x24_0000u64;
        k.machine_mut().memory_mut().map_region(out, 16);
        assert_eq!(k.dispatch(Sysno::Read as u64, [rfd, out, 2]).unwrap(), 2);
    }

    #[test]
    fn keyring_syscalls_protect_material() {
        let mut k = kernel(ProtectionConfig::full());
        let key_ptr = 0x25_0000u64;
        k.machine_mut()
            .memory_mut()
            .write_slice(key_ptr, b"0123456789abcdef");
        let serial = k.dispatch(Sysno::AddKey as u64, [key_ptr, 0, 0]).unwrap();
        let in_ptr = 0x26_0000u64;
        let out_ptr = 0x27_0000u64;
        k.machine_mut()
            .memory_mut()
            .write_slice(in_ptr, b"blockblockblock!");
        k.machine_mut().memory_mut().map_region(out_ptr, 16);
        k.dispatch(Sysno::AesEncrypt as u64, [serial, in_ptr, out_ptr])
            .unwrap();
        let ct = k.machine().memory().read_vec(out_ptr, 16).unwrap();
        assert_ne!(&ct, b"blockblockblock!");
    }

    #[test]
    fn mmap_and_munmap() {
        let mut k = kernel(ProtectionConfig::full());
        let vaddr = k.dispatch(Sysno::Mmap as u64, [0x5000_0000, 0, 0]).unwrap();
        assert_eq!(vaddr, 0x5000_0000);
        k.dispatch(Sysno::Munmap as u64, [vaddr, 0, 0]).unwrap();
    }

    #[test]
    fn yield_round_trips_with_two_threads() {
        let mut k = kernel(ProtectionConfig::full());
        let tid = k.dispatch(Sysno::Spawn as u64, [0, 0, 0]).unwrap();
        assert_eq!(tid, 1);
        // Yield bounces to thread 1 and back.
        k.dispatch(Sysno::Yield as u64, [0; 3]).unwrap();
        assert_eq!(k.current_tid(), 1);
        k.dispatch(Sysno::Yield as u64, [0; 3]).unwrap();
        assert_eq!(k.current_tid(), 0);
    }

    #[test]
    fn rop_on_kernel_stack_is_neutralized() {
        let mut k = kernel(ProtectionConfig::ra_only());
        let slot = k.push_kframe(42).unwrap();
        // Attacker overwrites the saved RA with a gadget address.
        let gadget = KERNEL_TEXT_BASE + 0xBEEF;
        k.machine_mut()
            .memory_mut()
            .write_u64(slot, gadget)
            .unwrap();
        match k.pop_kframe(42).unwrap_err() {
            KernelError::WildJump { target } => assert_ne!(target, gadget),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rop_on_kernel_stack_succeeds_without_protection() {
        let mut k = kernel(ProtectionConfig::off());
        let slot = k.push_kframe(42).unwrap();
        let gadget = KERNEL_TEXT_BASE + 0xBEEF;
        k.machine_mut()
            .memory_mut()
            .write_u64(slot, gadget)
            .unwrap();
        match k.pop_kframe(42).unwrap_err() {
            KernelError::WildJump { target } => assert_eq!(target, gadget),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn protected_kernel_costs_more_cycles_than_baseline() {
        let mut base = kernel(ProtectionConfig::off());
        let mut full = kernel(ProtectionConfig::full());
        base.machine_mut().reset_stats();
        full.machine_mut().reset_stats();
        for _ in 0..100 {
            base.sys_getuid().unwrap();
            full.sys_getuid().unwrap();
        }
        let base_cycles = base.machine().stats().cycles;
        let full_cycles = full.machine().stats().cycles;
        assert!(full_cycles > base_cycles);
        let overhead = (full_cycles - base_cycles) as f64 / base_cycles as f64;
        assert!(
            overhead < 0.30,
            "protection overhead should be modest, got {overhead:.3}"
        );
    }
}
