//! Signals: user-registered handlers dispatched by the kernel.
//!
//! Signal handlers are the classic *userspace-supplied function pointer
//! stored in kernel memory*: `sigaction` writes a handler address into the
//! task's signal table, and delivery jumps to it. An attacker who can
//! overwrite the table redirects the next signal to arbitrary code, so
//! RegVault randomizes the stored handler pointers like every other
//! function pointer (dedicated key, storage-address tweak).
//!
//! The model keeps a per-thread table of [`NUM_SIGNALS`] handler slots in
//! guest memory plus a pending bitmask; delivery happens when the kernel
//! returns to user mode.

use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::Kmalloc;
use crate::pfield;
use crate::thread::MAX_THREADS;

/// Number of signal slots per thread.
pub const NUM_SIGNALS: u64 = 8;

/// Per-thread signal state in guest memory:
///
/// ```text
/// +0                pending bitmask (u64, plain)
/// +8 .. +8+8*N      handler pointers (protected like fn ptrs)
/// ```
#[derive(Debug, Clone)]
pub struct SignalTable {
    base: u64,
}

const ENTRY_SIZE: u64 = 8 + 8 * NUM_SIGNALS;

impl SignalTable {
    /// Allocates signal state for every thread.
    #[must_use]
    pub fn new(heap: &mut Kmalloc) -> Self {
        Self {
            base: heap.alloc(ENTRY_SIZE * u64::from(MAX_THREADS), 8),
        }
    }

    fn entry(&self, tid: u32) -> u64 {
        self.base + ENTRY_SIZE * u64::from(tid)
    }

    /// Guest address of the handler slot for (`tid`, `signo`) — the
    /// attacker's overwrite target.
    ///
    /// # Panics
    ///
    /// Panics if `signo` is out of range.
    #[must_use]
    pub fn handler_slot(&self, tid: u32, signo: u64) -> u64 {
        assert!(signo < NUM_SIGNALS, "signo out of range");
        self.entry(tid) + 8 + 8 * signo
    }

    /// `sigaction`: registers a user handler for `signo`.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvalidArgument`] for out-of-range signals;
    /// guest-memory faults otherwise.
    pub fn register(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
        signo: u64,
        handler: u64,
    ) -> Result<(), KernelError> {
        if signo >= NUM_SIGNALS {
            return Err(KernelError::InvalidArgument);
        }
        let slot = self.handler_slot(tid, signo);
        pfield::write_u64_conf(machine, cfg.key_policy().fn_ptr, slot, handler, cfg.fp)?;
        machine.charge(regvault_sim::InsnClass::Alu, 30);
        Ok(())
    }

    /// `kill`: marks `signo` pending for `tid`.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvalidArgument`] for out-of-range signals.
    pub fn raise(&self, machine: &mut Machine, tid: u32, signo: u64) -> Result<(), KernelError> {
        if signo >= NUM_SIGNALS {
            return Err(KernelError::InvalidArgument);
        }
        let mask_addr = self.entry(tid);
        let mask = machine.kernel_load_u64(mask_addr)?;
        machine.kernel_store_u64(mask_addr, mask | (1 << signo))?;
        machine.charge(regvault_sim::InsnClass::Alu, 20);
        Ok(())
    }

    /// Delivery: takes the lowest pending signal (if any), clears it, and
    /// resolves its handler — the decrypted target control flow will jump
    /// to.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults. Returns `Ok(None)` when nothing is
    /// pending or no handler is registered.
    pub fn deliver(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
    ) -> Result<Option<(u64, u64)>, KernelError> {
        let mask_addr = self.entry(tid);
        let mask = machine.kernel_load_u64(mask_addr)?;
        if mask == 0 {
            return Ok(None);
        }
        let signo = u64::from(mask.trailing_zeros());
        machine.kernel_store_u64(mask_addr, mask & !(1 << signo))?;
        let slot = self.handler_slot(tid, signo);
        let handler = pfield::read_u64_conf(machine, cfg.key_policy().fn_ptr, slot, cfg.fp)?;
        machine.charge(regvault_sim::InsnClass::Alu, 60);
        machine.charge(regvault_sim::InsnClass::Store, 10);
        if handler == 0 {
            return Ok(None);
        }
        Ok(Some((signo, handler)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(_cfg: &ProtectionConfig) -> (Machine, SignalTable) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::B, 0xB0, 0xB1).unwrap();
        let mut heap = Kmalloc::new();
        let table = SignalTable::new(&mut heap);
        (machine, table)
    }

    #[test]
    fn register_raise_deliver_round_trip() {
        let cfg = ProtectionConfig::full();
        let (mut m, table) = setup(&cfg);
        table.register(&mut m, &cfg, 0, 3, 0x40_1000).unwrap();
        table.raise(&mut m, 0, 3).unwrap();
        let (signo, handler) = table.deliver(&mut m, &cfg, 0).unwrap().unwrap();
        assert_eq!((signo, handler), (3, 0x40_1000));
        // Delivered once: nothing pending afterwards.
        assert!(table.deliver(&mut m, &cfg, 0).unwrap().is_none());
    }

    #[test]
    fn lowest_signal_delivers_first() {
        let cfg = ProtectionConfig::full();
        let (mut m, table) = setup(&cfg);
        for signo in [5u64, 1, 7] {
            table
                .register(&mut m, &cfg, 0, signo, 0x40_0000 + signo * 16)
                .unwrap();
            table.raise(&mut m, 0, signo).unwrap();
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| table.deliver(&mut m, &cfg, 0).unwrap().map(|(s, _)| s))
                .collect();
        assert_eq!(order, vec![1, 5, 7]);
    }

    #[test]
    fn handlers_are_randomized_in_memory_when_protected() {
        let cfg = ProtectionConfig::fp_only();
        let (mut m, table) = setup(&cfg);
        table.register(&mut m, &cfg, 0, 0, 0x40_2000).unwrap();
        let raw = m.memory().read_u64(table.handler_slot(0, 0)).unwrap();
        assert_ne!(raw, 0x40_2000);
    }

    #[test]
    fn overwritten_handler_garbles_under_protection() {
        let cfg = ProtectionConfig::fp_only();
        let (mut m, table) = setup(&cfg);
        table.register(&mut m, &cfg, 0, 0, 0x40_2000).unwrap();
        table.raise(&mut m, 0, 0).unwrap();
        // Attacker points the handler at shellcode.
        m.memory_mut()
            .write_u64(table.handler_slot(0, 0), 0x6666_6666)
            .unwrap();
        let (_, handler) = table.deliver(&mut m, &cfg, 0).unwrap().unwrap();
        assert_ne!(handler, 0x6666_6666, "redirect must be garbled");
    }

    #[test]
    fn overwritten_handler_wins_on_baseline() {
        let cfg = ProtectionConfig::off();
        let (mut m, table) = setup(&cfg);
        table.register(&mut m, &cfg, 0, 0, 0x40_2000).unwrap();
        table.raise(&mut m, 0, 0).unwrap();
        m.memory_mut()
            .write_u64(table.handler_slot(0, 0), 0x6666_6666)
            .unwrap();
        let (_, handler) = table.deliver(&mut m, &cfg, 0).unwrap().unwrap();
        assert_eq!(handler, 0x6666_6666, "baseline jumps to the attacker");
    }

    #[test]
    fn bad_signo_rejected() {
        let cfg = ProtectionConfig::full();
        let (mut m, table) = setup(&cfg);
        assert!(table.register(&mut m, &cfg, 0, NUM_SIGNALS, 1).is_err());
        assert!(table.raise(&mut m, 0, 99).is_err());
    }
}
