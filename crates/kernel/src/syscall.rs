//! Syscall numbers and ABI.
//!
//! User programs place the syscall number in `a7` and up to three
//! arguments in `a0`–`a2`, then execute `ecall`. The kernel returns the
//! result in `a0`; errors come back as `u64::MAX` (−1). The kernel
//! preserves every other register.

/// Syscall numbers understood by the miniature kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
#[repr(u64)]
pub enum Sysno {
    /// The "null" syscall: pure entry/exit (LMbench `lat_syscall null`).
    Null = 0,
    Getpid = 1,
    Getuid = 2,
    Geteuid = 3,
    Setuid = 4,
    Getgid = 5,
    Open = 6,
    Close = 7,
    Read = 8,
    Write = 9,
    Stat = 10,
    Seek = 11,
    /// Create a pipe; returns `read_fd << 32 | write_fd`.
    Pipe = 12,
    /// Voluntary context switch.
    Yield = 13,
    /// Install a 16-byte key from a user buffer; returns the serial.
    AddKey = 14,
    /// AES-encrypt one 16-byte block: `(serial, in_ptr, out_ptr)`.
    AesEncrypt = 15,
    /// Map a page at the given virtual address.
    Mmap = 16,
    /// Unmap a page.
    Munmap = 17,
    /// Create a new thread; returns its tid.
    Spawn = 18,
    /// Security hook exercise: ask SELinux whether a (denied-by-policy)
    /// operation is permitted; returns 0/1.
    SelinuxCheck = 19,
    /// Register a signal handler: `(signo, handler_pc)`.
    Sigaction = 20,
    /// Send a signal: `(tid, signo)`.
    Kill = 21,
    /// Return from a signal handler to the interrupted context.
    Sigreturn = 22,
    /// Terminate the calling thread, freeing its slot.
    Exit = 23,
}

impl Sysno {
    /// Decodes a syscall number.
    #[must_use]
    pub fn from_u64(num: u64) -> Option<Self> {
        Some(match num {
            0 => Sysno::Null,
            1 => Sysno::Getpid,
            2 => Sysno::Getuid,
            3 => Sysno::Geteuid,
            4 => Sysno::Setuid,
            5 => Sysno::Getgid,
            6 => Sysno::Open,
            7 => Sysno::Close,
            8 => Sysno::Read,
            9 => Sysno::Write,
            10 => Sysno::Stat,
            11 => Sysno::Seek,
            12 => Sysno::Pipe,
            13 => Sysno::Yield,
            14 => Sysno::AddKey,
            15 => Sysno::AesEncrypt,
            16 => Sysno::Mmap,
            17 => Sysno::Munmap,
            18 => Sysno::Spawn,
            19 => Sysno::SelinuxCheck,
            20 => Sysno::Sigaction,
            21 => Sysno::Kill,
            22 => Sysno::Sigreturn,
            23 => Sysno::Exit,
            _ => return None,
        })
    }

    /// The number of nested kernel function calls this syscall makes —
    /// drives the return-address protection cost model (each level costs
    /// one `cre` + one `crd` when RA protection is on). The depths roughly
    /// track the Linux call chains of the corresponding paths.
    #[must_use]
    pub fn call_depth(self) -> u32 {
        match self {
            Sysno::Null => 1,
            Sysno::Getpid | Sysno::Getuid | Sysno::Geteuid | Sysno::Getgid => 2,
            Sysno::Setuid => 4,
            Sysno::Open => 7,
            Sysno::Close => 2,
            Sysno::Read | Sysno::Write => 5,
            Sysno::Stat => 4,
            Sysno::Seek => 2,
            Sysno::Pipe => 5,
            Sysno::Yield => 3,
            Sysno::AddKey => 5,
            Sysno::AesEncrypt => 4,
            Sysno::Mmap | Sysno::Munmap => 5,
            Sysno::Spawn => 8,
            Sysno::SelinuxCheck => 3,
            Sysno::Sigaction => 3,
            Sysno::Kill => 4,
            Sysno::Sigreturn => 2,
            Sysno::Exit => 6,
        }
    }

    /// Base (uninstrumented) kernel work for the syscall, in ALU-class
    /// instructions, charged on top of the structural work the handlers do
    /// explicitly.
    #[must_use]
    pub fn base_insns(self) -> u64 {
        match self {
            Sysno::Null => 210,
            Sysno::Getpid | Sysno::Getuid | Sysno::Geteuid | Sysno::Getgid => 310,
            Sysno::Setuid => 730,
            Sysno::Open => 1450,
            Sysno::Close => 390,
            Sysno::Read | Sysno::Write => 920,
            Sysno::Stat => 810,
            Sysno::Seek => 290,
            Sysno::Pipe => 1170,
            Sysno::Yield => 900,
            Sysno::AddKey => 910,
            Sysno::AesEncrypt => 550,
            Sysno::Mmap | Sysno::Munmap => 1040,
            Sysno::Spawn => 2100,
            Sysno::SelinuxCheck => 440,
            Sysno::Sigaction => 260,
            Sysno::Kill => 380,
            Sysno::Sigreturn => 200,
            Sysno::Exit => 900,
        }
    }

    /// Number of indirect calls through protected function-pointer tables
    /// this syscall path makes (VFS ops, security hooks, driver ops) — the
    /// FP-configuration cost model.
    #[must_use]
    pub fn fp_hooks(self) -> u32 {
        match self {
            Sysno::Null => 1,
            Sysno::Getpid | Sysno::Getuid | Sysno::Geteuid | Sysno::Getgid => 1,
            Sysno::Setuid => 3,
            Sysno::Open => 6,
            Sysno::Close => 2,
            Sysno::Read | Sysno::Write => 3,
            Sysno::Stat => 3,
            Sysno::Seek => 1,
            Sysno::Pipe => 4,
            Sysno::Yield => 2,
            Sysno::AddKey => 3,
            Sysno::AesEncrypt => 2,
            Sysno::Mmap | Sysno::Munmap => 4,
            Sysno::Spawn => 6,
            Sysno::SelinuxCheck => 2,
            Sysno::Sigaction => 2,
            Sysno::Kill => 2,
            Sysno::Sigreturn => 1,
            Sysno::Exit => 3,
        }
    }

    /// `true` for syscalls whose path runs a credential permission check
    /// (reads the protected `cred.euid`).
    #[must_use]
    pub fn checks_creds(self) -> bool {
        matches!(
            self,
            Sysno::Setuid
                | Sysno::Open
                | Sysno::Read
                | Sysno::Write
                | Sysno::Stat
                | Sysno::AddKey
                | Sysno::AesEncrypt
                | Sysno::Mmap
                | Sysno::Munmap
                | Sysno::Spawn
                | Sysno::Kill
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for num in 0..24u64 {
            let sysno = Sysno::from_u64(num).expect("defined");
            assert_eq!(sysno as u64, num);
        }
        assert!(Sysno::from_u64(24).is_none());
        assert!(Sysno::from_u64(u64::MAX).is_none());
    }

    #[test]
    fn depths_are_plausible() {
        assert!(Sysno::Null.call_depth() < Sysno::Open.call_depth());
        assert!(Sysno::Getpid.base_insns() < Sysno::Spawn.base_insns());
    }
}
