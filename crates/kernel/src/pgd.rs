//! Page-global-directory pointers, §3.2.4 of the paper.
//!
//! Page tables are globally writable kernel data; an attacker who can find
//! them can rewrite permissions and disable memory protection. RegVault
//! randomizes every PGD pointer (`pgd_t` annotation) with the storage
//! address as tweak, hiding page-table locations and defeating
//! substitution; statically allocated tables are re-allocated so nothing
//! is findable at a known address.
//!
//! The model: a two-level table. The PGD is an array of 64-bit entries,
//! each (when valid) holding the address of a page-table page ORed with a
//! valid bit. Entries are stored encrypted (`__rand`, full range) when
//! non-control protection is on; a corrupted or substituted entry decrypts
//! to a garbage pointer which the walk detects as out-of-arena.

use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::PAGE_TABLE_BASE;
use crate::pfield;

/// Entries per directory/table page.
pub const ENTRIES: u64 = 512;
/// Bytes per page-table page.
pub const PT_PAGE_SIZE: u64 = ENTRIES * 8;
/// Valid bit in a (plaintext) entry.
pub const PTE_VALID: u64 = 1;

/// Arena-backed page-table allocator plus the root PGD.
#[derive(Debug, Clone)]
pub struct PageTables {
    pgd_base: u64,
    next_page: u64,
    arena_end: u64,
}

impl PageTables {
    /// Allocates the root PGD at a "re-allocated" (non-static) address:
    /// the arena origin plus a boot-time offset, mirroring the paper's
    /// re-allocation of statically placed tables.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults while zeroing the PGD.
    pub fn new(machine: &mut Machine, boot_offset: u64) -> Result<Self, KernelError> {
        let pgd_base = PAGE_TABLE_BASE + (boot_offset % 64) * PT_PAGE_SIZE;
        let mut tables = Self {
            pgd_base,
            next_page: pgd_base + PT_PAGE_SIZE,
            arena_end: PAGE_TABLE_BASE + 0x100_0000,
        };
        tables.zero_page(machine, pgd_base)?;
        Ok(tables)
    }

    fn zero_page(&mut self, machine: &mut Machine, base: u64) -> Result<(), KernelError> {
        machine.memory_mut().map_region(base, PT_PAGE_SIZE);
        // Charge a page-clear loop without 512 individual calls.
        machine.charge(regvault_sim::InsnClass::Store, 64);
        Ok(())
    }

    /// Guest address of the root PGD (the attacker must *find* this; with
    /// protection on, nothing in memory points to it in plaintext).
    #[must_use]
    pub fn pgd_base(&self) -> u64 {
        self.pgd_base
    }

    fn alloc_page(&mut self, machine: &mut Machine) -> Result<u64, KernelError> {
        if self.next_page >= self.arena_end {
            return Err(KernelError::ResourceExhausted);
        }
        let page = self.next_page;
        self.next_page += PT_PAGE_SIZE;
        self.zero_page(machine, page)?;
        Ok(page)
    }

    fn pgd_slot(&self, vaddr: u64) -> u64 {
        self.pgd_base + ((vaddr >> 21) % ENTRIES) * 8
    }

    /// Maps a virtual page: installs (or follows) the PGD entry and writes
    /// the leaf PTE.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] when an existing PGD entry
    /// decrypts to a pointer outside the page-table arena (corruption or
    /// substitution), [`KernelError::ResourceExhausted`] when the arena is
    /// full.
    pub fn map(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        vaddr: u64,
        paddr: u64,
    ) -> Result<(), KernelError> {
        let slot = self.pgd_slot(vaddr);
        let key = cfg.key_policy().data;
        let raw = machine.kernel_load_u64(slot)?;
        let pt_page = if raw == 0 {
            let page = self.alloc_page(machine)?;
            pfield::write_u64_conf(machine, key, slot, page | PTE_VALID, cfg.non_control)?;
            page
        } else {
            let entry = if cfg.non_control {
                machine
                    .kernel_decrypt(key, slot, raw, regvault_isa::ByteRange::FULL)
                    .expect("full range")
            } else {
                raw
            };
            let page = entry & !PTE_VALID;
            if entry & PTE_VALID == 0 || page < PAGE_TABLE_BASE || page >= self.arena_end {
                return Err(KernelError::IntegrityViolation { what: "pgd entry" });
            }
            machine.charge(regvault_sim::InsnClass::Alu, 2);
            page
        };
        let pte_slot = pt_page + ((vaddr >> 12) % ENTRIES) * 8;
        machine.kernel_store_u64(pte_slot, paddr | PTE_VALID)?;
        Ok(())
    }

    /// Walks the tables for `vaddr`, returning the mapped physical address.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] on a garbage PGD entry,
    /// [`KernelError::NotFound`] when nothing is mapped.
    pub fn walk(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        vaddr: u64,
    ) -> Result<u64, KernelError> {
        let slot = self.pgd_slot(vaddr);
        let raw = machine.kernel_load_u64(slot)?;
        if raw == 0 {
            return Err(KernelError::NotFound);
        }
        let entry = if cfg.non_control {
            machine
                .kernel_decrypt(
                    cfg.key_policy().data,
                    slot,
                    raw,
                    regvault_isa::ByteRange::FULL,
                )
                .expect("full range")
        } else {
            raw
        };
        let page = entry & !PTE_VALID;
        if entry & PTE_VALID == 0 || page < PAGE_TABLE_BASE || page >= self.arena_end {
            return Err(KernelError::IntegrityViolation { what: "pgd entry" });
        }
        let pte_slot = page + ((vaddr >> 12) % ENTRIES) * 8;
        let pte = machine.kernel_load_u64(pte_slot)?;
        if pte & PTE_VALID == 0 {
            return Err(KernelError::NotFound);
        }
        Ok(pte & !PTE_VALID)
    }

    /// Guest addresses of every populated PGD slot (for key rotation).
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn live_pgd_slots(&self, machine: &Machine) -> Result<Vec<u64>, KernelError> {
        let mut slots = Vec::new();
        for index in 0..ENTRIES {
            let slot = self.pgd_base + index * 8;
            if machine.memory().read_u64(slot)? != 0 {
                slots.push(slot);
            }
        }
        Ok(slots)
    }

    /// Unmaps a virtual page.
    ///
    /// # Errors
    ///
    /// Same as [`PageTables::walk`].
    pub fn unmap(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        vaddr: u64,
    ) -> Result<(), KernelError> {
        let slot = self.pgd_slot(vaddr);
        let raw = machine.kernel_load_u64(slot)?;
        if raw == 0 {
            return Err(KernelError::NotFound);
        }
        let entry = if cfg.non_control {
            machine
                .kernel_decrypt(
                    cfg.key_policy().data,
                    slot,
                    raw,
                    regvault_isa::ByteRange::FULL,
                )
                .expect("full range")
        } else {
            raw
        };
        let page = entry & !PTE_VALID;
        if entry & PTE_VALID == 0 || page < PAGE_TABLE_BASE || page >= self.arena_end {
            return Err(KernelError::IntegrityViolation { what: "pgd entry" });
        }
        let pte_slot = page + ((vaddr >> 12) % ENTRIES) * 8;
        machine.kernel_store_u64(pte_slot, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(_cfg: &ProtectionConfig) -> (Machine, PageTables) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
        let tables = PageTables::new(&mut machine, 3).unwrap();
        (machine, tables)
    }

    #[test]
    fn map_and_walk() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut tables) = setup(&cfg);
        tables
            .map(&mut machine, &cfg, 0x40_0000, 0x8010_0000)
            .unwrap();
        assert_eq!(
            tables.walk(&mut machine, &cfg, 0x40_0000).unwrap(),
            0x8010_0000
        );
        assert!(matches!(
            tables.walk(&mut machine, &cfg, 0x123_0000_0000),
            Err(KernelError::NotFound)
        ));
    }

    #[test]
    fn pgd_entries_are_randomized_in_memory() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut tables) = setup(&cfg);
        tables
            .map(&mut machine, &cfg, 0x40_0000, 0x8010_0000)
            .unwrap();
        let slot = tables.pgd_base() + ((0x40_0000u64 >> 21) % ENTRIES) * 8;
        let raw = machine.memory().read_u64(slot).unwrap();
        // A plaintext entry would point into the arena with the valid bit.
        assert_eq!(raw & PTE_VALID, raw & 1);
        assert!(
            !(PAGE_TABLE_BASE..PAGE_TABLE_BASE + 0x100_0000).contains(&(raw & !PTE_VALID)),
            "encrypted entry must not reveal the table location"
        );
    }

    #[test]
    fn corrupting_a_pgd_entry_is_detected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut tables) = setup(&cfg);
        tables
            .map(&mut machine, &cfg, 0x40_0000, 0x8010_0000)
            .unwrap();
        let slot = tables.pgd_base() + ((0x40_0000u64 >> 21) % ENTRIES) * 8;
        // Attacker points the entry at an attacker-controlled "table".
        machine
            .memory_mut()
            .write_u64(slot, 0x4141_4141_4141_4141)
            .unwrap();
        assert!(matches!(
            tables.walk(&mut machine, &cfg, 0x40_0000),
            Err(KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn corrupting_a_pgd_entry_works_without_protection() {
        let cfg = ProtectionConfig::off();
        let (mut machine, mut tables) = setup(&cfg);
        tables
            .map(&mut machine, &cfg, 0x40_0000, 0x8010_0000)
            .unwrap();
        let slot = tables.pgd_base() + ((0x40_0000u64 >> 21) % ENTRIES) * 8;
        // Point the PGD at a fake table whose PTE maps to attacker memory.
        let fake_table = PAGE_TABLE_BASE + 0x80_0000;
        machine.memory_mut().map_region(fake_table, PT_PAGE_SIZE);
        let pte_slot = fake_table + ((0x40_0000u64 >> 12) % ENTRIES) * 8;
        machine
            .memory_mut()
            .write_u64(pte_slot, 0xBAD0_0000 | PTE_VALID)
            .unwrap();
        machine
            .memory_mut()
            .write_u64(slot, fake_table | PTE_VALID)
            .unwrap();
        assert_eq!(
            tables.walk(&mut machine, &cfg, 0x40_0000).unwrap(),
            0xBAD0_0000,
            "unprotected walk follows the attacker's table"
        );
    }

    #[test]
    fn unmap_removes_the_translation() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut tables) = setup(&cfg);
        tables
            .map(&mut machine, &cfg, 0x40_0000, 0x8010_0000)
            .unwrap();
        tables.unmap(&mut machine, &cfg, 0x40_0000).unwrap();
        assert!(matches!(
            tables.walk(&mut machine, &cfg, 0x40_0000),
            Err(KernelError::NotFound)
        ));
    }
}
