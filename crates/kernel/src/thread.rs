//! Threads, per-thread keys, and context switching (§3.1.1 of the paper).
//!
//! Each thread gets its own return-address key and interrupt (CIP) key.
//! The keys are generated at thread creation, written to the hardware key
//! registers on context switch, and parked in `thread_info` **encrypted
//! under the master key** — the one key no software can read — so a memory
//! disclosure of `thread_info` yields only wrapped key material.

use rand::Rng;
use regvault_isa::{ByteRange, KeyReg};
use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::{kernel_stack_top, Kmalloc};
use crate::trap;

/// Maximum live threads.
pub const MAX_THREADS: u32 = 8;

/// `thread_info` layout offsets.
mod ti {
    pub const TID: u64 = 0;
    pub const STATE: u64 = 8;
    pub const RA_KEY_LO: u64 = 16;
    pub const RA_KEY_HI: u64 = 24;
    pub const CIP_KEY_LO: u64 = 32;
    pub const CIP_KEY_HI: u64 = 40;
    pub const KSTACK: u64 = 48;
    pub const FRAME: u64 = 56;
    pub const SIZE: u64 = 64;
}

/// Thread states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ThreadState {
    Free = 0,
    Runnable = 1,
    Current = 2,
    Dead = 3,
    /// The thread tripped an integrity check (or faulted unrecoverably) and
    /// has been taken out of scheduling. Its slot is retained — not reused —
    /// until the kernel [reaps](ThreadTable::reap) it, so a corrupted frame
    /// or key cannot leak into a successor thread.
    Quarantined = 4,
}

/// The thread table: `thread_info` objects in guest memory plus scheduler
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct ThreadTable {
    base: u64,
    states: Vec<ThreadState>,
    /// The currently running thread.
    pub current: u32,
}

impl ThreadTable {
    /// Allocates the table.
    #[must_use]
    pub fn new(heap: &mut Kmalloc) -> Self {
        Self {
            base: heap.alloc(ti::SIZE * u64::from(MAX_THREADS), 8),
            states: vec![ThreadState::Free; MAX_THREADS as usize],
            current: 0,
        }
    }

    /// Guest address of thread `tid`'s `thread_info`.
    #[must_use]
    pub fn thread_info_addr(&self, tid: u32) -> u64 {
        self.base + ti::SIZE * u64::from(tid)
    }

    /// Guest address of thread `tid`'s interrupt frame (on its kernel
    /// stack).
    #[must_use]
    pub fn interrupt_frame_addr(&self, tid: u32) -> u64 {
        kernel_stack_top(tid) - trap::FRAME_SIZE
    }

    /// State of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn state(&self, tid: u32) -> ThreadState {
        self.states[tid as usize]
    }

    /// Creates a thread: generates and wraps its keys, initializes
    /// `thread_info`.
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadTableFull`] when no slot is free — a typed,
    /// recoverable condition so a supervisor can treat a denied respawn as
    /// a degradation event rather than a crash.
    pub fn spawn(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        rng: &mut impl Rng,
    ) -> Result<u32, KernelError> {
        let tid = self
            .states
            .iter()
            .position(|s| *s == ThreadState::Free)
            .ok_or(KernelError::ThreadTableFull)? as u32;
        self.states[tid as usize] = ThreadState::Runnable;
        let info = self.thread_info_addr(tid);
        machine.kernel_store_u64(info + ti::TID, u64::from(tid))?;
        machine.kernel_store_u64(info + ti::STATE, ThreadState::Runnable as u64)?;
        machine.kernel_store_u64(info + ti::KSTACK, kernel_stack_top(tid))?;
        machine.kernel_store_u64(info + ti::FRAME, self.interrupt_frame_addr(tid))?;
        // Generate the per-thread RA and CIP keys; wrap each 64-bit half
        // under the master key with the storage address as tweak, so the
        // in-memory copies are useless to a memory-disclosure attacker.
        // (The unprotected baseline kernel has no per-thread keys at all.)
        if cfg.ra || cfg.cip {
            for offset in [ti::RA_KEY_LO, ti::RA_KEY_HI, ti::CIP_KEY_LO, ti::CIP_KEY_HI] {
                let half: u64 = rng.gen();
                let addr = info + offset;
                let wrapped = machine.kernel_encrypt(KeyReg::M, addr, half, ByteRange::FULL);
                machine.kernel_store_u64(addr, wrapped)?;
            }
        }
        // Thread creation cost (fork path).
        machine.charge(regvault_sim::InsnClass::Alu, 300);
        machine.charge(regvault_sim::InsnClass::Store, 60);
        Ok(tid)
    }

    /// Unwraps one wrapped key half from `thread_info`.
    ///
    /// A full-range decrypt has no redundancy, so this cannot *detect*
    /// tampering: a corrupted wrapped half unwraps to garbage, and the
    /// thread's subsequent CIP restore fails its own integrity check. Both
    /// arms of the decrypt therefore yield the plaintext.
    fn unwrap_half(machine: &mut Machine, addr: u64) -> Result<u64, KernelError> {
        let wrapped = machine.kernel_load_u64(addr)?;
        Ok(machine
            .kernel_decrypt(KeyReg::M, addr, wrapped, ByteRange::FULL)
            .unwrap_or_else(|garbled| garbled))
    }

    /// Loads thread `tid`'s keys into the hardware key registers — the
    /// context-switch path. Each write invalidates the matching CLB
    /// entries, exactly as the hardware does.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn install_keys(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
    ) -> Result<(), KernelError> {
        let info = self.thread_info_addr(tid);
        if cfg.ra {
            let lo = Self::unwrap_half(machine, info + ti::RA_KEY_LO)?;
            let hi = Self::unwrap_half(machine, info + ti::RA_KEY_HI)?;
            machine
                .write_key_register(cfg.key_policy().return_addr, hi, lo)
                .expect("ra key register is general-purpose");
        }
        if cfg.cip {
            let lo = Self::unwrap_half(machine, info + ti::CIP_KEY_LO)?;
            let hi = Self::unwrap_half(machine, info + ti::CIP_KEY_HI)?;
            machine
                .write_key_register(cfg.key_policy().interrupt, hi, lo)
                .expect("cip key register is general-purpose");
        }
        Ok(())
    }

    /// Marks a thread dead and its slot free for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn free(&mut self, tid: u32) {
        self.states[tid as usize] = ThreadState::Free;
    }

    /// Takes a faulted thread out of scheduling without reusing its slot.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn quarantine(&mut self, tid: u32) {
        self.states[tid as usize] = ThreadState::Quarantined;
    }

    /// Releases a quarantined (or dead) thread's slot for reuse. The next
    /// [`ThreadTable::spawn`] into the slot rewrites `thread_info` and
    /// generates fresh keys, so nothing corrupt survives into the
    /// successor.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn reap(&mut self, tid: u32) {
        self.states[tid as usize] = ThreadState::Free;
    }

    /// Picks the next runnable thread after `current` (round robin).
    #[must_use]
    pub fn next_runnable(&self) -> u32 {
        let n = MAX_THREADS;
        for step in 1..=n {
            let candidate = (self.current + step) % n;
            if matches!(
                self.states[candidate as usize],
                ThreadState::Runnable | ThreadState::Current
            ) {
                return candidate;
            }
        }
        self.current
    }

    /// Performs a context switch: CIP-save the current thread's registers,
    /// switch identity, install the new thread's keys, CIP-restore its
    /// registers (if it has ever been saved).
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] when the incoming thread's
    /// saved context was tampered with.
    pub fn context_switch(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        to: u32,
    ) -> Result<(), KernelError> {
        let from = self.current;
        machine.charge(regvault_sim::InsnClass::Alu, 1600); // scheduler core
        machine.charge(regvault_sim::InsnClass::Load, 40);
        machine.charge(regvault_sim::InsnClass::Store, 40);
        let cip_key = cfg.key_policy().interrupt;
        trap::save_context(machine, cfg, cip_key, self.interrupt_frame_addr(from))?;
        self.states[from as usize] = ThreadState::Runnable;
        self.current = to;
        self.states[to as usize] = ThreadState::Current;
        // Key registers are per-thread state: reload (and invalidate the
        // matching CLB entries) only when the thread actually changes.
        if to != from {
            self.install_keys(machine, cfg, to)?;
        }
        let had_frame = machine
            .memory()
            .read_u64(self.interrupt_frame_addr(to))
            .is_ok();
        if had_frame && to != from {
            let regs = trap::restore_context(machine, cfg, cip_key, self.interrupt_frame_addr(to))?;
            trap::apply_to_hart(machine, &regs);
        } else if to == from {
            let regs =
                trap::restore_context(machine, cfg, cip_key, self.interrupt_frame_addr(from))?;
            trap::apply_to_hart(machine, &regs);
        }
        Ok(())
    }

    /// Switches to `to` *without* CIP-saving the outgoing thread — the
    /// recovery path after the current thread has been quarantined. Its
    /// registers and frame are untrusted (possibly the corrupted object
    /// itself), so nothing of it is persisted; the caller has already
    /// marked it [`ThreadState::Quarantined`].
    ///
    /// `current` is updated *before* the incoming thread's frame is
    /// restored, so if that restore itself trips an integrity check the
    /// kernel can quarantine `to` in turn and keep iterating.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] when the incoming thread's
    /// saved context was tampered with.
    pub fn switch_abandon(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        to: u32,
    ) -> Result<(), KernelError> {
        let from = self.current;
        machine.charge(regvault_sim::InsnClass::Alu, 1600);
        machine.charge(regvault_sim::InsnClass::Load, 40);
        machine.charge(regvault_sim::InsnClass::Store, 40);
        self.current = to;
        self.states[to as usize] = ThreadState::Current;
        if to != from {
            self.install_keys(machine, cfg, to)?;
        }
        let frame = self.interrupt_frame_addr(to);
        if machine.memory().read_u64(frame).is_ok() {
            let regs = trap::restore_context(machine, cfg, cfg.key_policy().interrupt, frame)?;
            trap::apply_to_hart(machine, &regs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use regvault_sim::MachineConfig;

    fn setup() -> (Machine, ThreadTable, rand::rngs::StdRng) {
        let mut machine = Machine::new(MachineConfig::default());
        for key in [KeyReg::A, KeyReg::B, KeyReg::C, KeyReg::D, KeyReg::E] {
            machine.write_key_register(key, 7, 9).unwrap();
        }
        let mut heap = Kmalloc::new();
        let table = ThreadTable::new(&mut heap);
        (machine, table, rand::rngs::StdRng::seed_from_u64(11))
    }

    #[test]
    fn spawn_assigns_sequential_tids() {
        let (mut machine, mut table, mut rng) = setup();
        assert_eq!(
            table
                .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
                .unwrap(),
            0
        );
        assert_eq!(
            table
                .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
                .unwrap(),
            1
        );
        assert_eq!(table.state(1), ThreadState::Runnable);
    }

    #[test]
    fn wrapped_keys_are_not_plaintext() {
        let (mut machine, mut table, mut rng) = setup();
        // Two spawns with the same RNG stream would produce the same raw
        // halves; the wrapped forms must not equal the raw values.
        let tid = table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        let info = table.thread_info_addr(tid);
        let wrapped = machine.memory().read_u64(info + 16).unwrap();
        // Unwrap through the master key and compare.
        let unwrapped = machine
            .kernel_decrypt(KeyReg::M, info + 16, wrapped, ByteRange::FULL)
            .unwrap();
        assert_ne!(wrapped, unwrapped);
    }

    #[test]
    fn install_keys_changes_ra_ciphertexts() {
        let (mut machine, mut table, mut rng) = setup();
        let cfg = ProtectionConfig::full();
        let t0 = table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        let t1 = table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        table.install_keys(&mut machine, &cfg, t0).unwrap();
        let ct0 =
            machine.kernel_encrypt(cfg.key_policy().return_addr, 0x40, 0x1234, ByteRange::FULL);
        table.install_keys(&mut machine, &cfg, t1).unwrap();
        let ct1 =
            machine.kernel_encrypt(cfg.key_policy().return_addr, 0x40, 0x1234, ByteRange::FULL);
        assert_ne!(ct0, ct1, "each thread encrypts RAs under its own key");
    }

    #[test]
    fn context_switch_round_trips_registers() {
        let (mut machine, mut table, mut rng) = setup();
        let cfg = ProtectionConfig::full();
        let t0 = table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        let _t1 = table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        table.install_keys(&mut machine, &cfg, t0).unwrap();
        table.current = t0;
        machine.hart_mut().set_reg(regvault_isa::Reg::S1, 0xABCD);
        // Switch away and back.
        table.context_switch(&mut machine, &cfg, 1).unwrap();
        machine.hart_mut().set_reg(regvault_isa::Reg::S1, 0);
        table.context_switch(&mut machine, &cfg, 0).unwrap();
        assert_eq!(machine.hart().reg(regvault_isa::Reg::S1), 0xABCD);
    }

    #[test]
    fn quarantined_threads_are_skipped_then_reaped() {
        let (mut machine, mut table, mut rng) = setup();
        let cfg = ProtectionConfig::full();
        for _ in 0..3 {
            table.spawn(&mut machine, &cfg, &mut rng).unwrap();
        }
        table.current = 0;
        table.quarantine(1);
        assert_eq!(table.next_runnable(), 2, "quarantined slot is skipped");
        assert_eq!(table.state(1), ThreadState::Quarantined);
        // The slot is not reused while quarantined...
        assert_eq!(table.spawn(&mut machine, &cfg, &mut rng).unwrap(), 3);
        // ...and becomes reusable after the reap.
        table.reap(1);
        assert_eq!(table.spawn(&mut machine, &cfg, &mut rng).unwrap(), 1);
    }

    #[test]
    fn switch_abandon_discards_the_faulted_context() {
        let (mut machine, mut table, mut rng) = setup();
        let cfg = ProtectionConfig::full();
        let t0 = table.spawn(&mut machine, &cfg, &mut rng).unwrap();
        let t1 = table.spawn(&mut machine, &cfg, &mut rng).unwrap();
        table.install_keys(&mut machine, &cfg, t0).unwrap();
        table.current = t0;
        // Park t1 with a known register value, come back to t0.
        machine.hart_mut().set_reg(regvault_isa::Reg::S1, 0x1111);
        table.context_switch(&mut machine, &cfg, t1).unwrap();
        machine.hart_mut().set_reg(regvault_isa::Reg::S1, 0x2222);
        table.context_switch(&mut machine, &cfg, t0).unwrap();
        // t0 faults: quarantine and abandon its registers entirely.
        machine.hart_mut().set_reg(regvault_isa::Reg::S1, 0xBAAD);
        table.quarantine(t0);
        table.switch_abandon(&mut machine, &cfg, t1).unwrap();
        assert_eq!(table.current, t1);
        assert_eq!(
            machine.hart().reg(regvault_isa::Reg::S1),
            0x2222,
            "incoming thread's saved context is restored"
        );
        // t0's frame was never re-saved with the poisoned register.
        table.reap(t0);
    }

    #[test]
    fn next_runnable_round_robins() {
        let (mut machine, mut table, mut rng) = setup();
        table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        table
            .spawn(&mut machine, &ProtectionConfig::full(), &mut rng)
            .unwrap();
        table.current = 0;
        assert_eq!(table.next_runnable(), 1);
        table.current = 2;
        assert_eq!(table.next_runnable(), 0);
    }
}
