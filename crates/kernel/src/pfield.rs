//! Shared helpers for protected (randomized) kernel fields.
//!
//! Every annotated field in the miniature kernel is stored as one or two
//! 64-bit QARMA ciphertext blocks, encrypted with the data key and the
//! field's storage address as tweak (Table 2). These helpers perform the
//! load/decrypt and encrypt/store sequences on the machine, charging
//! cycles, exactly as the compiler-instrumented code of Figure 2 would.

use regvault_isa::{ByteRange, KeyReg};
use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;

/// Writes a protected 32-bit value (`__rand_integrity` on 32-bit data):
/// zero-extended, encrypted over `[3:0]`, stored as one block.
pub(crate) fn write_u32(
    machine: &mut Machine,
    cfg: &ProtectionConfig,
    key: KeyReg,
    addr: u64,
    value: u32,
    protected: bool,
) -> Result<(), KernelError> {
    if protected {
        let ct = machine.kernel_encrypt(key, addr, u64::from(value), ByteRange::LOW32);
        machine.kernel_store_u64(addr, ct)?;
    } else {
        machine.kernel_store_u64(addr, u64::from(value))?;
    }
    let _ = cfg;
    Ok(())
}

/// Reads a protected 32-bit value, raising an integrity violation when the
/// stored block was corrupted or substituted.
pub(crate) fn read_u32(
    machine: &mut Machine,
    key: KeyReg,
    addr: u64,
    protected: bool,
    what: &'static str,
) -> Result<u32, KernelError> {
    let raw = machine.kernel_load_u64(addr)?;
    if protected {
        let pt = machine
            .kernel_decrypt(key, addr, raw, ByteRange::LOW32)
            .map_err(|_| KernelError::IntegrityViolation { what })?;
        Ok(pt as u32)
    } else {
        Ok(raw as u32)
    }
}

/// Writes a protected 64-bit value with confidentiality only (`__rand`,
/// full-range `[7:0]`) — used for pointers (PGD, function pointers).
pub(crate) fn write_u64_conf(
    machine: &mut Machine,
    key: KeyReg,
    addr: u64,
    value: u64,
    protected: bool,
) -> Result<(), KernelError> {
    let stored = if protected {
        machine.kernel_encrypt(key, addr, value, ByteRange::FULL)
    } else {
        value
    };
    machine.kernel_store_u64(addr, stored)?;
    Ok(())
}

/// Reads a `__rand` (confidentiality-only) 64-bit value. Corruption is not
/// *detected* here — the value decrypts to garbage instead, which is the
/// paper's point for pointers.
pub(crate) fn read_u64_conf(
    machine: &mut Machine,
    key: KeyReg,
    addr: u64,
    protected: bool,
) -> Result<u64, KernelError> {
    let raw = machine.kernel_load_u64(addr)?;
    if protected {
        // Full-range decryption has no redundancy; even a faulted datapath
        // (e.g. a poisoned CLB entry) yields garbage rather than a panic —
        // the consumer of the pointer is what crashes, detectably.
        let pt = machine
            .kernel_decrypt(key, addr, raw, ByteRange::FULL)
            .unwrap_or_else(|garbled| garbled);
        Ok(pt)
    } else {
        Ok(raw)
    }
}

/// Writes a protected 64-bit value with integrity: split into two
/// integrity-checked 32-bit blocks (Figure 2c), occupying 16 bytes.
pub(crate) fn write_u64_integrity(
    machine: &mut Machine,
    key: KeyReg,
    addr: u64,
    value: u64,
    protected: bool,
) -> Result<(), KernelError> {
    if protected {
        let lo = machine.kernel_encrypt(key, addr, value & 0xFFFF_FFFF, ByteRange::LOW32);
        let hi = machine.kernel_encrypt(
            key,
            addr + 8,
            value & 0xFFFF_FFFF_0000_0000,
            ByteRange::HIGH32,
        );
        machine.kernel_store_u64(addr, lo)?;
        machine.kernel_store_u64(addr + 8, hi)?;
    } else {
        machine.kernel_store_u64(addr, value)?;
        machine.kernel_store_u64(addr + 8, 0)?;
    }
    Ok(())
}

/// Reads a 64-bit integrity-protected value (two blocks, ORed together).
pub(crate) fn read_u64_integrity(
    machine: &mut Machine,
    key: KeyReg,
    addr: u64,
    protected: bool,
    what: &'static str,
) -> Result<u64, KernelError> {
    let raw_lo = machine.kernel_load_u64(addr)?;
    let raw_hi = machine.kernel_load_u64(addr + 8)?;
    if protected {
        let lo = machine
            .kernel_decrypt(key, addr, raw_lo, ByteRange::LOW32)
            .map_err(|_| KernelError::IntegrityViolation { what })?;
        let hi = machine
            .kernel_decrypt(key, addr + 8, raw_hi, ByteRange::HIGH32)
            .map_err(|_| KernelError::IntegrityViolation { what })?;
        Ok(lo | hi)
    } else {
        Ok(raw_lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_sim::MachineConfig;

    fn machine() -> Machine {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
        machine
    }

    #[test]
    fn protected_u32_round_trip() {
        let mut m = machine();
        let cfg = ProtectionConfig::full();
        write_u32(&mut m, &cfg, KeyReg::D, 0x9000, 1234, true).unwrap();
        assert_ne!(m.memory().read_u64(0x9000).unwrap(), 1234);
        assert_eq!(
            read_u32(&mut m, KeyReg::D, 0x9000, true, "x").unwrap(),
            1234
        );
    }

    #[test]
    fn corrupting_protected_u32_is_detected() {
        let mut m = machine();
        let cfg = ProtectionConfig::full();
        write_u32(&mut m, &cfg, KeyReg::D, 0x9000, 1234, true).unwrap();
        let ct = m.memory().read_u64(0x9000).unwrap();
        m.memory_mut().write_u64(0x9000, ct ^ 0x4).unwrap();
        assert!(matches!(
            read_u32(&mut m, KeyReg::D, 0x9000, true, "x"),
            Err(KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn unprotected_u32_accepts_corruption() {
        let mut m = machine();
        let cfg = ProtectionConfig::off();
        write_u32(&mut m, &cfg, KeyReg::D, 0x9000, 1234, false).unwrap();
        m.memory_mut().write_u64(0x9000, 0).unwrap();
        assert_eq!(read_u32(&mut m, KeyReg::D, 0x9000, false, "x").unwrap(), 0);
    }

    #[test]
    fn integrity_u64_round_trip_and_detection() {
        let mut m = machine();
        let value = 0x1122_3344_5566_7788u64;
        write_u64_integrity(&mut m, KeyReg::D, 0x9100, value, true).unwrap();
        assert_eq!(
            read_u64_integrity(&mut m, KeyReg::D, 0x9100, true, "x").unwrap(),
            value
        );
        // Swap the two halves (substitution): must be detected.
        let lo = m.memory().read_u64(0x9100).unwrap();
        let hi = m.memory().read_u64(0x9108).unwrap();
        m.memory_mut().write_u64(0x9100, hi).unwrap();
        m.memory_mut().write_u64(0x9108, lo).unwrap();
        assert!(matches!(
            read_u64_integrity(&mut m, KeyReg::D, 0x9100, true, "x"),
            Err(KernelError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn conf_only_u64_randomizes_but_does_not_detect() {
        let mut m = machine();
        write_u64_conf(&mut m, KeyReg::D, 0x9200, 0xABCD, true).unwrap();
        assert_ne!(m.memory().read_u64(0x9200).unwrap(), 0xABCD);
        // Corruption decrypts to garbage, silently.
        m.memory_mut().write_u64(0x9200, 0x1111).unwrap();
        let got = read_u64_conf(&mut m, KeyReg::D, 0x9200, true).unwrap();
        assert_ne!(got, 0xABCD);
    }
}
