//! User credentials (`struct cred`), §3.2.2 of the paper.
//!
//! Attackers escalate privileges by overwriting the uid/gid fields of
//! `cred` with zero. RegVault randomizes the fields with integrity
//! protection (`__rand_integrity`), so a corrupted field raises an
//! integrity exception instead of yielding root.
//!
//! Layout of one cred object in guest memory (storage sizes already
//! expanded for ciphertext blocks, as the annotation macros do):
//!
//! ```text
//! +0   usage        u64   (plain refcount)
//! +8   uid          u32 __rand_integrity  (one 64-bit block)
//! +16  gid          u32 __rand_integrity
//! +24  euid         u32 __rand_integrity
//! +32  egid         u32 __rand_integrity
//! +40  session      u64 __rand_integrity  (two blocks, Figure 2c)
//! ```

use regvault_sim::Machine;

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::Kmalloc;
use crate::pfield;

/// Size of one cred object in guest memory.
pub const CRED_SIZE: u64 = 56;

/// Byte offset of the `uid` field inside a cred object.
pub const UID_OFFSET: u64 = 8;
/// Byte offset of the `gid` field.
pub const GID_OFFSET: u64 = 16;
/// Byte offset of the `euid` field.
pub const EUID_OFFSET: u64 = 24;
/// Byte offset of the `egid` field.
pub const EGID_OFFSET: u64 = 32;
/// Byte offset of the 64-bit `session` token (occupies two ciphertext
/// blocks when protected, per Figure 2c of the paper).
pub const SESSION_OFFSET: u64 = 40;

/// The four protected credential fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CredField {
    Uid,
    Gid,
    Euid,
    Egid,
}

impl CredField {
    fn offset(self) -> u64 {
        match self {
            CredField::Uid => UID_OFFSET,
            CredField::Gid => GID_OFFSET,
            CredField::Euid => EUID_OFFSET,
            CredField::Egid => EGID_OFFSET,
        }
    }

    fn what(self) -> &'static str {
        match self {
            CredField::Uid => "cred.uid",
            CredField::Gid => "cred.gid",
            CredField::Euid => "cred.euid",
            CredField::Egid => "cred.egid",
        }
    }
}

/// A table of per-thread cred objects living in guest memory.
#[derive(Debug, Clone)]
pub struct CredStore {
    base: u64,
    slots: u32,
}

impl CredStore {
    /// Allocates room for `slots` cred objects on the kernel heap.
    #[must_use]
    pub fn new(heap: &mut Kmalloc, slots: u32) -> Self {
        let base = heap.alloc(CRED_SIZE * u64::from(slots), 8);
        Self { base, slots }
    }

    /// Guest address of thread `tid`'s cred object — the location an
    /// attacker with arbitrary write targets.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn cred_addr(&self, tid: u32) -> u64 {
        assert!(tid < self.slots, "tid out of range");
        self.base + CRED_SIZE * u64::from(tid)
    }

    /// Initializes a cred object (at thread creation).
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn init(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
        uid: u32,
        gid: u32,
    ) -> Result<(), KernelError> {
        let addr = self.cred_addr(tid);
        machine.kernel_store_u64(addr, 1)?; // usage refcount
        for (field, value) in [
            (CredField::Uid, uid),
            (CredField::Gid, gid),
            (CredField::Euid, uid),
            (CredField::Egid, gid),
        ] {
            self.write(machine, cfg, tid, field, value)?;
        }
        let token = (u64::from(uid) << 32) | u64::from(tid) | 0x5E55_0000;
        self.write_session(machine, cfg, tid, token)?;
        Ok(())
    }

    /// Reads a credential field, verifying integrity when protected.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] if the stored block was
    /// corrupted or substituted.
    pub fn read(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
        field: CredField,
    ) -> Result<u32, KernelError> {
        let addr = self.cred_addr(tid) + field.offset();
        pfield::read_u32(
            machine,
            cfg.key_policy().data,
            addr,
            cfg.non_control,
            field.what(),
        )
    }

    /// Writes a credential field (kernel-internal path, e.g. `setuid`).
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn write(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
        field: CredField,
        value: u32,
    ) -> Result<(), KernelError> {
        let addr = self.cred_addr(tid) + field.offset();
        pfield::write_u32(
            machine,
            cfg,
            cfg.key_policy().data,
            addr,
            value,
            cfg.non_control,
        )
    }

    /// Writes the 64-bit session token (integrity-protected as two split
    /// blocks when non-control protection is on — the Figure 2c pattern).
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn write_session(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
        token: u64,
    ) -> Result<(), KernelError> {
        let addr = self.cred_addr(tid) + SESSION_OFFSET;
        pfield::write_u64_integrity(machine, cfg.key_policy().data, addr, token, cfg.non_control)
    }

    /// Reads the 64-bit session token, verifying both halves.
    ///
    /// # Errors
    ///
    /// [`KernelError::IntegrityViolation`] on corruption or half-swaps.
    pub fn read_session(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
    ) -> Result<u64, KernelError> {
        let addr = self.cred_addr(tid) + SESSION_OFFSET;
        pfield::read_u64_integrity(
            machine,
            cfg.key_policy().data,
            addr,
            cfg.non_control,
            "cred.session",
        )
    }

    /// The kernel's capability check: does `tid` run as root?
    ///
    /// # Errors
    ///
    /// Propagates integrity violations from the euid read.
    pub fn is_root(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        tid: u32,
    ) -> Result<bool, KernelError> {
        Ok(self.read(machine, cfg, tid, CredField::Euid)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(cfg: &ProtectionConfig) -> (Machine, CredStore) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
        let mut heap = Kmalloc::new();
        let store = CredStore::new(&mut heap, 4);
        store.init(&mut machine, cfg, 0, 1000, 1000).unwrap();
        (machine, store)
    }

    #[test]
    fn read_back_initial_values() {
        let cfg = ProtectionConfig::full();
        let (mut machine, store) = setup(&cfg);
        assert_eq!(
            store.read(&mut machine, &cfg, 0, CredField::Uid).unwrap(),
            1000
        );
        assert!(!store.is_root(&mut machine, &cfg, 0).unwrap());
    }

    #[test]
    fn uid_is_randomized_in_memory_when_protected() {
        let cfg = ProtectionConfig::full();
        let (machine, store) = setup(&cfg);
        let raw = machine
            .memory()
            .read_u64(store.cred_addr(0) + UID_OFFSET)
            .unwrap();
        assert_ne!(raw, 1000);
    }

    #[test]
    fn uid_is_plaintext_when_unprotected() {
        let cfg = ProtectionConfig::off();
        let (machine, store) = setup(&cfg);
        let raw = machine
            .memory()
            .read_u64(store.cred_addr(0) + UID_OFFSET)
            .unwrap();
        assert_eq!(raw, 1000);
    }

    #[test]
    fn privilege_escalation_write_is_detected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, store) = setup(&cfg);
        // Attacker overwrites euid with 0 (root).
        machine
            .memory_mut()
            .write_u64(store.cred_addr(0) + EUID_OFFSET, 0)
            .unwrap();
        assert!(matches!(
            store.is_root(&mut machine, &cfg, 0),
            Err(KernelError::IntegrityViolation { what: "cred.euid" })
        ));
    }

    #[test]
    fn privilege_escalation_succeeds_without_protection() {
        let cfg = ProtectionConfig::off();
        let (mut machine, store) = setup(&cfg);
        machine
            .memory_mut()
            .write_u64(store.cred_addr(0) + EUID_OFFSET, 0)
            .unwrap();
        assert!(store.is_root(&mut machine, &cfg, 0).unwrap());
    }

    #[test]
    fn session_token_round_trips_and_detects_corruption() {
        let cfg = ProtectionConfig::full();
        let (mut machine, store) = setup(&cfg);
        store
            .write_session(&mut machine, &cfg, 0, 0xDEAD_BEEF_CAFE_F00D)
            .unwrap();
        assert_eq!(
            store.read_session(&mut machine, &cfg, 0).unwrap(),
            0xDEAD_BEEF_CAFE_F00D
        );
        // Corrupt the high half block only.
        let addr = store.cred_addr(0) + SESSION_OFFSET + 8;
        let ct = machine.memory().read_u64(addr).unwrap();
        machine.memory_mut().write_u64(addr, ct ^ 1).unwrap();
        assert!(matches!(
            store.read_session(&mut machine, &cfg, 0),
            Err(KernelError::IntegrityViolation {
                what: "cred.session"
            })
        ));
    }

    #[test]
    fn session_token_halves_cannot_be_swapped() {
        let cfg = ProtectionConfig::full();
        let (mut machine, store) = setup(&cfg);
        store
            .write_session(&mut machine, &cfg, 0, 0x1111_2222_3333_4444)
            .unwrap();
        let base = store.cred_addr(0) + SESSION_OFFSET;
        let lo = machine.memory().read_u64(base).unwrap();
        let hi = machine.memory().read_u64(base + 8).unwrap();
        machine.memory_mut().write_u64(base, hi).unwrap();
        machine.memory_mut().write_u64(base + 8, lo).unwrap();
        assert!(store.read_session(&mut machine, &cfg, 0).is_err());
    }

    #[test]
    fn cross_slot_substitution_is_detected() {
        // Copy root's encrypted uid block into another thread's cred: the
        // address tweak differs, so the integrity check fires.
        let cfg = ProtectionConfig::full();
        let (mut machine, store) = setup(&cfg);
        store.init(&mut machine, &cfg, 1, 0, 0).unwrap(); // a root thread
        let root_block = machine
            .memory()
            .read_u64(store.cred_addr(1) + EUID_OFFSET)
            .unwrap();
        machine
            .memory_mut()
            .write_u64(store.cred_addr(0) + EUID_OFFSET, root_block)
            .unwrap();
        assert!(store.is_root(&mut machine, &cfg, 0).is_err());
    }
}
