//! Kernel keyrings with always-encrypted key material, §3.2.1 of the paper.
//!
//! Linux keyrings store cryptographic keys as plaintext, so any kernel
//! memory disclosure leaks them. RegVault keeps the material encrypted in
//! memory: keys are encrypted at setup time (storage-address tweak) and
//! decrypted into registers only inside the crypto-engine functions,
//! immediately after loading.
//!
//! Entry layout in guest memory (24 bytes):
//!
//! ```text
//! +0   serial   u64 (plain)
//! +8   key_lo   64-bit block (__rand when non-control protection is on)
//! +16  key_hi   64-bit block
//! ```

use regvault_sim::Machine;

use crate::aes::Aes128;
use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::Kmalloc;
use crate::pfield;

/// Bytes per keyring entry.
pub const ENTRY_SIZE: u64 = 24;

/// A table of kernel keys in guest memory.
#[derive(Debug, Clone)]
pub struct Keyring {
    base: u64,
    capacity: u32,
    count: u32,
}

impl Keyring {
    /// Allocates a keyring with room for `capacity` keys.
    #[must_use]
    pub fn new(heap: &mut Kmalloc, capacity: u32) -> Self {
        Self {
            base: heap.alloc(ENTRY_SIZE * u64::from(capacity), 8),
            capacity,
            count: 0,
        }
    }

    /// Number of keys currently installed.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Guest address of entry `index` (attacker-visible).
    #[must_use]
    pub fn entry_addr(&self, index: u32) -> u64 {
        self.base + ENTRY_SIZE * u64::from(index)
    }

    /// Installs key material, returning its serial.
    ///
    /// With non-control protection the 16 bytes are encrypted under the
    /// data key before they ever reach memory.
    ///
    /// # Errors
    ///
    /// [`KernelError::ResourceExhausted`] when the ring is full.
    pub fn add_key(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        material: [u8; 16],
    ) -> Result<u64, KernelError> {
        if self.count == self.capacity {
            return Err(KernelError::ResourceExhausted);
        }
        let index = self.count;
        self.count += 1;
        let serial = u64::from(index) + 1;
        let addr = self.entry_addr(index);
        let key = cfg.key_policy().data;
        let lo = u64::from_le_bytes(material[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(material[8..].try_into().expect("8 bytes"));
        machine.kernel_store_u64(addr, serial)?;
        pfield::write_u64_conf(machine, key, addr + 8, lo, cfg.non_control)?;
        pfield::write_u64_conf(machine, key, addr + 16, hi, cfg.non_control)?;
        Ok(serial)
    }

    /// Loads key material "into registers": the decryption happens right
    /// after the loads, never leaving plaintext in guest memory.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotFound`] for unknown serials.
    pub fn load_key(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        serial: u64,
    ) -> Result<[u8; 16], KernelError> {
        if serial == 0 || serial > u64::from(self.count) {
            return Err(KernelError::NotFound);
        }
        let addr = self.entry_addr((serial - 1) as u32);
        let key = cfg.key_policy().data;
        let lo = pfield::read_u64_conf(machine, key, addr + 8, cfg.non_control)?;
        let hi = pfield::read_u64_conf(machine, key, addr + 16, cfg.non_control)?;
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&lo.to_le_bytes());
        material[8..].copy_from_slice(&hi.to_le_bytes());
        Ok(material)
    }

    /// The kernel AES engine: encrypts one block under the keyring key
    /// `serial`, charging the software-AES instruction budget.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotFound`] for unknown serials.
    pub fn aes_encrypt(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        serial: u64,
        block: [u8; 16],
    ) -> Result<[u8; 16], KernelError> {
        let material = self.load_key(machine, cfg, serial)?;
        machine.charge(regvault_sim::InsnClass::Alu, Aes128::block_op_insns());
        Ok(Aes128::new(&material).encrypt_block(&block))
    }

    /// The kernel AES engine, decryption direction.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotFound`] for unknown serials.
    pub fn aes_decrypt(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        serial: u64,
        block: [u8; 16],
    ) -> Result<[u8; 16], KernelError> {
        let material = self.load_key(machine, cfg, serial)?;
        machine.charge(regvault_sim::InsnClass::Alu, Aes128::block_op_insns());
        Ok(Aes128::new(&material).decrypt_block(&block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(cfg: &ProtectionConfig) -> (Machine, Keyring, u64) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
        let mut heap = Kmalloc::new();
        let mut ring = Keyring::new(&mut heap, 4);
        let serial = ring
            .add_key(&mut machine, cfg, *b"super-secret-key")
            .unwrap();
        (machine, ring, serial)
    }

    #[test]
    fn aes_round_trip_through_the_keyring() {
        let cfg = ProtectionConfig::full();
        let (mut machine, ring, serial) = setup(&cfg);
        let ct = ring
            .aes_encrypt(&mut machine, &cfg, serial, *b"attack at dawn!!")
            .unwrap();
        let pt = ring.aes_decrypt(&mut machine, &cfg, serial, ct).unwrap();
        assert_eq!(&pt, b"attack at dawn!!");
    }

    #[test]
    fn key_material_is_encrypted_in_memory() {
        let cfg = ProtectionConfig::full();
        let (machine, ring, _) = setup(&cfg);
        let addr = ring.entry_addr(0);
        let lo = machine.memory().read_u64(addr + 8).unwrap();
        let hi = machine.memory().read_u64(addr + 16).unwrap();
        let mut leaked = [0u8; 16];
        leaked[..8].copy_from_slice(&lo.to_le_bytes());
        leaked[8..].copy_from_slice(&hi.to_le_bytes());
        assert_ne!(&leaked, b"super-secret-key", "disclosure yields ciphertext");
    }

    #[test]
    fn key_material_leaks_without_protection() {
        let cfg = ProtectionConfig::off();
        let (machine, ring, _) = setup(&cfg);
        let addr = ring.entry_addr(0);
        let lo = machine.memory().read_u64(addr + 8).unwrap();
        let hi = machine.memory().read_u64(addr + 16).unwrap();
        let mut leaked = [0u8; 16];
        leaked[..8].copy_from_slice(&lo.to_le_bytes());
        leaked[8..].copy_from_slice(&hi.to_le_bytes());
        assert_eq!(&leaked, b"super-secret-key", "baseline leaks plaintext");
    }

    #[test]
    fn unknown_serial_is_rejected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, ring, _) = setup(&cfg);
        assert!(matches!(
            ring.load_key(&mut machine, &cfg, 99),
            Err(KernelError::NotFound)
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut ring, _) = setup(&cfg);
        for _ in 0..3 {
            ring.add_key(&mut machine, &cfg, [0u8; 16]).unwrap();
        }
        assert!(matches!(
            ring.add_key(&mut machine, &cfg, [0u8; 16]),
            Err(KernelError::ResourceExhausted)
        ));
    }
}
