//! Kernel-side protection configuration.

use regvault_compiler::KeyPolicy;
use regvault_sim::MachineConfig;

/// Which RegVault protections the running kernel applies — the paper's
/// benchmark configurations (§4.4.2).
///
/// # Examples
///
/// ```
/// use regvault_kernel::ProtectionConfig;
///
/// let full = ProtectionConfig::full();
/// assert!(full.cip && full.spill);
/// assert_eq!(ProtectionConfig::ra_only().label(), "RA");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtectionConfig {
    /// Return-address randomization (config "RA").
    pub ra: bool,
    /// Function-pointer randomization (config "FP").
    pub fp: bool,
    /// The four non-control data classes: kernel keys, cred, SELinux state,
    /// PGD pointers (config "NON-CONTROL").
    pub non_control: bool,
    /// Chain-based interrupt context protection (part of "FULL").
    pub cip: bool,
    /// Sensitive register-spilling protection (part of "FULL").
    pub spill: bool,
    /// Key-register assignment shared with the compiler.
    pub keys: KeyPolicyConfig,
}

/// Wrapper so `ProtectionConfig` can derive `Default`/`Eq` while reusing the
/// compiler's [`KeyPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyPolicyConfig(pub KeyPolicy);

impl ProtectionConfig {
    /// Everything off — the unprotected baseline ("Original" in Table 4).
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Return addresses only.
    #[must_use]
    pub fn ra_only() -> Self {
        Self {
            ra: true,
            ..Self::default()
        }
    }

    /// Function pointers only.
    #[must_use]
    pub fn fp_only() -> Self {
        Self {
            fp: true,
            ..Self::default()
        }
    }

    /// The four non-control data classes only.
    #[must_use]
    pub fn non_control() -> Self {
        Self {
            non_control: true,
            ..Self::default()
        }
    }

    /// Full protection: RA + FP + non-control + CIP + spill protection.
    #[must_use]
    pub fn full() -> Self {
        Self {
            ra: true,
            fp: true,
            non_control: true,
            cip: true,
            spill: true,
            keys: KeyPolicyConfig::default(),
        }
    }

    /// The paper's label for this configuration.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.ra, self.fp, self.non_control, self.cip) {
            (false, false, false, false) => "BASE",
            (true, false, false, false) => "RA",
            (false, true, false, false) => "FP",
            (false, false, true, false) => "NON-CONTROL",
            _ => "FULL",
        }
    }

    /// The key policy.
    #[must_use]
    pub fn key_policy(&self) -> KeyPolicy {
        self.keys.0
    }
}

/// Parameters for [`crate::Kernel::boot`].
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Active protections.
    pub protection: ProtectionConfig,
    /// Underlying machine configuration (CLB entries, cost model, seed,
    /// timer).
    pub machine: MachineConfig,
    /// Timer interrupt period in cycles (None disables preemption).
    pub timer_interval: Option<u64>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            protection: ProtectionConfig::full(),
            machine: MachineConfig::default(),
            timer_interval: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_configs() {
        assert_eq!(ProtectionConfig::off().label(), "BASE");
        assert_eq!(ProtectionConfig::ra_only().label(), "RA");
        assert_eq!(ProtectionConfig::fp_only().label(), "FP");
        assert_eq!(ProtectionConfig::non_control().label(), "NON-CONTROL");
        assert_eq!(ProtectionConfig::full().label(), "FULL");
    }

    #[test]
    fn full_enables_every_protection() {
        let full = ProtectionConfig::full();
        assert!(full.ra && full.fp && full.non_control && full.cip && full.spill);
    }
}
