//! A miniature VFS with function-pointer dispatch tables and pipes.
//!
//! The VFS is the kernel's densest source of *function pointers*: every
//! file operation dispatches through a `file_operations` table. RegVault
//! randomizes these pointers in memory (dedicated key, storage-address
//! tweak, §3.1.2); an attacker overwriting one redirects the kernel not to
//! a JOP gadget but to whatever garbage the corrupted ciphertext decrypts
//! to.
//!
//! File data lives in guest-memory buffers; read/write copy byte ranges
//! between user buffers and file buffers, charging per-word memory costs —
//! which is what makes `read`/`write` latency benchmarks meaningful.

use regvault_sim::{InsnClass, Machine};

use crate::config::ProtectionConfig;
use crate::error::KernelError;
use crate::layout::{Kmalloc, KERNEL_TEXT_BASE};
use crate::pfield;

/// Synthetic handler addresses in kernel text (targets of the dispatch).
pub mod handlers {
    use super::KERNEL_TEXT_BASE;
    /// `file_read` handler address.
    pub const FILE_READ: u64 = KERNEL_TEXT_BASE + 0x1000;
    /// `file_write` handler address.
    pub const FILE_WRITE: u64 = KERNEL_TEXT_BASE + 0x1100;
    /// `file_stat` handler address.
    pub const FILE_STAT: u64 = KERNEL_TEXT_BASE + 0x1200;
    /// `pipe_read` handler address.
    pub const PIPE_READ: u64 = KERNEL_TEXT_BASE + 0x2000;
    /// `pipe_write` handler address.
    pub const PIPE_WRITE: u64 = KERNEL_TEXT_BASE + 0x2100;
    /// All legitimate handler entry points.
    pub const ALL: [u64; 5] = [FILE_READ, FILE_WRITE, FILE_STAT, PIPE_READ, PIPE_WRITE];
}

/// Index of an operation within a [`FileOpsTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FileOp {
    Read = 0,
    Write = 1,
    Stat = 2,
}

/// A `file_operations`-style table of function pointers in guest memory.
#[derive(Debug, Clone, Copy)]
pub struct FileOpsTable {
    base: u64,
}

impl FileOpsTable {
    /// Allocates the table and installs (encrypting when `fp` protection is
    /// on) the three handler pointers.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn new(
        heap: &mut Kmalloc,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        read: u64,
        write: u64,
        stat: u64,
    ) -> Result<Self, KernelError> {
        let base = heap.alloc(24, 8);
        let table = Self { base };
        for (i, target) in [read, write, stat].into_iter().enumerate() {
            let addr = base + 8 * i as u64;
            pfield::write_u64_conf(machine, cfg.key_policy().fn_ptr, addr, target, cfg.fp)?;
        }
        Ok(table)
    }

    /// Guest address of the pointer slot for `op` (the attacker's target).
    #[must_use]
    pub fn slot_addr(&self, op: FileOp) -> u64 {
        self.base + 8 * op as u64
    }

    /// Resolves the indirect-call target for `op`: load + decrypt.
    ///
    /// This is where a corrupted pointer surfaces — under RegVault the
    /// decryption garbles it; unprotected, the attacker's value comes back
    /// verbatim.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults.
    pub fn resolve(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        op: FileOp,
    ) -> Result<u64, KernelError> {
        let addr = self.slot_addr(op);
        pfield::read_u64_conf(machine, cfg.key_policy().fn_ptr, addr, cfg.fp)
    }

    /// Resolves and "calls": returns the target if it is a legitimate
    /// handler, or [`KernelError::WildJump`] (a crash) otherwise.
    ///
    /// # Errors
    ///
    /// [`KernelError::WildJump`] when the resolved target is not a known
    /// handler entry point.
    pub fn dispatch(
        &self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        op: FileOp,
    ) -> Result<u64, KernelError> {
        let target = self.resolve(machine, cfg, op)?;
        machine.charge(InsnClass::Jump, 1);
        if handlers::ALL.contains(&target) {
            Ok(target)
        } else {
            Err(KernelError::WildJump { target })
        }
    }
}

/// Maximum number of files in the mini filesystem.
pub const MAX_FILES: usize = 16;
const MAX_FDS: usize = 32;
const PIPE_CAPACITY: u64 = 4096;

#[derive(Debug, Clone)]
struct File {
    name: String,
    buf: u64,
    capacity: u64,
    size: u64,
}

#[derive(Debug, Clone, Copy)]
enum FdKind {
    File { index: usize, offset: u64 },
    PipeRead(usize),
    PipeWrite(usize),
}

#[derive(Debug, Clone)]
struct Pipe {
    buf: u64,
    head: u64, // read position
    tail: u64, // write position
}

/// The in-memory filesystem: files, descriptors, pipes, and the dispatch
/// tables.
#[derive(Debug, Clone)]
pub struct MiniFs {
    files: Vec<File>,
    fds: Vec<Option<FdKind>>,
    pipes: Vec<Pipe>,
    /// The regular-file operations table.
    pub file_ops: FileOpsTable,
    /// The pipe operations table.
    pub pipe_ops: FileOpsTable,
}

impl MiniFs {
    /// Creates the filesystem and its dispatch tables.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory faults from table initialization.
    pub fn new(
        heap: &mut Kmalloc,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
    ) -> Result<Self, KernelError> {
        let file_ops = FileOpsTable::new(
            heap,
            machine,
            cfg,
            handlers::FILE_READ,
            handlers::FILE_WRITE,
            handlers::FILE_STAT,
        )?;
        let pipe_ops = FileOpsTable::new(
            heap,
            machine,
            cfg,
            handlers::PIPE_READ,
            handlers::PIPE_WRITE,
            handlers::FILE_STAT,
        )?;
        Ok(Self {
            files: Vec::new(),
            fds: vec![None; MAX_FDS],
            pipes: Vec::new(),
            file_ops,
            pipe_ops,
        })
    }

    /// Creates a file with a `capacity`-byte buffer.
    ///
    /// # Errors
    ///
    /// [`KernelError::ResourceExhausted`] beyond [`MAX_FILES`] files.
    pub fn create(
        &mut self,
        heap: &mut Kmalloc,
        machine: &mut Machine,
        name: &str,
        capacity: u64,
    ) -> Result<(), KernelError> {
        if self.files.len() == MAX_FILES {
            return Err(KernelError::ResourceExhausted);
        }
        let buf = heap.alloc(capacity, 8);
        machine.memory_mut().map_region(buf, capacity);
        self.files.push(File {
            name: name.to_owned(),
            buf,
            capacity,
            size: 0,
        });
        Ok(())
    }

    fn alloc_fd(&mut self, kind: FdKind) -> Result<u64, KernelError> {
        let slot = self
            .fds
            .iter()
            .position(Option::is_none)
            .ok_or(KernelError::ResourceExhausted)?;
        self.fds[slot] = Some(kind);
        Ok(slot as u64)
    }

    /// Opens a file by name.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotFound`] for unknown names,
    /// [`KernelError::ResourceExhausted`] when out of descriptors.
    pub fn open(&mut self, machine: &mut Machine, name: &str) -> Result<u64, KernelError> {
        machine.charge(InsnClass::Alu, 40); // path lookup
        machine.charge(InsnClass::Load, 12);
        let index = self
            .files
            .iter()
            .position(|f| f.name == name)
            .ok_or(KernelError::NotFound)?;
        self.alloc_fd(FdKind::File { index, offset: 0 })
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadHandle`] for invalid descriptors.
    pub fn close(&mut self, fd: u64) -> Result<(), KernelError> {
        let slot = self
            .fds
            .get_mut(fd as usize)
            .ok_or(KernelError::BadHandle)?;
        if slot.take().is_none() {
            return Err(KernelError::BadHandle);
        }
        Ok(())
    }

    /// Creates a pipe, returning `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// [`KernelError::ResourceExhausted`] when out of descriptors.
    pub fn pipe(
        &mut self,
        heap: &mut Kmalloc,
        machine: &mut Machine,
    ) -> Result<(u64, u64), KernelError> {
        let buf = heap.alloc(PIPE_CAPACITY, 8);
        machine.memory_mut().map_region(buf, PIPE_CAPACITY);
        let index = self.pipes.len();
        self.pipes.push(Pipe {
            buf,
            head: 0,
            tail: 0,
        });
        let rfd = self.alloc_fd(FdKind::PipeRead(index))?;
        let wfd = self.alloc_fd(FdKind::PipeWrite(index))?;
        Ok((rfd, wfd))
    }

    fn copy(machine: &mut Machine, src: u64, dst: u64, len: u64) -> Result<(), KernelError> {
        // Word-at-a-time copy with cycle accounting.
        let words = len / 8;
        for i in 0..words {
            let value = machine.kernel_load_u64(src + 8 * i)?;
            machine.kernel_store_u64(dst + 8 * i, value)?;
        }
        for i in (words * 8)..len {
            let byte = machine.memory().read_u8(src + i)?;
            machine.memory_mut().write_u8(dst + i, byte)?;
            machine.charge(InsnClass::Load, 1);
            machine.charge(InsnClass::Store, 1);
        }
        Ok(())
    }

    /// Reads up to `len` bytes from `fd` into the guest buffer `user_buf`.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadHandle`] for invalid descriptors or reading a
    /// write end; [`KernelError::WildJump`] if the dispatch pointer was
    /// corrupted.
    pub fn read(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        fd: u64,
        user_buf: u64,
        len: u64,
    ) -> Result<u64, KernelError> {
        let kind = self
            .fds
            .get(fd as usize)
            .copied()
            .flatten()
            .ok_or(KernelError::BadHandle)?;
        match kind {
            FdKind::File { index, offset } => {
                let target = self.file_ops.dispatch(machine, cfg, FileOp::Read)?;
                debug_assert_eq!(target, handlers::FILE_READ);
                let file = &self.files[index];
                let available = file.size.saturating_sub(offset);
                let n = len.min(available);
                Self::copy(machine, file.buf + offset, user_buf, n)?;
                if let Some(FdKind::File { offset, .. }) = &mut self.fds[fd as usize] {
                    *offset += n;
                }
                Ok(n)
            }
            FdKind::PipeRead(index) => {
                let target = self.pipe_ops.dispatch(machine, cfg, FileOp::Read)?;
                debug_assert_eq!(target, handlers::PIPE_READ);
                let pipe = &mut self.pipes[index];
                let available = pipe.tail - pipe.head;
                let n = len.min(available);
                let start = pipe.buf + (pipe.head % PIPE_CAPACITY);
                // The benchmark pipes transfer well under the capacity, so
                // wrap-around is handled by resetting on empty.
                Self::copy(machine, start, user_buf, n)?;
                pipe.head += n;
                if pipe.head == pipe.tail {
                    pipe.head = 0;
                    pipe.tail = 0;
                }
                Ok(n)
            }
            FdKind::PipeWrite(_) => Err(KernelError::BadHandle),
        }
    }

    /// Writes `len` bytes from the guest buffer `user_buf` to `fd`.
    ///
    /// # Errors
    ///
    /// As [`MiniFs::read`], plus [`KernelError::ResourceExhausted`] when a
    /// file or pipe is full.
    pub fn write(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        fd: u64,
        user_buf: u64,
        len: u64,
    ) -> Result<u64, KernelError> {
        let kind = self
            .fds
            .get(fd as usize)
            .copied()
            .flatten()
            .ok_or(KernelError::BadHandle)?;
        match kind {
            FdKind::File { index, offset } => {
                let target = self.file_ops.dispatch(machine, cfg, FileOp::Write)?;
                debug_assert_eq!(target, handlers::FILE_WRITE);
                let file = &mut self.files[index];
                if offset + len > file.capacity {
                    return Err(KernelError::ResourceExhausted);
                }
                let buf = file.buf;
                file.size = file.size.max(offset + len);
                Self::copy(machine, user_buf, buf + offset, len)?;
                if let Some(FdKind::File { offset, .. }) = &mut self.fds[fd as usize] {
                    *offset += len;
                }
                Ok(len)
            }
            FdKind::PipeWrite(index) => {
                let target = self.pipe_ops.dispatch(machine, cfg, FileOp::Write)?;
                debug_assert_eq!(target, handlers::PIPE_WRITE);
                let pipe = &mut self.pipes[index];
                if (pipe.tail % PIPE_CAPACITY) + len > PIPE_CAPACITY {
                    return Err(KernelError::ResourceExhausted);
                }
                let start = pipe.buf + (pipe.tail % PIPE_CAPACITY);
                Self::copy(machine, user_buf, start, len)?;
                pipe.tail += len;
                Ok(len)
            }
            FdKind::PipeRead(_) => Err(KernelError::BadHandle),
        }
    }

    /// Returns the size of the file behind `fd`.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadHandle`] for non-file descriptors;
    /// [`KernelError::WildJump`] on corrupted dispatch pointers.
    pub fn stat(
        &mut self,
        machine: &mut Machine,
        cfg: &ProtectionConfig,
        fd: u64,
    ) -> Result<u64, KernelError> {
        let kind = self
            .fds
            .get(fd as usize)
            .copied()
            .flatten()
            .ok_or(KernelError::BadHandle)?;
        match kind {
            FdKind::File { index, .. } => {
                let target = self.file_ops.dispatch(machine, cfg, FileOp::Stat)?;
                debug_assert_eq!(target, handlers::FILE_STAT);
                machine.charge(InsnClass::Load, 8);
                Ok(self.files[index].size)
            }
            _ => Err(KernelError::BadHandle),
        }
    }

    /// Seeks a file descriptor to an absolute offset.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadHandle`] for non-file descriptors.
    pub fn seek(&mut self, fd: u64, to: u64) -> Result<(), KernelError> {
        match self.fds.get_mut(fd as usize).and_then(Option::as_mut) {
            Some(FdKind::File { offset, .. }) => {
                *offset = to;
                Ok(())
            }
            _ => Err(KernelError::BadHandle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::KeyReg;
    use regvault_sim::MachineConfig;

    fn setup(cfg: &ProtectionConfig) -> (Machine, Kmalloc, MiniFs) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::B, 0xB0, 0xB1).unwrap();
        let mut heap = Kmalloc::new();
        let fs = MiniFs::new(&mut heap, &mut machine, cfg).unwrap();
        (machine, heap, fs)
    }

    #[test]
    fn file_read_write_round_trip() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut heap, mut fs) = setup(&cfg);
        fs.create(&mut heap, &mut machine, "data", 4096).unwrap();
        let fd = fs.open(&mut machine, "data").unwrap();
        let user_buf = 0x10_0000;
        machine.memory_mut().write_slice(user_buf, b"hello krn");
        fs.write(&mut machine, &cfg, fd, user_buf, 9).unwrap();
        fs.seek(fd, 0).unwrap();
        let out_buf = 0x11_0000;
        machine.memory_mut().map_region(out_buf, 4096);
        let n = fs.read(&mut machine, &cfg, fd, out_buf, 9).unwrap();
        assert_eq!(n, 9);
        assert_eq!(machine.memory().read_vec(out_buf, 9).unwrap(), b"hello krn");
        assert_eq!(fs.stat(&mut machine, &cfg, fd).unwrap(), 9);
    }

    #[test]
    fn pipes_transfer_bytes() {
        let cfg = ProtectionConfig::full();
        let (mut machine, mut heap, mut fs) = setup(&cfg);
        let (rfd, wfd) = fs.pipe(&mut heap, &mut machine).unwrap();
        let buf = 0x10_0000;
        machine.memory_mut().write_slice(buf, b"pipedata");
        fs.write(&mut machine, &cfg, wfd, buf, 8).unwrap();
        let out = 0x11_0000;
        machine.memory_mut().map_region(out, 64);
        assert_eq!(fs.read(&mut machine, &cfg, rfd, out, 8).unwrap(), 8);
        assert_eq!(machine.memory().read_vec(out, 8).unwrap(), b"pipedata");
        // Empty pipe reads zero bytes.
        assert_eq!(fs.read(&mut machine, &cfg, rfd, out, 8).unwrap(), 0);
    }

    #[test]
    fn fn_ptrs_are_randomized_in_memory_when_protected() {
        let cfg = ProtectionConfig::full();
        let (machine, _, fs) = setup(&cfg);
        let raw = machine
            .memory()
            .read_u64(fs.file_ops.slot_addr(FileOp::Read))
            .unwrap();
        assert_ne!(raw, handlers::FILE_READ);
    }

    #[test]
    fn jop_redirect_is_neutralized_by_randomization() {
        let cfg = ProtectionConfig::fp_only();
        let (mut machine, mut heap, mut fs) = setup(&cfg);
        fs.create(&mut heap, &mut machine, "x", 64).unwrap();
        let fd = fs.open(&mut machine, "x").unwrap();
        // Attacker overwrites the read pointer with a gadget address.
        let gadget = KERNEL_TEXT_BASE + 0xDEAD;
        machine
            .memory_mut()
            .write_u64(fs.file_ops.slot_addr(FileOp::Read), gadget)
            .unwrap();
        let err = fs.read(&mut machine, &cfg, fd, 0x10_0000, 8).unwrap_err();
        match err {
            KernelError::WildJump { target } => {
                assert_ne!(target, gadget, "decryption garbles the gadget address");
            }
            other => panic!("expected wild jump, got {other}"),
        }
    }

    #[test]
    fn jop_redirect_succeeds_without_protection() {
        let cfg = ProtectionConfig::off();
        let (mut machine, mut heap, mut fs) = setup(&cfg);
        fs.create(&mut heap, &mut machine, "x", 64).unwrap();
        let fd = fs.open(&mut machine, "x").unwrap();
        let gadget = KERNEL_TEXT_BASE + 0xDEAD;
        machine
            .memory_mut()
            .write_u64(fs.file_ops.slot_addr(FileOp::Read), gadget)
            .unwrap();
        let err = fs.read(&mut machine, &cfg, fd, 0x10_0000, 8).unwrap_err();
        match err {
            KernelError::WildJump { target } => {
                assert_eq!(target, gadget, "control flows to the attacker's gadget");
            }
            other => panic!("expected wild jump, got {other}"),
        }
    }

    #[test]
    fn bad_descriptors_are_rejected() {
        let cfg = ProtectionConfig::full();
        let (mut machine, _, mut fs) = setup(&cfg);
        assert!(matches!(
            fs.read(&mut machine, &cfg, 17, 0, 8),
            Err(KernelError::BadHandle)
        ));
        assert!(matches!(fs.close(17), Err(KernelError::BadHandle)));
        assert!(matches!(
            fs.open(&mut machine, "missing"),
            Err(KernelError::NotFound)
        ));
    }
}
