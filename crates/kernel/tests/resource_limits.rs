//! Kernel resource-limit and error-path coverage.

use regvault_kernel::{Kernel, KernelConfig, KernelError, ProtectionConfig, Sysno};

fn kernel() -> Kernel {
    Kernel::boot(KernelConfig {
        protection: ProtectionConfig::full(),
        ..KernelConfig::default()
    })
    .expect("boot")
}

#[test]
fn thread_table_exhausts_cleanly() {
    let mut k = kernel();
    // Thread 0 is init; 7 more fit.
    for _ in 0..7 {
        k.dispatch(Sysno::Spawn as u64, [0, 0, 0]).unwrap();
    }
    assert!(matches!(
        k.dispatch(Sysno::Spawn as u64, [0, 0, 0]),
        Err(KernelError::ThreadTableFull)
    ));
}

#[test]
fn fd_table_exhausts_and_recovers() {
    let mut k = kernel();
    let name_ptr = 0x20_0000u64;
    k.machine_mut().memory_mut().write_slice(name_ptr, b"data");
    let mut fds = Vec::new();
    loop {
        match k.dispatch(Sysno::Open as u64, [name_ptr, 4, 0]) {
            Ok(fd) => fds.push(fd),
            Err(KernelError::ResourceExhausted) => break,
            Err(other) => panic!("unexpected {other}"),
        }
    }
    assert_eq!(fds.len(), 32, "all descriptor slots consumed");
    // Closing one frees a slot.
    k.dispatch(Sysno::Close as u64, [fds[0], 0, 0]).unwrap();
    k.dispatch(Sysno::Open as u64, [name_ptr, 4, 0]).unwrap();
}

#[test]
fn double_close_is_rejected() {
    let mut k = kernel();
    let name_ptr = 0x20_0000u64;
    k.machine_mut().memory_mut().write_slice(name_ptr, b"data");
    let fd = k.dispatch(Sysno::Open as u64, [name_ptr, 4, 0]).unwrap();
    k.dispatch(Sysno::Close as u64, [fd, 0, 0]).unwrap();
    assert!(matches!(
        k.dispatch(Sysno::Close as u64, [fd, 0, 0]),
        Err(KernelError::BadHandle)
    ));
}

#[test]
fn open_rejects_oversized_names_and_missing_files() {
    let mut k = kernel();
    assert!(matches!(
        k.dispatch(Sysno::Open as u64, [0x20_0000, 1000, 0]),
        Err(KernelError::InvalidArgument)
    ));
    let name_ptr = 0x20_0000u64;
    k.machine_mut().memory_mut().write_slice(name_ptr, b"ghost");
    assert!(matches!(
        k.dispatch(Sysno::Open as u64, [name_ptr, 5, 0]),
        Err(KernelError::NotFound)
    ));
}

#[test]
fn read_from_unmapped_user_buffer_faults_cleanly() {
    let mut k = kernel();
    let name_ptr = 0x20_0000u64;
    k.machine_mut().memory_mut().write_slice(name_ptr, b"data");
    let fd = k.dispatch(Sysno::Open as u64, [name_ptr, 4, 0]).unwrap();
    // Writing FROM an unmapped user buffer must surface a memory fault.
    assert!(matches!(
        k.dispatch(Sysno::Write as u64, [fd, 0x6FFF_0000, 64]),
        Err(KernelError::MemoryFault(_))
    ));
}

#[test]
fn keyring_fills_to_capacity() {
    let mut k = kernel();
    let key_ptr = 0x20_0000u64;
    k.machine_mut()
        .memory_mut()
        .write_slice(key_ptr, b"0123456789abcdef");
    for _ in 0..16 {
        k.dispatch(Sysno::AddKey as u64, [key_ptr, 0, 0]).unwrap();
    }
    assert!(matches!(
        k.dispatch(Sysno::AddKey as u64, [key_ptr, 0, 0]),
        Err(KernelError::ResourceExhausted)
    ));
}

#[test]
fn aes_with_unknown_serial_is_not_found() {
    let mut k = kernel();
    k.machine_mut().memory_mut().map_region(0x21_0000, 4096);
    assert!(matches!(
        k.dispatch(Sysno::AesEncrypt as u64, [99, 0x21_0000, 0x21_0100]),
        Err(KernelError::NotFound)
    ));
}

#[test]
fn kill_validates_the_target_thread() {
    let mut k = kernel();
    assert!(matches!(
        k.dispatch(Sysno::Kill as u64, [200, 0, 0]),
        Err(KernelError::InvalidArgument)
    ));
}

#[test]
fn sigreturn_without_a_pending_handler_is_invalid() {
    let mut k = kernel();
    assert!(matches!(
        k.dispatch(Sysno::Sigreturn as u64, [0; 3]),
        Err(KernelError::InvalidArgument)
    ));
}

#[test]
fn munmap_of_unmapped_page_is_not_found() {
    let mut k = kernel();
    assert!(matches!(
        k.dispatch(Sysno::Munmap as u64, [0x5555_0000, 0, 0]),
        Err(KernelError::NotFound)
    ));
}

#[test]
fn errors_surface_as_minus_one_in_user_mode() {
    let mut k = kernel();
    // Closing a bad fd from user code returns u64::MAX, not a kernel abort.
    let program = regvault_isa::asm::assemble(
        "li a0, 31
         li a7, 7      # close
         ecall
         ebreak",
    )
    .unwrap();
    let value = k.run_user(program.bytes(), 0, 100_000).unwrap();
    assert_eq!(value, u64::MAX);
}
