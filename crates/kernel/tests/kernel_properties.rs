//! Property-based tests over the kernel's protected-field plumbing.

use proptest::prelude::*;
use regvault_isa::{KeyReg, Reg};
use regvault_kernel::cred::{CredField, CredStore};
use regvault_kernel::keyring::Keyring;
use regvault_kernel::layout::Kmalloc;
use regvault_kernel::{trap, ProtectionConfig};
use regvault_sim::{Machine, MachineConfig};

fn machine() -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    for key in [KeyReg::A, KeyReg::B, KeyReg::C, KeyReg::D, KeyReg::E] {
        machine.write_key_register(key, 0xAB, 0xCD).unwrap();
    }
    machine
}

proptest! {
    /// Every uid/gid value round-trips through the protected cred store,
    /// and nonzero values never sit in memory as plaintext.
    #[test]
    fn cred_fields_round_trip(uid in any::<u32>(), gid in any::<u32>()) {
        let cfg = ProtectionConfig::full();
        let mut m = machine();
        let mut heap = Kmalloc::new();
        let store = CredStore::new(&mut heap, 2);
        store.init(&mut m, &cfg, 0, uid, gid).unwrap();
        prop_assert_eq!(store.read(&mut m, &cfg, 0, CredField::Uid).unwrap(), uid);
        prop_assert_eq!(store.read(&mut m, &cfg, 0, CredField::Gid).unwrap(), gid);
        let raw = m
            .memory()
            .read_u64(store.cred_addr(0) + regvault_kernel::cred::UID_OFFSET)
            .unwrap();
        // A ciphertext equal to the zero-extended plaintext would be a
        // 2^-64 accident; treat it as a bug.
        prop_assert_ne!(raw, u64::from(uid));
    }

    /// 64-bit session tokens round-trip through the two-block Figure 2c
    /// encoding for any value.
    #[test]
    fn session_tokens_round_trip(token in any::<u64>()) {
        let cfg = ProtectionConfig::full();
        let mut m = machine();
        let mut heap = Kmalloc::new();
        let store = CredStore::new(&mut heap, 1);
        store.init(&mut m, &cfg, 0, 1, 1).unwrap();
        store.write_session(&mut m, &cfg, 0, token).unwrap();
        prop_assert_eq!(store.read_session(&mut m, &cfg, 0).unwrap(), token);
    }

    /// Keyring material round-trips and never appears verbatim in either
    /// stored block.
    #[test]
    fn keyring_material_round_trips(material in any::<[u8; 16]>()) {
        let cfg = ProtectionConfig::full();
        let mut m = machine();
        let mut heap = Kmalloc::new();
        let mut ring = Keyring::new(&mut heap, 2);
        let serial = ring.add_key(&mut m, &cfg, material).unwrap();
        prop_assert_eq!(ring.load_key(&mut m, &cfg, serial).unwrap(), material);
        let lo = u64::from_le_bytes(material[..8].try_into().unwrap());
        let stored_lo = m.memory().read_u64(ring.entry_addr(0) + 8).unwrap();
        prop_assert_ne!(stored_lo, lo);
    }

    /// CIP save/restore is the identity on arbitrary register files, and
    /// any single corrupted slot is detected.
    #[test]
    fn cip_round_trips_and_detects(
        regs in prop::collection::vec(any::<u64>(), 31),
        corrupt_slot in 0usize..32,
        flip in 1u64..,
    ) {
        let cfg = ProtectionConfig::full();
        let mut m = machine();
        for (i, &value) in regs.iter().enumerate() {
            let reg = Reg::from_index((i + 1) as u8).unwrap();
            m.hart_mut().set_reg(reg, value);
        }
        let frame = 0xFFFF_FFC0_0A00_0000u64;
        trap::save_context(&mut m, &cfg, KeyReg::C, frame).unwrap();
        let restored = trap::restore_context(&mut m, &cfg, KeyReg::C, frame).unwrap();
        prop_assert_eq!(&restored[..], &regs[..]);

        // Corrupt one block and the chain must break.
        let addr = frame + 8 * corrupt_slot as u64;
        let block = m.memory().read_u64(addr).unwrap();
        m.memory_mut().write_u64(addr, block ^ flip).unwrap();
        prop_assert!(trap::restore_context(&mut m, &cfg, KeyReg::C, frame).is_err());
    }
}
