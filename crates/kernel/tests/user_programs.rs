//! End-to-end tests: user programs running on the simulator, trapping into
//! the kernel, under each protection configuration.

use regvault_isa::asm;
use regvault_kernel::{Kernel, KernelConfig, KernelError, ProtectionConfig};

fn boot(protection: ProtectionConfig, timer: Option<u64>) -> Kernel {
    Kernel::boot(KernelConfig {
        protection,
        timer_interval: timer,
        ..KernelConfig::default()
    })
    .expect("boot")
}

fn all_configs() -> [ProtectionConfig; 5] {
    [
        ProtectionConfig::off(),
        ProtectionConfig::ra_only(),
        ProtectionConfig::fp_only(),
        ProtectionConfig::non_control(),
        ProtectionConfig::full(),
    ]
}

#[test]
fn getuid_from_user_mode() {
    for cfg in all_configs() {
        let mut kernel = boot(cfg, None);
        let program = asm::assemble(
            "li a7, 2       # Sysno::Getuid
             ecall
             ebreak",
        )
        .unwrap();
        let uid = kernel.run_user(program.bytes(), 0, 100_000).unwrap();
        assert_eq!(uid, 1000, "{}", cfg.label());
    }
}

#[test]
fn syscall_loop_under_every_config() {
    // A getpid loop — the shape of LMbench's lat_syscall.
    let source = "li   s1, 0
         li   s2, 50
        loop:
         li   a7, 1      # getpid
         ecall
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak";
    for cfg in all_configs() {
        let mut kernel = boot(cfg, None);
        let program = asm::assemble(source).unwrap();
        let count = kernel.run_user(program.bytes(), 0, 1_000_000).unwrap();
        assert_eq!(count, 50, "{}", cfg.label());
    }
}

#[test]
fn file_io_from_user_mode() {
    let mut kernel = boot(ProtectionConfig::full(), None);
    // Write "hi" to the data file and read it back, from user code.
    let program = asm::assemble(
        "# store filename 'data' at 0x30_0000
         li   t0, 0x300000
         li   t1, 0x61746164    # 'data' little-endian
         sw   t1, 0(t0)
         li   a0, 0x300000
         li   a1, 4
         li   a7, 6             # open
         ecall
         mv   s1, a0            # fd
         # write 2 bytes from 0x30_0100
         li   t0, 0x300100
         li   t1, 0x6968        # 'hi'
         sh   t1, 0(t0)
         mv   a0, s1
         li   a1, 0x300100
         li   a2, 2
         li   a7, 9             # write
         ecall
         # seek to 0
         mv   a0, s1
         li   a1, 0
         li   a7, 11            # seek
         ecall
         # read back to 0x30_0200
         mv   a0, s1
         li   a1, 0x300200
         li   a2, 2
         li   a7, 8             # read
         ecall
         # return the bytes read
         li   t0, 0x300200
         lhu  a0, 0(t0)
         ebreak",
    )
    .unwrap();
    let value = kernel.run_user(program.bytes(), 0, 1_000_000).unwrap();
    assert_eq!(value, 0x6968, "read back 'hi'");
}

#[test]
fn timer_interrupts_preempt_and_resume_transparently() {
    // A pure compute loop; CIP save/restore across timer interrupts must
    // be invisible to the computation.
    let source = "li   s1, 0
         li   s2, 20000
        loop:
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak";
    for cfg in [ProtectionConfig::off(), ProtectionConfig::full()] {
        let mut kernel = boot(cfg, Some(5_000));
        let program = asm::assemble(source).unwrap();
        let value = kernel.run_user(program.bytes(), 0, 10_000_000).unwrap();
        assert_eq!(value, 20_000, "{}", cfg.label());
        assert!(
            kernel.machine().stats().timer_interrupts > 3,
            "the timer must actually have fired ({})",
            cfg.label()
        );
    }
}

#[test]
fn cip_costs_cycles_only_when_enabled() {
    let source = "li   s1, 0
         li   s2, 20000
        loop:
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak";
    let mut counts = Vec::new();
    for cfg in [ProtectionConfig::off(), ProtectionConfig::full()] {
        let mut kernel = boot(cfg, Some(5_000));
        let program = asm::assemble(source).unwrap();
        kernel.run_user(program.bytes(), 0, 10_000_000).unwrap();
        counts.push(kernel.machine().stats().encrypts + kernel.machine().stats().decrypts);
    }
    assert_eq!(counts[0], 0, "baseline performs no crypto");
    assert!(counts[1] > 0, "full protection CIP-saves every interrupt");
}

#[test]
fn user_mode_cannot_execute_cre() {
    let mut kernel = boot(ProtectionConfig::full(), None);
    let program = asm::assemble(
        "li t1, 0x40
         creak a0, a0[7:0], t1
         ebreak",
    )
    .unwrap();
    let err = kernel.run_user(program.bytes(), 0, 1000).unwrap_err();
    assert!(matches!(err, KernelError::UserFault { .. }));
}

#[test]
fn multithreaded_yield_program() {
    // Thread 0 spawns a second thread running `worker`, then both yield in
    // a loop; scheduling must round-robin and both must make progress.
    let source = "main:
         la   a0, worker
         li   a7, 18         # spawn(entry_pc)
         ecall
         li   s1, 0
         li   s2, 5
        main_loop:
         li   a7, 13         # yield
         ecall
         addi s1, s1, 1
         blt  s1, s2, main_loop
         li   a0, 77
         ebreak
        worker:
         li   a7, 13
         ecall
         j    worker";
    let mut kernel = boot(ProtectionConfig::full(), None);
    let program = asm::assemble(source).unwrap();
    let entry = program.symbol("main").unwrap();
    // The spawn syscall receives the worker's *absolute* pc; the program
    // computes it with `la`, which is pc-relative and thus already correct
    // after loading.
    let value = kernel.run_user(program.bytes(), entry, 5_000_000).unwrap();
    assert_eq!(value, 77);
}

#[test]
fn cycle_overhead_of_full_protection_is_small_but_positive() {
    // The headline property: syscall-heavy work costs a few percent more
    // under FULL protection, never less, never wildly more.
    let source = "li   s1, 0
         li   s2, 200
        loop:
         li   a7, 2      # getuid
         ecall
         li   a7, 0      # null
         ecall
         addi s1, s1, 1
         blt  s1, s2, loop
         ebreak";
    let mut cycles = Vec::new();
    for cfg in [ProtectionConfig::off(), ProtectionConfig::full()] {
        let mut kernel = boot(cfg, None);
        let program = asm::assemble(source).unwrap();
        kernel.machine_mut().reset_stats();
        kernel.run_user(program.bytes(), 0, 10_000_000).unwrap();
        cycles.push(kernel.machine().stats().cycles);
    }
    assert!(cycles[1] > cycles[0]);
    let overhead = (cycles[1] - cycles[0]) as f64 / cycles[0] as f64;
    assert!(
        overhead > 0.001 && overhead < 0.25,
        "syscall overhead out of plausible range: {overhead:.4}"
    );
}

#[test]
fn signal_delivery_end_to_end() {
    // Register a handler, kill(self), and verify the handler ran before
    // the main flow resumed — under both baseline and full protection.
    let source = "main:
         la   a0, handler
         li   a1, 0
         mv   a2, a0
         mv   a0, a1
         mv   a1, a2
         li   a7, 20         # sigaction(signo=0, handler)
         ecall
         li   s1, 0          # handler-run marker lives in s1
         li   a0, 0          # tid 0 (self)
         li   a1, 0          # signo 0
         li   a7, 21         # kill
         ecall
         # delivery happens on this return-to-user: handler runs first
         mv   a0, s1
         ebreak
        handler:
         li   s1, 77
         li   a7, 22         # sigreturn
         ecall
         j    handler        # unreachable";
    for cfg in [ProtectionConfig::off(), ProtectionConfig::full()] {
        let mut kernel = boot(cfg, None);
        let program = asm::assemble(source).unwrap();
        let entry = program.symbol("main").unwrap();
        let marker = kernel.run_user(program.bytes(), entry, 1_000_000).unwrap();
        assert_eq!(
            marker,
            77,
            "handler must run before resume ({})",
            cfg.label()
        );
    }
}

#[test]
fn corrupted_signal_handler_crashes_instead_of_hijacking() {
    // The attacker overwrites the registered handler pointer; under FP
    // protection the decrypted target is garbage, so delivery crashes at a
    // wild pc instead of running attacker-chosen code.
    let source = "main:
         la   a0, handler
         mv   a1, a0
         li   a0, 0
         li   a7, 20         # sigaction
         ecall
         li   a0, 0
         li   a1, 0
         li   a7, 21         # kill
         ecall
         li   a0, 1
         ebreak
        handler:
         li   a7, 22
         ecall
         j    handler";
    let mut kernel = boot(ProtectionConfig::full(), None);
    let program = asm::assemble(source).unwrap();
    // Run up to the sigaction by stepping through manually is overkill;
    // instead pre-register via the syscall API, corrupt, then run a
    // kill-only program.
    let entry = program.symbol("main").unwrap();
    let _ = entry;
    let tid = kernel.current_tid();
    let cfg = kernel.protection();
    let signals = kernel.signals.clone();
    signals
        .register(kernel.machine_mut(), &cfg, tid, 0, 0x40_2000)
        .unwrap();
    // Attacker overwrite.
    kernel
        .machine_mut()
        .memory_mut()
        .write_u64(signals.handler_slot(tid, 0), 0x6666_0000)
        .unwrap();
    let kill_only = asm::assemble(
        "li a0, 0
         li a1, 0
         li a7, 21
         ecall
         li a0, 1
         ebreak",
    )
    .unwrap();
    let err = kernel.run_user(kill_only.bytes(), 0, 100_000).unwrap_err();
    assert!(
        matches!(err, KernelError::UserFault { .. }),
        "expected a crash at a garbled handler pc, got {err:?}"
    );
}

#[test]
fn spawned_threads_can_exit_and_slots_recycle() {
    // Spawn far more children than the thread table holds; each exits, so
    // the slots recycle and the loop completes.
    let source = "main:
         li   s1, 0
         li   s2, 40
        loop:
         la   a0, child
         li   a7, 18         # spawn
         ecall
         li   a7, 13         # yield so the child runs and exits
         ecall
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak
        child:
         li   a7, 23         # exit
         ecall
         j    child";
    for cfg in [ProtectionConfig::off(), ProtectionConfig::full()] {
        let mut kernel = boot(cfg, None);
        let program = asm::assemble(source).unwrap();
        let entry = program.symbol("main").unwrap();
        let count = kernel.run_user(program.bytes(), entry, 10_000_000).unwrap();
        assert_eq!(count, 40, "{}", cfg.label());
    }
}

#[test]
fn init_thread_cannot_exit() {
    let mut kernel = boot(ProtectionConfig::full(), None);
    let program = asm::assemble(
        "li a7, 23
         ecall
         ebreak",
    )
    .unwrap();
    // Errors surface as -1; the program still reaches ebreak.
    let value = kernel.run_user(program.bytes(), 0, 100_000).unwrap();
    assert_eq!(value, u64::MAX);
}
