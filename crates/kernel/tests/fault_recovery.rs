//! Panic-free trap recovery under sustained fault injection: the kernel
//! quarantines faulted threads, respawns replacements, and keeps
//! scheduling healthy work — it never takes the whole simulation down.

use regvault_isa::asm;
use regvault_kernel::cred::EUID_OFFSET;
use regvault_kernel::layout::USER_CODE_BASE;
use regvault_kernel::{Kernel, KernelConfig, KernelError, ProtectionConfig, RecoveryStats, Sysno};
use regvault_sim::FaultKind;

fn boot(protection: ProtectionConfig, timer: Option<u64>) -> Kernel {
    Kernel::boot(KernelConfig {
        protection,
        timer_interval: timer,
        ..KernelConfig::default()
    })
    .expect("boot")
}

/// One geteuid syscall, then exit — the probe each scheduled thread runs.
const GETEUID_PROBE: &str = "li a7, 3
     ecall
     ebreak";

#[test]
fn kernel_survives_100_consecutive_injected_faults() {
    let mut kernel = boot(ProtectionConfig::full(), None);
    // A sibling so the scheduler always has somewhere healthy to go.
    kernel
        .dispatch(Sysno::Spawn as u64, [USER_CODE_BASE, 0, 0])
        .expect("spawn sibling");
    let program = asm::assemble(GETEUID_PROBE).unwrap();

    for round in 0..100u32 {
        // Corrupt the *current* thread's protected euid block, then let it
        // trap in: the integrity check fires inside the syscall path and
        // the kernel must quarantine the thread, not abort.
        let victim = kernel.current_tid();
        let addr = kernel.creds.cred_addr(victim) + EUID_OFFSET;
        kernel
            .machine_mut()
            .inject_fault(FaultKind::MemWrite { addr, value: 0 });
        let result = kernel.run_user(program.bytes(), 0, 500_000);
        assert!(
            result.is_ok(),
            "round {round}: kernel must survive the fault, got {result:?}"
        );
    }

    let stats = kernel.recovery_stats();
    assert_eq!(stats.quarantined, 100, "one quarantine per injected fault");
    assert_eq!(stats.traps_survived, 100);
    assert_eq!(stats.respawned, 100, "every reaped slot was refilled");
    assert_eq!(
        kernel.machine().fault_plan().unwrap().applied().len(),
        100,
        "every fault actually landed"
    );

    // After a hundred faults the kernel still schedules healthy threads
    // and serves correct, integrity-checked credentials.
    let uid = kernel.run_user(program.bytes(), 0, 500_000).unwrap();
    assert_eq!(uid, 1000, "post-campaign geteuid is healthy");
    assert_eq!(
        kernel.recovery_stats().quarantined,
        100,
        "no stray recovery"
    );
}

#[test]
fn timer_switch_quarantines_a_thread_with_a_corrupted_frame() {
    let mut kernel = boot(ProtectionConfig::full(), Some(2_000));
    kernel
        .dispatch(Sysno::Spawn as u64, [USER_CODE_BASE, 0, 0])
        .expect("spawn sibling");

    // Corrupt the *sleeping* sibling's saved interrupt frame; the fault
    // surfaces when the timer tries to switch it in.
    let frame = kernel.threads.interrupt_frame_addr(1);
    kernel.machine_mut().inject_fault(FaultKind::MemBitFlip {
        addr: frame + 16,
        bit: 5,
    });

    // A compute loop long enough to take several timer interrupts.
    let program = asm::assemble(
        "li   s1, 0
         li   s2, 30000
        loop:
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak",
    )
    .unwrap();
    let result = kernel.run_user(program.bytes(), 0, 2_000_000).unwrap();
    assert_eq!(result, 30_000, "the healthy thread finished its work");
    let stats = kernel.recovery_stats();
    assert_eq!(
        stats.quarantined, 1,
        "the corrupted sibling was quarantined"
    );
    assert_eq!(stats.respawned, 1);
}

#[test]
fn watchdog_timeout_surfaces_as_a_typed_kernel_error() {
    let mut kernel = boot(ProtectionConfig::full(), None);
    kernel.machine_mut().arm_watchdog(10_000);
    let program = asm::assemble("loop: j loop").unwrap();
    match kernel.run_user(program.bytes(), 0, u64::MAX) {
        Err(KernelError::Timeout { budget, recovery }) => {
            assert_eq!(budget, 10_000);
            assert_eq!(
                recovery,
                RecoveryStats::default(),
                "no traps before wedging"
            );
        }
        other => panic!("expected a watchdog timeout, got {other:?}"),
    }
}

#[test]
fn watchdog_timeout_reports_partial_recovery_stats() {
    // Corrupt the current thread's euid so the kernel quarantines it and
    // switches to the sibling, whose copy of the program then wedges: the
    // timeout error must carry the recovery work done up to the cutoff.
    let mut kernel = boot(ProtectionConfig::full(), None);
    kernel
        .dispatch(Sysno::Spawn as u64, [USER_CODE_BASE, 0, 0])
        .expect("spawn sibling");
    let victim = kernel.current_tid();
    let addr = kernel.creds.cred_addr(victim) + EUID_OFFSET;
    kernel
        .machine_mut()
        .inject_fault(FaultKind::MemWrite { addr, value: 0 });
    let program = asm::assemble(
        "li a7, 3
         ecall
         loop: j loop",
    )
    .unwrap();
    kernel.machine_mut().arm_watchdog(500_000);
    match kernel.run_user(program.bytes(), 0, u64::MAX) {
        Err(KernelError::Timeout { recovery, .. }) => {
            assert_eq!(
                recovery,
                kernel.recovery_stats(),
                "error snapshot matches the kernel's counters"
            );
            assert_eq!(recovery.quarantined, 1, "partial stats show the quarantine");
        }
        other => panic!("expected a watchdog timeout, got {other:?}"),
    }
}

#[test]
fn without_protection_the_same_fault_is_consumed_silently() {
    // The control arm: on the unprotected baseline the corrupted euid is
    // simply *used* — no detection, no quarantine, attacker wins.
    let mut kernel = boot(ProtectionConfig::off(), None);
    let addr = kernel.creds.cred_addr(kernel.current_tid()) + EUID_OFFSET;
    kernel
        .machine_mut()
        .inject_fault(FaultKind::MemWrite { addr, value: 0 });
    let program = asm::assemble(GETEUID_PROBE).unwrap();
    let euid = kernel.run_user(program.bytes(), 0, 500_000).unwrap();
    assert_eq!(euid, 0, "baseline kernel consumed the attacker's euid");
    assert_eq!(kernel.recovery_stats().quarantined, 0);
}
