//! Robustness fuzz: arbitrary syscall sequences with arbitrary arguments
//! must never panic the kernel — every outcome is `Ok` or a typed
//! `KernelError`, and the kernel keeps servicing well-formed calls
//! afterwards.

use proptest::prelude::*;
use regvault_kernel::{Kernel, KernelConfig, ProtectionConfig, Sysno};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_syscall_sequences_never_panic(
        seq in prop::collection::vec((0u64..30, any::<[u64; 3]>()), 1..40),
        protection_full in any::<bool>(),
    ) {
        let protection = if protection_full {
            ProtectionConfig::full()
        } else {
            ProtectionConfig::off()
        };
        let mut kernel = Kernel::boot(KernelConfig {
            protection,
            ..KernelConfig::default()
        })
        .expect("boot");
        for (num, mut args) in seq {
            // Keep user-buffer style arguments in a plausible (possibly
            // unmapped) low range so faults are exercised without asking
            // the sparse memory to materialize random 2^64 addresses.
            args[1] %= 0x1000_0000;
            args[2] %= 0x10_000;
            let _ = kernel.dispatch(num, args);
        }
        // The kernel still works after the abuse.
        prop_assert_eq!(
            kernel.dispatch(Sysno::Getpid as u64, [0; 3]).expect("getpid"),
            u64::from(kernel.current_tid())
        );
    }
}
