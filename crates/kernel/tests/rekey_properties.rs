//! Property tests for the nonce-diversified epoch-rekey mitigation: with
//! the knob on, every context save draws a fresh nonce, so the folded
//! (key, tweak) pairs one save consumes are never reissued by any other
//! save — the invariant that starves the ciphertext dictionary. Restores
//! in between must neither break the register round trip nor let the
//! nonce counter rewind into reuse.

use std::collections::HashSet;

use proptest::prelude::*;
use regvault_isa::{KeyReg, Reg};
use regvault_kernel::{trap, ProtectionConfig};
use regvault_sim::{Machine, MachineConfig};

const FRAME: u64 = 0xFFFF_FFC0_0900_0000;

fn rekey_machine(w0: u64, k0: u64) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        epoch_rekey: true,
        ..MachineConfig::default()
    });
    machine.write_key_register(KeyReg::C, w0, k0).unwrap();
    machine
}

/// Writes the arithmetic-progression register file `base + i*step` and
/// returns the 31 saved plaintexts (x1..x31).
fn set_regs(machine: &mut Machine, base: u64, step: u64) -> [u64; trap::SAVED_REGS] {
    let mut plains = [0u64; trap::SAVED_REGS];
    for i in 1..32u8 {
        let value = base.wrapping_add(u64::from(i).wrapping_mul(step));
        let reg = Reg::from_index(i).unwrap();
        machine.hart_mut().set_reg(reg, value);
        plains[i as usize - 1] = value;
    }
    plains
}

/// The raw (pre-fold) tweaks one save consumes: the frame address for the
/// first slot, then each previous plaintext, with the chain terminator
/// keyed by the last plaintext.
fn raw_tweaks(plains: &[u64; trap::SAVED_REGS]) -> Vec<u64> {
    let mut tweaks = Vec::with_capacity(trap::FRAME_SLOTS);
    tweaks.push(FRAME);
    tweaks.extend_from_slice(&plains[..trap::SAVED_REGS - 1]);
    tweaks.push(plains[trap::SAVED_REGS - 1]); // terminator tweak
    tweaks
}

proptest! {
    /// Across any randomized sequence of save/restore cycles — including
    /// byte-identical register files, the dictionary's favourite case —
    /// the mitigation never issues the same folded (key, tweak) pair to
    /// two different saves, nonces strictly increase, and every restore
    /// round-trips the registers.
    #[test]
    fn saves_never_share_a_folded_tweak(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        files in prop::collection::vec((any::<u64>(), any::<u64>()), 2..6),
        repeat_first in any::<bool>(),
    ) {
        let cfg = ProtectionConfig::full();
        let mut machine = rekey_machine(w0, k0);
        let mut files = files;
        if repeat_first {
            // Re-save an identical register file: exactly the rewrite the
            // unmitigated kernel turns into a dictionary collision.
            files.push(files[0]);
        }
        let mut last_nonce = 0u64;
        let mut seen: HashSet<u64> = HashSet::new();
        for (base, step) in files {
            let plains = set_regs(&mut machine, base, step);
            trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
            let nonce = machine
                .memory()
                .read_u64(FRAME + trap::NONCE_SLOT)
                .unwrap();
            prop_assert!(nonce > last_nonce, "nonces must strictly increase");
            last_nonce = nonce;
            for raw in raw_tweaks(&plains) {
                let folded = machine.engine().effective_tweak(KeyReg::C, raw);
                prop_assert!(
                    seen.insert(folded),
                    "folded tweak {folded:#x} reissued across saves"
                );
            }
            let restored =
                trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
            prop_assert_eq!(restored, plains);
        }
    }

    /// The end-to-end consequence: re-saving the same register file never
    /// reproduces a single ciphertext word at any frame slot, so a memory
    /// observer's (address, word) dictionary stays empty of repeats.
    #[test]
    fn identical_resaves_share_no_ciphertext_words(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        base in any::<u64>(),
        step in any::<u64>(),
        resaves in 2usize..5,
    ) {
        let cfg = ProtectionConfig::full();
        let mut machine = rekey_machine(w0, k0);
        let mut frames: Vec<Vec<u64>> = Vec::new();
        for _ in 0..resaves {
            set_regs(&mut machine, base, step);
            trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME).unwrap();
            let words = (0..trap::FRAME_SLOTS as u64)
                .map(|i| machine.memory().read_u64(FRAME + 8 * i).unwrap())
                .collect::<Vec<_>>();
            frames.push(words);
        }
        for a in 0..frames.len() {
            for b in a + 1..frames.len() {
                for (slot, (wa, wb)) in frames[a].iter().zip(&frames[b]).enumerate() {
                    prop_assert_ne!(
                        wa, wb,
                        "slot {} repeated a ciphertext across saves {} and {}",
                        slot, a, b
                    );
                }
            }
        }
    }
}
