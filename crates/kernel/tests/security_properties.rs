//! Security-property tests beyond the Table 4 scripted attacks:
//! cross-thread substitution, the TOCTOU window of §4.3.2, and
//! corruption-injection sweeps.

use regvault_isa::Reg;
use regvault_kernel::cred::CredField;
use regvault_kernel::{trap, Kernel, KernelConfig, KernelError, ProtectionConfig, Sysno};

fn boot(protection: ProtectionConfig) -> Kernel {
    Kernel::boot(KernelConfig {
        protection,
        ..KernelConfig::default()
    })
    .expect("boot")
}

/// §2.4.3 security property 3: per-thread interrupt keys thwart
/// cross-thread substitution — thread A's saved frame cannot be fed to
/// thread B.
#[test]
fn cross_thread_frame_substitution_is_detected() {
    let mut kernel = boot(ProtectionConfig::full());
    let a = kernel.current_tid();
    let b = kernel.dispatch(Sysno::Spawn as u64, [0, 0, 0]).unwrap() as u32;

    // Thread A's frame exists (written at every switch); switch to B and
    // back so both threads have valid frames under their own keys.
    kernel.dispatch(Sysno::Yield as u64, [0; 3]).unwrap(); // A -> B
    kernel.dispatch(Sysno::Yield as u64, [0; 3]).unwrap(); // B -> A
    assert_eq!(kernel.current_tid(), a);

    // The attack: copy thread A's frame over thread B's frame.
    let frame_a = kernel.threads.interrupt_frame_addr(a);
    let frame_b = kernel.threads.interrupt_frame_addr(b);
    for slot in 0..trap::FRAME_SLOTS as u64 {
        let block = kernel
            .machine()
            .memory()
            .read_u64(frame_a + 8 * slot)
            .unwrap();
        kernel
            .machine_mut()
            .memory_mut()
            .write_u64(frame_b + 8 * slot, block)
            .unwrap();
    }

    // Switching to B must now detect the substituted context: the frame
    // decrypts under B's key, which is not the key that produced it.
    let result = kernel.dispatch(Sysno::Yield as u64, [0; 3]);
    assert!(
        matches!(result, Err(KernelError::IntegrityViolation { .. })),
        "cross-thread substitution went unnoticed: {result:?}"
    );
}

/// §4.3.2: the time-of-derandomize-to-time-of-use window. A decrypted
/// (plaintext) sensitive value sitting in a register is spilled to the
/// interrupt context by a preemption; CIP keeps that memory image
/// encrypted, the baseline leaks it.
#[test]
fn toctou_window_is_closed_by_cip() {
    let secret = 0x5EC2_E700_0000_1234u64;
    for (cfg, expect_leak) in [
        (ProtectionConfig::off(), true),
        (ProtectionConfig::full(), false),
    ] {
        let mut kernel = boot(cfg);
        let cfg_now = kernel.protection();
        let tid = kernel.current_tid();
        let frame = kernel.threads.interrupt_frame_addr(tid);
        let key = cfg_now.key_policy().interrupt;
        // The kernel had just decrypted a sensitive value into s1 when the
        // interrupt hits and saves the register file.
        kernel.machine_mut().hart_mut().set_reg(Reg::S1, secret);
        trap::save_context(kernel.machine_mut(), &cfg_now, key, frame).unwrap();

        // The attacker scans the interrupt frame for the secret.
        let mut found = false;
        for slot in 0..trap::FRAME_SLOTS as u64 {
            if kernel
                .machine()
                .memory()
                .read_u64(frame + 8 * slot)
                .unwrap()
                == secret
            {
                found = true;
            }
        }
        assert_eq!(
            found,
            expect_leak,
            "config {} leak expectation violated",
            cfg_now.label()
        );
    }
}

/// Corruption-injection sweep: flipping any single bit of any block of the
/// protected cred object is never silently accepted — the kernel either
/// still reads the original value (the flip hit an unprotected/padding
/// word) or raises an integrity violation. It never reads a different
/// value.
#[test]
fn single_bit_corruption_never_silently_changes_credentials() {
    for field in [
        CredField::Uid,
        CredField::Gid,
        CredField::Euid,
        CredField::Egid,
    ] {
        for bit in (0..64).step_by(7) {
            let mut kernel = boot(ProtectionConfig::full());
            let cfg = kernel.protection();
            let tid = kernel.current_tid();
            let creds = kernel.creds.clone();
            let original = creds.read(kernel.machine_mut(), &cfg, tid, field).unwrap();

            // Flip one bit somewhere in the cred object.
            let addr = kernel.creds.cred_addr(tid);
            let field_offset = match field {
                CredField::Uid => regvault_kernel::cred::UID_OFFSET,
                CredField::Gid => regvault_kernel::cred::GID_OFFSET,
                CredField::Euid => regvault_kernel::cred::EUID_OFFSET,
                CredField::Egid => regvault_kernel::cred::EGID_OFFSET,
            };
            let block = kernel
                .machine()
                .memory()
                .read_u64(addr + field_offset)
                .unwrap();
            kernel
                .machine_mut()
                .memory_mut()
                .write_u64(addr + field_offset, block ^ (1u64 << bit))
                .unwrap();

            match creds.read(kernel.machine_mut(), &cfg, tid, field) {
                Ok(value) => assert_eq!(
                    value, original,
                    "bit {bit} of {field:?} silently changed the credential"
                ),
                Err(KernelError::IntegrityViolation { .. }) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
}

/// The same sweep on the baseline shows why the paper needs integrity:
/// most flips silently change the value.
#[test]
fn baseline_accepts_most_corruptions_silently() {
    let mut silent_changes = 0;
    for bit in 0..32 {
        let mut kernel = boot(ProtectionConfig::off());
        let cfg = kernel.protection();
        let tid = kernel.current_tid();
        let creds = kernel.creds.clone();
        let addr = kernel.creds.cred_addr(tid) + regvault_kernel::cred::UID_OFFSET;
        let block = kernel.machine().memory().read_u64(addr).unwrap();
        kernel
            .machine_mut()
            .memory_mut()
            .write_u64(addr, block ^ (1u64 << bit))
            .unwrap();
        if creds
            .read(kernel.machine_mut(), &cfg, tid, CredField::Uid)
            .unwrap()
            != 1000
        {
            silent_changes += 1;
        }
    }
    assert_eq!(
        silent_changes, 32,
        "every uid bit flip sticks on the baseline"
    );
}

/// Wrapped per-thread keys in `thread_info` never appear in memory in
/// plaintext, under any seed.
#[test]
fn thread_keys_never_leak_in_plaintext() {
    use rand::{Rng, SeedableRng};
    for seed in [1u64, 99, 12345] {
        let kernel = Kernel::boot(KernelConfig {
            protection: ProtectionConfig::full(),
            machine: regvault_sim::MachineConfig {
                seed,
                ..regvault_sim::MachineConfig::default()
            },
            ..KernelConfig::default()
        })
        .unwrap();
        // Regenerate the same raw key stream the kernel's RNG produced and
        // confirm none of those 64-bit values sit in thread_info.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB007);
        // Skip the 14 general-key halves drawn first at boot.
        for _ in 0..14 {
            let _: u64 = rng.gen();
        }
        let info = kernel.threads.thread_info_addr(0);
        let stored: Vec<u64> = (0..8)
            .map(|i| kernel.machine().memory().read_u64(info + 8 * i).unwrap())
            .collect();
        for _ in 0..4 {
            let raw_half: u64 = rng.gen();
            assert!(
                !stored.contains(&raw_half),
                "raw key half {raw_half:#x} found in thread_info (seed {seed})"
            );
        }
    }
}

/// §2.4.3's dedicated-key argument: a ciphertext produced under one key
/// domain (cred data, key d) substituted into another domain's slot (VFS
/// fn ptr, key b) decrypts with the wrong key — cross-data-type
/// substitution yields garbage even if the attacker matches addresses.
#[test]
fn cross_key_domain_substitution_fails() {
    use regvault_kernel::fs::FileOp;

    let mut kernel = boot(ProtectionConfig::full());
    let cfg = kernel.protection();
    let tid = kernel.current_tid();

    // Take the encrypted uid block (data key, its own address tweak)...
    let uid_addr = kernel.creds.cred_addr(tid) + regvault_kernel::cred::UID_OFFSET;
    let uid_block = kernel.machine().memory().read_u64(uid_addr).unwrap();

    // ...and also craft the best-case variant: re-encrypt a chosen target
    // under the DATA key with the FN-PTR slot's address as tweak, so only
    // the key differs.
    let slot = kernel.fs.file_ops.slot_addr(FileOp::Read);
    let forged = kernel.machine_mut().kernel_encrypt(
        cfg.key_policy().data,
        slot,
        regvault_kernel::fs::handlers::FILE_WRITE, // a real handler address
        regvault_isa::ByteRange::FULL,
    );

    for block in [uid_block, forged] {
        kernel
            .machine_mut()
            .memory_mut()
            .write_u64(slot, block)
            .unwrap();
        let fops = kernel.fs.file_ops;
        let resolved = fops
            .resolve(kernel.machine_mut(), &cfg, FileOp::Read)
            .unwrap();
        assert!(
            !regvault_kernel::fs::handlers::ALL.contains(&resolved),
            "cross-key substitution produced a valid handler {resolved:#x}"
        );
    }
}
