//! Property tests for chain-based interrupt context protection (§2.4.3):
//! every frame slot is covered by the chain, and neither cross-address nor
//! cross-thread (cross-key) frame substitution survives `restore_context`.

use proptest::prelude::*;
use regvault_isa::{KeyReg, Reg};
use regvault_kernel::{trap, KernelError, ProtectionConfig};
use regvault_sim::{Machine, MachineConfig};

const FRAME_A: u64 = 0xFFFF_FFC0_0900_0000;
const FRAME_B: u64 = 0xFFFF_FFC0_0901_0000;

fn machine_with_key(w0: u64, k0: u64) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    machine.write_key_register(KeyReg::C, w0, k0).unwrap();
    machine
}

fn set_regs(machine: &mut Machine, base: u64, step: u64) {
    for i in 1..32u8 {
        let reg = Reg::from_index(i).unwrap();
        machine
            .hart_mut()
            .set_reg(reg, base.wrapping_add(u64::from(i).wrapping_mul(step)));
    }
}

fn frame_words(machine: &Machine, frame: u64) -> [u64; trap::FRAME_SLOTS] {
    let mut words = [0u64; trap::FRAME_SLOTS];
    for (i, word) in words.iter_mut().enumerate() {
        *word = machine.memory().read_u64(frame + 8 * i as u64).unwrap();
    }
    words
}

fn write_frame_words(machine: &mut Machine, frame: u64, words: &[u64; trap::FRAME_SLOTS]) {
    for (i, word) in words.iter().enumerate() {
        machine
            .memory_mut()
            .write_u64(frame + 8 * i as u64, *word)
            .unwrap();
    }
}

/// Exhaustive: flipping one bit in *each* of the 32 frame slots — the 31
/// saved registers and the trailing chain terminator — is detected.
#[test]
fn every_slot_of_the_frame_is_integrity_covered() {
    let cfg = ProtectionConfig::full();
    for slot in 0..trap::FRAME_SLOTS {
        let mut machine = machine_with_key(0xC0, 0xC1);
        set_regs(&mut machine, 0x1000, 7);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        let addr = FRAME_A + 8 * slot as u64;
        let ct = machine.memory().read_u64(addr).unwrap();
        machine
            .memory_mut()
            .write_u64(addr, ct ^ (1 << (slot % 64)))
            .unwrap();
        assert!(
            matches!(
                trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_A),
                Err(KernelError::IntegrityViolation { .. })
            ),
            "single-bit corruption of slot {slot} must be caught"
        );
    }
}

proptest! {
    /// Any nonzero corruption of any slot under any key is detected.
    #[test]
    fn random_slot_corruption_is_detected(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        base in any::<u64>(),
        step in any::<u64>(),
        slot in 0usize..trap::FRAME_SLOTS,
        xor in 1u64..,
    ) {
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_key(w0, k0);
        set_regs(&mut machine, base, step);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        let addr = FRAME_A + 8 * slot as u64;
        let ct = machine.memory().read_u64(addr).unwrap();
        machine.memory_mut().write_u64(addr, ct ^ xor).unwrap();
        let detected = matches!(
            trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_A),
            Err(KernelError::IntegrityViolation { .. })
        );
        prop_assert!(detected);
    }

    /// Cross-thread substitution at the *same* frame address: a bit-for-bit
    /// replay of thread A's whole frame into thread B's slot is rejected,
    /// because the per-thread interrupt key differs (§3.1.1). The address
    /// tweak cannot help here — only the key separation can.
    #[test]
    fn replaying_another_threads_frame_is_rejected(
        key_a in (any::<u64>(), any::<u64>()),
        key_b in (any::<u64>(), any::<u64>()),
    ) {
        prop_assume!(key_a != key_b);
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_key(key_a.0, key_a.1);

        // Thread A saves its context at FRAME_A; the attacker records it.
        set_regs(&mut machine, 0xAAAA_0000, 3);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        let recorded = frame_words(&machine, FRAME_A);

        // Thread B (fresh per-thread key) now owns the same stack slot.
        machine.write_key_register(KeyReg::C, key_b.0, key_b.1).unwrap();
        set_regs(&mut machine, 0xBBBB_0000, 5);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();

        // The attacker replays A's frame bit-for-bit over B's.
        write_frame_words(&mut machine, FRAME_A, &recorded);
        let detected = matches!(
            trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_A),
            Err(KernelError::IntegrityViolation { .. })
        );
        prop_assert!(detected);
    }

    /// Spatial substitution between two frames of the same thread (same
    /// key, different addresses): swapping the frames bit-for-bit is
    /// rejected because the chain's first tweak is the frame address.
    #[test]
    fn swapping_frames_between_addresses_is_rejected(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
    ) {
        let cfg = ProtectionConfig::full();
        let mut machine = machine_with_key(w0, k0);
        set_regs(&mut machine, 0x1111_0000, 9);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        set_regs(&mut machine, 0x2222_0000, 11);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_B).unwrap();

        let frame_a = frame_words(&machine, FRAME_A);
        let frame_b = frame_words(&machine, FRAME_B);
        write_frame_words(&mut machine, FRAME_A, &frame_b);
        write_frame_words(&mut machine, FRAME_B, &frame_a);

        prop_assert!(trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_A).is_err());
        prop_assert!(trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_B).is_err());
    }

    /// Without CIP the same replay goes through silently — the baseline
    /// the paper attacks, kept here as the control arm.
    #[test]
    fn without_cip_replay_is_silent(seed in any::<u64>()) {
        let cfg = ProtectionConfig::off();
        let mut machine = machine_with_key(0xC0, 0xC1);
        set_regs(&mut machine, seed, 13);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        let recorded = frame_words(&machine, FRAME_A);
        set_regs(&mut machine, seed ^ 0xFFFF, 17);
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        write_frame_words(&mut machine, FRAME_A, &recorded);
        let regs = trap::restore_context(&mut machine, &cfg, KeyReg::C, FRAME_A).unwrap();
        prop_assert_eq!(regs[0], seed.wrapping_add(13), "stale x1 restored silently");
    }
}
