//! The epoch-rekey mitigation must not cost any determinism: with the
//! knob on, the same seed yields the same final architectural digest
//! (the digest covers the engine's epoch vector and nonce counter, so
//! record/replay stays exact), the SWAR and reference QARMA datapaths
//! remain bit-for-bit interchangeable (both see only the already-folded
//! tweak), and a snapshot carries the nonce counter, so a restored
//! machine issues the identical sequence of fresh epochs.

use regvault_attacks::leakage::{trap_storm_scenario, TIMER_INTERVAL};
use regvault_isa::{KeyReg, Reg};
use regvault_kernel::{trap, Kernel, KernelConfig, ProtectionConfig};
use regvault_sim::{Machine, MachineConfig};

fn boot(seed: u64, reference_datapath: bool) -> Kernel {
    Kernel::boot(KernelConfig {
        protection: ProtectionConfig::full(),
        machine: MachineConfig {
            seed,
            epoch_rekey: true,
            reference_datapath,
            ..MachineConfig::default()
        },
        timer_interval: Some(TIMER_INTERVAL),
    })
    .expect("kernel boots")
}

/// Runs the trap storm to completion and returns (exit value, final
/// architectural digest, rekey count).
fn run_storm(seed: u64, reference_datapath: bool) -> (u64, u64, u64) {
    let scenario = trap_storm_scenario();
    let mut kernel = boot(seed, reference_datapath);
    let exit = kernel
        .run_user(&scenario.image, scenario.entry, scenario.step_budget)
        .expect("trap storm completes");
    let rekeys = kernel.machine().metrics().get("epoch_rekeys").unwrap_or(0);
    (exit, kernel.machine().arch_digest(), rekeys)
}

#[test]
fn mitigated_runs_are_bit_for_bit_repeatable() {
    let a = run_storm(42, false);
    let b = run_storm(42, false);
    assert_eq!(a, b, "same seed must reproduce the exact same machine");
    assert!(a.2 > 0, "the storm must actually rekey");
}

#[test]
fn swar_and_reference_datapaths_agree_with_mitigation_on() {
    let fast = run_storm(42, false);
    let reference = run_storm(42, true);
    assert_eq!(
        fast, reference,
        "folding the epoch must stay upstream of the datapath split"
    );
}

#[test]
fn snapshot_carries_the_nonce_counter() {
    const FRAME: u64 = 0xFFFF_FFC0_0900_0000;
    let cfg = ProtectionConfig::full();
    let mut machine = Machine::new(MachineConfig {
        epoch_rekey: true,
        ..MachineConfig::default()
    });
    machine
        .write_key_register(KeyReg::C, 0x1234, 0x5678)
        .expect("machine privilege");
    for i in 1..32u8 {
        let reg = Reg::from_index(i).unwrap();
        machine.hart_mut().set_reg(reg, u64::from(i) * 0x0101);
    }
    for _ in 0..3 {
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME).expect("saves");
    }

    let snapshot = machine.snapshot();
    let mut restored = Machine::from_snapshot(&snapshot).expect("snapshot restores");
    assert_eq!(
        machine.arch_digest(),
        restored.arch_digest(),
        "restore must reproduce the digest, epoch state included"
    );

    // Further saves must issue the identical fresh-nonce sequence and
    // produce bit-identical machines — i.e. the nonce counter itself was
    // part of the snapshot, not reset by the restore.
    for _ in 0..3 {
        trap::save_context(&mut machine, &cfg, KeyReg::C, FRAME).expect("saves");
        trap::save_context(&mut restored, &cfg, KeyReg::C, FRAME).expect("saves");
        let a = machine.memory().read_u64(FRAME + trap::NONCE_SLOT).unwrap();
        let b = restored
            .memory()
            .read_u64(FRAME + trap::NONCE_SLOT)
            .unwrap();
        assert_eq!(a, b, "restored machine must issue the same next nonce");
        assert_eq!(machine.arch_digest(), restored.arch_digest());
    }
}
