//! Memory-observation oracle + ciphertext dictionary (CipherGuard attack).
//!
//! RegVault's `cre` is deterministic per (key, tweak, plaintext): whenever
//! the same value is re-encrypted at the same address under the same key,
//! the *identical* ciphertext lands in memory. An attacker who can observe
//! memory — DMA, a malicious hypervisor, cold-boot imaging — therefore
//! learns plaintext *equality* without breaking the cipher: build a
//! dictionary of (address, ciphertext) pairs and every repeat says "this
//! location holds the same secret it held before". That is the ciphertext
//! side channel CipherGuard targets, and the interrupt-context frames are
//! its richest source: every trap chain-encrypts the same 31 registers to
//! the same 31 addresses, and register values repeat constantly.
//!
//! Two observation modes feed the same [`CiphertextDictionary`]:
//!
//! * **bus snooping** — [`MemOracle`] implements [`Tracer`] and captures
//!   every `mem_store` event the simulator emits (guest stores and
//!   kernel-modelled stores alike), optionally filtered to an address
//!   window (e.g. the kernel-stack region where interrupt frames live);
//! * **snapshot diffing** — [`observe_snapshot_diff`] feeds the
//!   (address, word) pairs of [`regvault_sim::Snapshot::changed_words`],
//!   modelling an attacker who images memory before and after a victim
//!   interval rather than watching the bus.

use std::any::Any;
use std::collections::HashMap;

use regvault_sim::{Snapshot, TraceEvent, TraceRecord, Tracer};

/// Dictionary of observed (address, ciphertext-word) pairs with collision
/// accounting.
///
/// A *collision* is every observation of a pair already in the dictionary:
/// the attacker's equality inference fires. The detector does not need the
/// plaintexts — repeats of the *ciphertext* at an address are exactly the
/// signal (two distinct plaintexts can never produce one ciphertext under a
/// fixed key/tweak, and the attacker learns the plaintexts are equal).
#[derive(Debug, Clone, Default)]
pub struct CiphertextDictionary {
    seen: HashMap<(u64, u64), u64>,
    observations: u64,
    collisions: u64,
}

impl CiphertextDictionary {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed (address, word) pair, counting a collision if
    /// the pair was seen before.
    pub fn observe(&mut self, addr: u64, word: u64) {
        self.observations += 1;
        let hits = self.seen.entry((addr, word)).or_insert(0);
        if *hits > 0 {
            self.collisions += 1;
        }
        *hits += 1;
    }

    /// The accumulated counts.
    #[must_use]
    pub fn report(&self) -> CollisionReport {
        let colliding_pairs = self.seen.values().filter(|&&n| n > 1).count() as u64;
        CollisionReport {
            observations: self.observations,
            distinct_pairs: self.seen.len() as u64,
            collisions: self.collisions,
            colliding_pairs,
        }
    }
}

/// What the dictionary attack found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionReport {
    /// Total (address, word) observations fed to the dictionary.
    pub observations: u64,
    /// Distinct (address, word) pairs seen.
    pub distinct_pairs: u64,
    /// Observations that repeated an already-known pair — each one is a
    /// successful plaintext-equality inference.
    pub collisions: u64,
    /// Distinct pairs that were observed more than once.
    pub colliding_pairs: u64,
}

impl CollisionReport {
    /// Collisions per observation (0 when nothing was observed).
    #[must_use]
    pub fn collision_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.collisions as f64 / self.observations as f64
        }
    }
}

/// A [`Tracer`] that snoops the memory bus: every `mem_store` event inside
/// the watch window feeds the dictionary. Install with
/// [`regvault_sim::Machine::install_tracer`], recover with
/// [`regvault_sim::Machine::take_tracer`] + downcast.
#[derive(Debug, Clone, Default)]
pub struct MemOracle {
    /// Half-open `[lo, hi)` address windows to observe; empty = everything.
    ranges: Vec<(u64, u64)>,
    dict: CiphertextDictionary,
}

impl MemOracle {
    /// An oracle observing every store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An oracle observing only stores inside the half-open `[lo, hi)`
    /// windows — e.g. the kernel-stack region where interrupt frames live.
    #[must_use]
    pub fn watching(ranges: Vec<(u64, u64)>) -> Self {
        Self {
            ranges,
            dict: CiphertextDictionary::new(),
        }
    }

    /// The dictionary accumulated so far.
    #[must_use]
    pub fn dictionary(&self) -> &CiphertextDictionary {
        &self.dict
    }

    /// The collision counts accumulated so far.
    #[must_use]
    pub fn report(&self) -> CollisionReport {
        self.dict.report()
    }

    fn watches(&self, addr: u64) -> bool {
        self.ranges.is_empty() || self.ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&addr))
    }
}

impl Tracer for MemOracle {
    fn emit(&mut self, record: TraceRecord) {
        if let TraceEvent::MemStore { addr, value } = record.event {
            if self.watches(addr) {
                self.dict.observe(addr, value);
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Tracer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Snapshot-diff observation mode: feeds every changed word between two
/// memory images into `dict`, optionally restricted to `[lo, hi)` windows
/// (`None` = everything). Models an attacker imaging memory around a
/// victim interval instead of snooping the bus.
pub fn observe_snapshot_diff(
    dict: &mut CiphertextDictionary,
    base: &Snapshot,
    after: &Snapshot,
    ranges: Option<&[(u64, u64)]>,
) {
    for (addr, word) in after.changed_words(base) {
        let watched = match ranges {
            None => true,
            Some(rs) => rs.iter().any(|&(lo, hi)| (lo..hi).contains(&addr)),
        };
        if watched {
            dict.observe(addr, word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_collision_fixture_is_detected() {
        // The fixture models two CIP saves of identical register values to
        // the same frame without the mitigation: byte-identical
        // ciphertexts land at the same addresses the second time.
        let frame = 0xFFFF_FFC0_1000_0000u64;
        let ciphertexts = [0xDEAD_0001u64, 0xDEAD_0002, 0xDEAD_0003];
        let mut dict = CiphertextDictionary::new();
        for _save in 0..2 {
            for (i, &ct) in ciphertexts.iter().enumerate() {
                dict.observe(frame + 8 * i as u64, ct);
            }
        }
        let report = dict.report();
        assert_eq!(report.observations, 6);
        assert_eq!(report.distinct_pairs, 3);
        assert_eq!(report.collisions, 3, "entire second save collides");
        assert_eq!(report.colliding_pairs, 3);
        assert!((report.collision_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_diversified_rewrite_reports_zero_collisions() {
        // The same fixture after the mitigation: each save's ciphertexts
        // differ (fresh epoch folded into every tweak), so the dictionary
        // never fires.
        let frame = 0xFFFF_FFC0_1000_0000u64;
        let mut dict = CiphertextDictionary::new();
        for save in 0..2u64 {
            for i in 0..3u64 {
                // Distinct per save: what fold_tweak guarantees.
                dict.observe(frame + 8 * i, (0xDEAD_0000 + i) ^ (save << 32));
            }
        }
        let report = dict.report();
        assert_eq!(report.observations, 6);
        assert_eq!(report.collisions, 0);
        assert_eq!(report.colliding_pairs, 0);
        assert_eq!(report.collision_rate(), 0.0);
    }

    #[test]
    fn oracle_filters_by_address_window() {
        let mut oracle = MemOracle::watching(vec![(0x1000, 0x2000)]);
        let store = |addr, value| TraceRecord {
            cycle: 0,
            instret: 0,
            event: TraceEvent::MemStore { addr, value },
        };
        oracle.emit(store(0x1008, 7));
        oracle.emit(store(0x1008, 7)); // collision, in window
        oracle.emit(store(0x9000, 7)); // out of window
        oracle.emit(store(0x9000, 7));
        let report = oracle.report();
        assert_eq!(report.observations, 2);
        assert_eq!(report.collisions, 1);
    }

    #[test]
    fn non_store_events_are_ignored() {
        let mut oracle = MemOracle::new();
        oracle.emit(TraceRecord {
            cycle: 0,
            instret: 0,
            event: TraceEvent::ClbHit {
                ksel: 1,
                decrypt: false,
            },
        });
        assert_eq!(oracle.report().observations, 0);
    }
}
