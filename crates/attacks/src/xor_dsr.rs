//! An XOR-based data space randomization baseline (DSR / HARD / CoDaRR).
//!
//! The paper's motivation (§1, §5): prior data randomization schemes XOR
//! each equivalence class of data with a per-class mask because no
//! cryptographically strong register-grained hardware primitive existed.
//! XOR masking is linear, so a single plaintext/ciphertext pair reveals the
//! mask for the entire class — "all of these works suffer memory
//! disclosures, due to the weak XOR-based encryption."
//!
//! This module implements that baseline faithfully enough to attack it,
//! and the tests demonstrate the two classic breaks the paper cites:
//! known-plaintext mask recovery and mask-reuse forgery — both of which
//! QARMA-based RegVault resists (see [`crate::run_attack`]).

use regvault_qarma::{Key, Qarma64};

/// A data space randomizer in the style of DSR: every equivalence class of
/// data shares one 64-bit XOR mask.
///
/// # Examples
///
/// ```
/// use regvault_attacks::xor_dsr::XorDsr;
///
/// let dsr = XorDsr::new(42, 4);
/// let masked = dsr.randomize(0, 0xdead_beef);
/// assert_ne!(masked, 0xdead_beef);
/// assert_eq!(dsr.derandomize(0, masked), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct XorDsr {
    masks: Vec<u64>,
}

impl XorDsr {
    /// Creates a randomizer with `classes` equivalence classes, masks
    /// derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, classes: usize) -> Self {
        // Derive masks with QARMA as a PRF — the *masks* are strong; the
        // weakness demonstrated here is structural (linearity), not a weak
        // RNG.
        let prf = Qarma64::new(Key::new(seed, !seed));
        let masks = (0..classes as u64).map(|i| prf.encrypt(i, 0)).collect();
        Self { masks }
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.masks.len()
    }

    /// Randomizes `value` as a member of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn randomize(&self, class: usize, value: u64) -> u64 {
        value ^ self.masks[class]
    }

    /// De-randomizes a masked value.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn derandomize(&self, class: usize, masked: u64) -> u64 {
        masked ^ self.masks[class]
    }
}

/// The known-plaintext attack: given one `(plaintext, masked)` pair from a
/// class, recover the class mask — XOR's linearity in one line.
#[must_use]
pub fn recover_mask(known_plaintext: u64, observed_masked: u64) -> u64 {
    known_plaintext ^ observed_masked
}

/// The forgery: with the recovered mask, encode any attacker-chosen value
/// so the victim derandomizes it to exactly that value.
#[must_use]
pub fn forge(mask: u64, chosen_value: u64) -> u64 {
    chosen_value ^ mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::{ByteRange, KeyReg};
    use regvault_sim::CryptoEngine;

    #[test]
    fn round_trip_works_per_class() {
        let dsr = XorDsr::new(7, 3);
        for class in 0..3 {
            let masked = dsr.randomize(class, 0x1234_5678_9ABC_DEF0);
            assert_eq!(dsr.derandomize(class, masked), 0x1234_5678_9ABC_DEF0);
        }
    }

    #[test]
    fn classes_use_distinct_masks() {
        let dsr = XorDsr::new(7, 4);
        let masked: Vec<u64> = (0..4).map(|c| dsr.randomize(c, 0)).collect();
        let mut unique = masked.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    /// The paper's core criticism: one known plaintext breaks the class.
    #[test]
    fn known_plaintext_breaks_xor_dsr() {
        let dsr = XorDsr::new(1234, 2);
        // The attacker knows that some variable in class 0 currently holds
        // the value 1000 (e.g. their own uid) and leaks its masked form.
        let observed = dsr.randomize(0, 1000);
        let mask = recover_mask(1000, observed);
        // Now every other value in the class is an open book...
        let secret_masked = dsr.randomize(0, 0x5EC2_E7AA_BBCC_DDEEu64);
        assert_eq!(secret_masked ^ mask, 0x5EC2_E7AA_BBCC_DDEEu64);
        // ...and the attacker can forge arbitrary values (uid = 0).
        let forged = forge(mask, 0);
        assert_eq!(dsr.derandomize(0, forged), 0, "privilege escalation");
    }

    /// The same known-plaintext attack against the QARMA-based RegVault
    /// primitive goes nowhere: recovering "the mask" from one pair gives a
    /// value that predicts nothing about any other pair.
    #[test]
    fn known_plaintext_does_not_break_regvault() {
        let mut engine = CryptoEngine::new(0, 99);
        engine.write_key(KeyReg::D, Key::new(5, 6));
        let observed = engine.encrypt(KeyReg::D, 0x40, 1000, ByteRange::FULL).value;
        let pseudo_mask = recover_mask(1000, observed);
        // Try to use the "mask" to decode a different value at the same
        // tweak, and to forge uid=0.
        let other = engine.encrypt(KeyReg::D, 0x40, 4242, ByteRange::FULL).value;
        assert_ne!(other ^ pseudo_mask, 4242, "no linear structure to exploit");
        let forged = forge(pseudo_mask, 0);
        let decoded = engine
            .decrypt(KeyReg::D, 0x40, forged, ByteRange::FULL)
            .expect("full range")
            .value;
        assert_ne!(decoded, 0, "forgery lands on garbage, not uid 0");
    }
}
