//! The RegVault penetration-test suite (Table 4 of the paper).
//!
//! Eight attacks, each executed under the paper's threat model — the
//! attacker reads and writes arbitrary kernel memory but cannot touch
//! registers — against a bootable kernel in any protection configuration:
//!
//! 1. **Return-oriented programming** — overwrite a saved kernel return
//!    address with a gadget address.
//! 2. **Jump-oriented programming** — overwrite a VFS function pointer.
//! 3. **Sensitive data corruption** — overwrite a protected cred field.
//! 4. **Sensitive data leak** — read kernel key material from memory.
//! 5. **Privilege escalation** — zero `cred.euid` (the classic rooting
//!    technique).
//! 6. **SELinux bypass** — zero `selinux_state.initialized` (Di Shen's
//!    KNOX bypass).
//! 7. **Interrupt context corruption** — tamper with a register saved in
//!    an interrupt frame.
//! 8. **Spatial code pointer substitution** — replace one *encrypted*
//!    function pointer with another legitimate one stored elsewhere.
//!
//! Every attack reports whether it **succeeded** (the paper's ✗ for the
//! original kernel) or was **defeated** (✓), distinguishing defeat by
//! detection (integrity exception) from defeat by garbling (the corrupted
//! value decrypts to an unusable plaintext).
//!
//! # Examples
//!
//! ```
//! use regvault_attacks::{run_attack, Attack, Outcome};
//! use regvault_kernel::ProtectionConfig;
//!
//! let on_original = run_attack(Attack::PrivilegeEscalation, ProtectionConfig::off());
//! assert_eq!(on_original.outcome, Outcome::Succeeded);
//!
//! let on_regvault = run_attack(Attack::PrivilegeEscalation, ProtectionConfig::full());
//! assert!(on_regvault.outcome.defeated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod leakage;
pub mod oracle;
pub mod xor_dsr;

use regvault_kernel::cred::{CredField, EGID_OFFSET, EUID_OFFSET};
use regvault_kernel::fs::{handlers, FileOp};
use regvault_kernel::layout::KERNEL_TEXT_BASE;
use regvault_kernel::selinux::INITIALIZED_OFFSET;
use regvault_kernel::{trap, Kernel, KernelConfig, KernelError, ProtectionConfig};
use regvault_sim::FaultKind;

/// The eight attacks of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// ❶ Return-oriented programming.
    Rop,
    /// ❷ Jump-oriented programming.
    Jop,
    /// ❸ Sensitive data corruption.
    SensitiveDataCorruption,
    /// ❹ Sensitive data leak.
    SensitiveDataLeak,
    /// ❺ Privilege escalation by corrupting `cred.euid`.
    PrivilegeEscalation,
    /// ❻ SELinux bypass by corrupting `selinux_state.initialized`.
    SelinuxBypass,
    /// ❼ Interrupt context corruption.
    InterruptContextCorruption,
    /// ❽ Spatial code pointer substitution.
    SpatialSubstitution,
}

impl Attack {
    /// All eight attacks in Table 4 order.
    pub const ALL: [Attack; 8] = [
        Attack::Rop,
        Attack::Jop,
        Attack::SensitiveDataCorruption,
        Attack::SensitiveDataLeak,
        Attack::PrivilegeEscalation,
        Attack::SelinuxBypass,
        Attack::InterruptContextCorruption,
        Attack::SpatialSubstitution,
    ];

    /// Human-readable name matching Table 4.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Attack::Rop => "Return-Oriented Programming",
            Attack::Jop => "Jump-Oriented Programming",
            Attack::SensitiveDataCorruption => "Sensitive Data Corruption",
            Attack::SensitiveDataLeak => "Sensitive Data Leak",
            Attack::PrivilegeEscalation => "Privilege Escalation",
            Attack::SelinuxBypass => "SELinux Bypass",
            Attack::InterruptContextCorruption => "Interrupt Context Corruption",
            Attack::SpatialSubstitution => "Spatial Code Pointer Substitution",
        }
    }
}

/// What happened when the attack ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The attacker achieved the goal (Table 4's ✗).
    Succeeded,
    /// Defeated: the kernel raised an integrity exception.
    DefeatedDetected,
    /// Defeated: the corrupted value decrypted to unusable garbage.
    DefeatedGarbled,
}

impl Outcome {
    /// `true` for either defeat mode (Table 4's ✓).
    #[must_use]
    pub fn defeated(self) -> bool {
        !matches!(self, Outcome::Succeeded)
    }
}

/// A completed attack run.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Which attack ran.
    pub attack: Attack,
    /// The kernel configuration it ran against.
    pub config_label: &'static str,
    /// What happened.
    pub outcome: Outcome,
    /// One-line evidence trail.
    pub detail: String,
}

fn boot(protection: ProtectionConfig) -> Kernel {
    Kernel::boot(KernelConfig {
        protection,
        ..KernelConfig::default()
    })
    .expect("kernel boots")
}

/// Runs one attack against a freshly booted kernel.
#[must_use]
pub fn run_attack(attack: Attack, protection: ProtectionConfig) -> AttackResult {
    let outcome = match attack {
        Attack::Rop => rop(protection),
        Attack::Jop => jop(protection),
        Attack::SensitiveDataCorruption => data_corruption(protection),
        Attack::SensitiveDataLeak => data_leak(protection),
        Attack::PrivilegeEscalation => privilege_escalation(protection),
        Attack::SelinuxBypass => selinux_bypass(protection),
        Attack::InterruptContextCorruption => interrupt_corruption(protection),
        Attack::SpatialSubstitution => spatial_substitution(protection),
    };
    AttackResult {
        attack,
        config_label: protection.label(),
        outcome: outcome.0,
        detail: outcome.1,
    }
}

/// Runs the full Table 4 column for one configuration.
#[must_use]
pub fn run_all(protection: ProtectionConfig) -> Vec<AttackResult> {
    Attack::ALL
        .iter()
        .map(|&attack| run_attack(attack, protection))
        .collect()
}

// --- The attacks ------------------------------------------------------

/// ❶ ROP: overwrite a saved kernel return address with a gadget address.
fn rop(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let gadget = KERNEL_TEXT_BASE + 0x4242;
    let slot = kernel.push_kframe(7).expect("frame push");
    kernel.machine_mut().inject_fault(FaultKind::MemWrite {
        addr: slot,
        value: gadget,
    });
    match kernel.pop_kframe(7) {
        Err(KernelError::WildJump { target }) if target == gadget => (
            Outcome::Succeeded,
            format!("control flow redirected to gadget {gadget:#x}"),
        ),
        Err(KernelError::WildJump { target }) => (
            Outcome::DefeatedGarbled,
            format!("return decrypted to garbage {target:#x}, not the gadget"),
        ),
        Err(KernelError::IntegrityViolation { what }) => {
            (Outcome::DefeatedDetected, format!("exception on {what}"))
        }
        other => (
            Outcome::DefeatedGarbled,
            format!("return did not reach the gadget: {other:?}"),
        ),
    }
}

/// ❷ JOP: overwrite the VFS `read` function pointer with a gadget address.
fn jop(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let gadget = KERNEL_TEXT_BASE + 0x1313;
    let slot = kernel.fs.file_ops.slot_addr(FileOp::Read);
    kernel.machine_mut().inject_fault(FaultKind::MemWrite {
        addr: slot,
        value: gadget,
    });
    let cfg = kernel.protection();
    let fops = kernel.fs.file_ops;
    let resolved = fops
        .resolve(kernel.machine_mut(), &cfg, FileOp::Read)
        .expect("pointer load");
    if resolved == gadget {
        (
            Outcome::Succeeded,
            format!("indirect call target is the gadget {gadget:#x}"),
        )
    } else {
        (
            Outcome::DefeatedGarbled,
            format!("pointer decrypted to {resolved:#x}, not the gadget"),
        )
    }
}

/// ❸ Sensitive data corruption: overwrite the protected `cred.egid`.
fn data_corruption(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let tid = kernel.current_tid();
    let addr = kernel.creds.cred_addr(tid) + EGID_OFFSET;
    kernel
        .machine_mut()
        .inject_fault(FaultKind::MemWrite { addr, value: 0 });
    let cfg = kernel.protection();
    let creds = kernel.creds.clone();
    match creds.read(kernel.machine_mut(), &cfg, tid, CredField::Egid) {
        Ok(0) => (
            Outcome::Succeeded,
            "kernel accepted the attacker's egid=0".into(),
        ),
        Ok(other) => (
            Outcome::DefeatedGarbled,
            format!("kernel read garbage gid {other}"),
        ),
        Err(KernelError::IntegrityViolation { what }) => {
            (Outcome::DefeatedDetected, format!("exception on {what}"))
        }
        Err(other) => (Outcome::DefeatedDetected, format!("{other}")),
    }
}

/// ❹ Sensitive data leak: dump keyring memory and look for the key.
fn data_leak(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let secret = *b"TOP-SECRET-KEY-1";
    let cfg = kernel.protection();
    let mut keyring = kernel.keyring.clone();
    keyring
        .add_key(kernel.machine_mut(), &cfg, secret)
        .expect("key installed");
    let entry = keyring.entry_addr(0);
    let mut leaked = [0u8; 16];
    let lo = kernel.machine().memory().read_u64(entry + 8).expect("read");
    let hi = kernel
        .machine()
        .memory()
        .read_u64(entry + 16)
        .expect("read");
    leaked[..8].copy_from_slice(&lo.to_le_bytes());
    leaked[8..].copy_from_slice(&hi.to_le_bytes());
    if leaked == secret {
        (
            Outcome::Succeeded,
            "key material recovered verbatim from memory".into(),
        )
    } else {
        (
            Outcome::DefeatedGarbled,
            "memory disclosure yields only ciphertext".into(),
        )
    }
}

/// ❺ Privilege escalation: zero `cred.euid`, then exercise a root check.
fn privilege_escalation(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let tid = kernel.current_tid();
    let addr = kernel.creds.cred_addr(tid) + EUID_OFFSET;
    kernel
        .machine_mut()
        .inject_fault(FaultKind::MemWrite { addr, value: 0 });
    let cfg = kernel.protection();
    let creds = kernel.creds.clone();
    match creds.is_root(kernel.machine_mut(), &cfg, tid) {
        Ok(true) => (Outcome::Succeeded, "kernel now believes euid == 0".into()),
        Ok(false) => (
            Outcome::DefeatedGarbled,
            "corrupted euid decrypted to a non-root garbage uid".into(),
        ),
        Err(KernelError::IntegrityViolation { what }) => {
            (Outcome::DefeatedDetected, format!("exception on {what}"))
        }
        Err(other) => (Outcome::DefeatedDetected, format!("{other}")),
    }
}

/// ❻ SELinux bypass: zero `selinux_state.initialized`.
fn selinux_bypass(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let addr = kernel.selinux.base() + INITIALIZED_OFFSET;
    kernel
        .machine_mut()
        .inject_fault(FaultKind::MemWrite { addr, value: 0 });
    let cfg = kernel.protection();
    let selinux = kernel.selinux.clone();
    // Ask for an operation the policy denies: with SELinux "uninitialized"
    // it sails through.
    match selinux.avc_check(kernel.machine_mut(), &cfg, false) {
        Ok(true) => (
            Outcome::Succeeded,
            "policy-denied operation was permitted".into(),
        ),
        Ok(false) => (
            Outcome::DefeatedGarbled,
            "garbled state still enforced the policy".into(),
        ),
        Err(KernelError::IntegrityViolation { what }) => {
            (Outcome::DefeatedDetected, format!("exception on {what}"))
        }
        Err(other) => (Outcome::DefeatedDetected, format!("{other}")),
    }
}

/// ❼ Interrupt context corruption: tamper with a saved register between
/// the interrupt save and restore.
fn interrupt_corruption(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let cfg = kernel.protection();
    let tid = kernel.current_tid();
    let frame = kernel.threads.interrupt_frame_addr(tid);
    let key = cfg.key_policy().interrupt;

    // Give the saved context a recognizable ra (slot 0 is x1).
    kernel
        .machine_mut()
        .hart_mut()
        .set_reg(regvault_isa::Reg::Ra, KERNEL_TEXT_BASE + 0x9000);
    trap::save_context(kernel.machine_mut(), &cfg, key, frame).expect("context saved");

    // The attack: replace the saved ra with a gadget address.
    let gadget = KERNEL_TEXT_BASE + 0x6666;
    kernel.machine_mut().inject_fault(FaultKind::MemWrite {
        addr: frame,
        value: gadget,
    });

    match trap::restore_context(kernel.machine_mut(), &cfg, key, frame) {
        Ok(regs) if regs[0] == gadget => (
            Outcome::Succeeded,
            "interrupt return will jump to the gadget".into(),
        ),
        Ok(regs) => (
            Outcome::DefeatedGarbled,
            format!("saved ra decrypted to garbage {:#x}", regs[0]),
        ),
        Err(KernelError::IntegrityViolation { what }) => {
            (Outcome::DefeatedDetected, format!("exception on {what}"))
        }
        Err(other) => (Outcome::DefeatedDetected, format!("{other}")),
    }
}

/// ❽ Spatial substitution: copy the (encrypted) `pipe_read` pointer over
/// the `file_read` slot — both are valid ciphertexts, just stored at
/// different addresses.
fn spatial_substitution(protection: ProtectionConfig) -> (Outcome, String) {
    let mut kernel = boot(protection);
    let file_slot = kernel.fs.file_ops.slot_addr(FileOp::Read);
    let pipe_slot = kernel.fs.pipe_ops.slot_addr(FileOp::Read);
    // Swap the two stored (possibly encrypted) words: both directions are
    // legitimate ciphertexts, only their storage addresses change.
    kernel.machine_mut().inject_fault(FaultKind::MemSwap {
        a: file_slot,
        b: pipe_slot,
    });
    let cfg = kernel.protection();
    let fops = kernel.fs.file_ops;
    let resolved = fops
        .resolve(kernel.machine_mut(), &cfg, FileOp::Read)
        .expect("pointer load");
    if resolved == handlers::PIPE_READ {
        (
            Outcome::Succeeded,
            "file read now dispatches to the substituted pipe handler".into(),
        )
    } else {
        (
            Outcome::DefeatedGarbled,
            format!("substituted ciphertext decrypted to {resolved:#x} (address tweak mismatch)"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_attacks_succeed_on_the_original_kernel() {
        for result in run_all(ProtectionConfig::off()) {
            assert_eq!(
                result.outcome,
                Outcome::Succeeded,
                "{} should succeed on the baseline: {}",
                result.attack.name(),
                result.detail
            );
        }
    }

    #[test]
    fn all_attacks_are_defeated_by_full_protection() {
        for result in run_all(ProtectionConfig::full()) {
            assert!(
                result.outcome.defeated(),
                "{} must be defeated under FULL: {}",
                result.attack.name(),
                result.detail
            );
        }
    }

    #[test]
    fn ra_only_defeats_rop_but_not_data_attacks() {
        let cfg = ProtectionConfig::ra_only();
        assert!(run_attack(Attack::Rop, cfg).outcome.defeated());
        assert_eq!(
            run_attack(Attack::PrivilegeEscalation, cfg).outcome,
            Outcome::Succeeded
        );
        assert_eq!(run_attack(Attack::Jop, cfg).outcome, Outcome::Succeeded);
    }

    #[test]
    fn fp_only_defeats_jop_and_spatial_substitution() {
        let cfg = ProtectionConfig::fp_only();
        assert!(run_attack(Attack::Jop, cfg).outcome.defeated());
        assert!(run_attack(Attack::SpatialSubstitution, cfg)
            .outcome
            .defeated());
        assert_eq!(run_attack(Attack::Rop, cfg).outcome, Outcome::Succeeded);
    }

    #[test]
    fn non_control_defeats_the_data_attacks() {
        let cfg = ProtectionConfig::non_control();
        for attack in [
            Attack::SensitiveDataCorruption,
            Attack::SensitiveDataLeak,
            Attack::PrivilegeEscalation,
            Attack::SelinuxBypass,
        ] {
            assert!(
                run_attack(attack, cfg).outcome.defeated(),
                "{}",
                attack.name()
            );
        }
    }

    #[test]
    fn integrity_protected_targets_report_detection() {
        // Corruption of integrity-protected data must be *detected*, not
        // just garbled (§2.3.1).
        let cfg = ProtectionConfig::full();
        for attack in [
            Attack::SensitiveDataCorruption,
            Attack::PrivilegeEscalation,
            Attack::SelinuxBypass,
            Attack::InterruptContextCorruption,
        ] {
            assert_eq!(
                run_attack(attack, cfg).outcome,
                Outcome::DefeatedDetected,
                "{}",
                attack.name()
            );
        }
    }
}
