//! Seeded ciphertext-leakage campaign (CipherGuard-style dictionary attack).
//!
//! Each scenario boots a fully protected kernel twice over the same guest
//! program and seed — once with [`epoch_rekey`] off, once on — with a
//! [`MemOracle`] snooping the interrupt-context frame windows on the
//! kernel stacks. The off run quantifies the raw ciphertext side channel
//! (every re-save of an unchanged register is a dictionary hit); the on
//! run quantifies what the nonce-diversified rekey mitigation leaves
//! behind. The campaign is fully deterministic per seed, so its numbers
//! are byte-stable across runs and machines.
//!
//! The module deliberately takes guest programs as `(image, entry)` pairs:
//! the workload corpus (UnixBench/LMbench/SPEC) and the serve scenario
//! live in crates *above* this one, and the CLI/bench layers supply them
//! via [`GuestScenario`].
//!
//! [`epoch_rekey`]: regvault_sim::MachineConfig::epoch_rekey

use regvault_kernel::layout::kernel_stack_top;
use regvault_kernel::thread::MAX_THREADS;
use regvault_kernel::{trap, Kernel, KernelConfig, KernelError, ProtectionConfig};
use regvault_sim::MachineConfig;

use crate::oracle::{CollisionReport, MemOracle};

/// Timer period for campaign runs (cycles) — matches the benchmark
/// corpus, so every scenario sees realistic preemption-driven context
/// save/restore traffic on top of its syscall traps.
pub const TIMER_INTERVAL: u64 = 150_000;

/// Default per-scenario instruction budget.
pub const STEP_BUDGET: u64 = 400_000_000;

/// The half-open address windows the oracle watches: every thread's
/// interrupt-context frame. This is where the ciphertext side channel
/// lives — the dictionary inference only works over *encrypted* memory
/// (plaintext kernel data the attacker reads directly, no inference
/// needed), and the CIP frames are the encrypted region the kernel
/// rewrites constantly.
#[must_use]
pub fn cip_frame_windows() -> Vec<(u64, u64)> {
    (0..MAX_THREADS)
        .map(|tid| {
            let top = kernel_stack_top(tid);
            (top - trap::FRAME_SIZE, top)
        })
        .collect()
}

/// One guest program the campaign runs.
#[derive(Debug, Clone)]
pub struct GuestScenario {
    /// Display name (figure label).
    pub name: String,
    /// Guest program image.
    pub image: Vec<u8>,
    /// Entry offset into the image.
    pub entry: u64,
    /// Instruction budget for the run.
    pub step_budget: u64,
}

impl GuestScenario {
    /// A scenario with the default step budget.
    #[must_use]
    pub fn new(name: &str, image: Vec<u8>, entry: u64) -> Self {
        Self {
            name: name.to_owned(),
            image,
            entry,
            step_budget: STEP_BUDGET,
        }
    }
}

/// A synthetic trap-storm guest: a tight `yield` loop with fixed values
/// parked in the saved-callee registers. Every yield context-switches, so
/// the kernel re-encrypts the same plaintexts to the same frame slots over
/// and over — the worst case for the ciphertext dictionary and the fixture
/// scenario for the campaign.
#[must_use]
pub fn trap_storm_scenario() -> GuestScenario {
    let source = "li   s1, 0
         li   s2, 400
         li   s3, 0x1111
         li   s4, 0x2222
         li   s5, 0x3333
         li   s6, 0x4444
        loop:
         li   a7, 13    # yield
         ecall
         addi s1, s1, 1
         blt  s1, s2, loop
         mv   a0, s1
         ebreak";
    let program = regvault_isa::asm::assemble(source).expect("trap storm assembles");
    let entry = program.symbol("main").unwrap_or(0);
    GuestScenario::new("trap_storm", program.bytes().to_vec(), entry)
}

/// Leakage measured for one scenario, mitigation off vs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioLeakage {
    /// Scenario name.
    pub name: String,
    /// Dictionary results with `epoch_rekey` off.
    pub off: CollisionReport,
    /// Dictionary results with `epoch_rekey` on.
    pub on: CollisionReport,
    /// Rekey operations the mitigated run performed (one per context
    /// save), from the `epoch_rekeys` counter.
    pub epoch_rekeys: u64,
}

impl ScenarioLeakage {
    /// Collision reduction factor (off collisions per on collision). An
    /// on-run with zero collisions divides by one, so the factor is a
    /// conservative lower bound in the perfect case.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        self.off.collisions as f64 / self.on.collisions.max(1) as f64
    }
}

/// The whole campaign's results.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Per-scenario rows, in run order.
    pub scenarios: Vec<ScenarioLeakage>,
}

impl LeakageReport {
    /// Total collisions across scenarios with the mitigation off.
    #[must_use]
    pub fn total_off_collisions(&self) -> u64 {
        self.scenarios.iter().map(|s| s.off.collisions).sum()
    }

    /// Total collisions across scenarios with the mitigation on.
    #[must_use]
    pub fn total_on_collisions(&self) -> u64 {
        self.scenarios.iter().map(|s| s.on.collisions).sum()
    }

    /// Campaign-wide collision reduction factor.
    #[must_use]
    pub fn overall_reduction(&self) -> f64 {
        self.total_off_collisions() as f64 / self.total_on_collisions().max(1) as f64
    }
}

/// Runs one guest under full protection with the oracle installed and
/// returns what the dictionary saw plus the rekey count.
fn observed_run(
    scenario: &GuestScenario,
    seed: u64,
    epoch_rekey: bool,
) -> Result<(CollisionReport, u64), KernelError> {
    let mut kernel = Kernel::boot(KernelConfig {
        protection: ProtectionConfig::full(),
        machine: MachineConfig {
            seed,
            epoch_rekey,
            ..MachineConfig::default()
        },
        timer_interval: Some(TIMER_INTERVAL),
    })?;
    kernel
        .machine_mut()
        .install_tracer(Box::new(MemOracle::watching(cip_frame_windows())));
    kernel.run_user(&scenario.image, scenario.entry, scenario.step_budget)?;
    let rekeys = kernel.machine().metrics().get("epoch_rekeys").unwrap_or(0);
    let oracle = kernel
        .machine_mut()
        .take_tracer()
        .expect("oracle still installed")
        .into_any()
        .downcast::<MemOracle>()
        .expect("tracer is the oracle");
    Ok((oracle.report(), rekeys))
}

/// Measures one scenario with the mitigation off and on (same seed).
///
/// # Errors
///
/// Propagates kernel errors from either run.
pub fn measure_scenario(
    scenario: &GuestScenario,
    seed: u64,
) -> Result<ScenarioLeakage, KernelError> {
    let (off, _) = observed_run(scenario, seed, false)?;
    let (on, epoch_rekeys) = observed_run(scenario, seed, true)?;
    Ok(ScenarioLeakage {
        name: scenario.name.clone(),
        off,
        on,
        epoch_rekeys,
    })
}

/// Runs the full campaign over `scenarios` with one seed.
///
/// # Errors
///
/// Propagates the first kernel error; a correctly assembled corpus never
/// trips one.
pub fn campaign(scenarios: &[GuestScenario], seed: u64) -> Result<LeakageReport, KernelError> {
    let mut rows = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        rows.push(measure_scenario(scenario, seed)?);
    }
    Ok(LeakageReport { scenarios: rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_storm_leaks_without_mitigation_and_not_with_it() {
        let row = measure_scenario(&trap_storm_scenario(), 0xA11CE).unwrap();
        assert!(
            row.off.collisions > 100,
            "unmitigated trap storm must leak heavily, saw {}",
            row.off.collisions
        );
        assert!(
            row.reduction() >= 10.0,
            "mitigation must cut collisions >= 10x: off={} on={}",
            row.off.collisions,
            row.on.collisions
        );
        assert!(row.epoch_rekeys > 0, "mitigated run must rekey");
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let scenarios = vec![trap_storm_scenario()];
        let a = campaign(&scenarios, 7).unwrap();
        let b = campaign(&scenarios, 7).unwrap();
        assert_eq!(a, b);
    }
}
