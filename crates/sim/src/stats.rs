//! Execution statistics.

/// Coarse instruction classification used for cycle accounting and
/// instruction-mix reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum InsnClass {
    Alu,
    Branch,
    Jump,
    Load,
    Store,
    Mul,
    Div,
    Csr,
    Crypto,
    System,
}

impl InsnClass {
    /// Every class, in declaration order.
    pub const ALL: [InsnClass; 10] = [
        InsnClass::Alu,
        InsnClass::Branch,
        InsnClass::Jump,
        InsnClass::Load,
        InsnClass::Store,
        InsnClass::Mul,
        InsnClass::Div,
        InsnClass::Csr,
        InsnClass::Crypto,
        InsnClass::System,
    ];
}

/// Counters accumulated while the machine runs.
///
/// Per-class retirement counts live in a fixed array indexed by the class
/// discriminant (the retire path runs once per emulated instruction, so a
/// tree-map entry per retirement was measurable overhead); read them through
/// [`Stats::class_count`].
///
/// # Examples
///
/// ```
/// use regvault_sim::Stats;
///
/// let stats = Stats::default();
/// assert_eq!(stats.cycles, 0);
/// assert_eq!(stats.instret, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Retired instructions by class discriminant.
    class_counts: [u64; InsnClass::ALL.len()],
    /// Executed `cre` instructions.
    pub encrypts: u64,
    /// Executed `crd` instructions.
    pub decrypts: u64,
    /// Integrity-check failures raised by `crd`.
    pub integrity_failures: u64,
    /// Architectural exceptions delivered.
    pub exceptions: u64,
    /// Timer interrupts delivered.
    pub timer_interrupts: u64,
    /// Fetches served by the decoded-instruction cache.
    pub decode_hits: u64,
    /// Fetches that ran the full decoder.
    pub decode_misses: u64,
}

impl Stats {
    /// Records one retired instruction of `class` costing `cycles`.
    #[inline]
    pub fn retire(&mut self, class: InsnClass, cycles: u64) {
        self.cycles += cycles;
        self.instret += 1;
        self.class_counts[class as usize] += 1;
    }

    /// Records `count` retired instructions of `class`, each costing
    /// `cycles` — the batched form the kernel's straight-line charge path
    /// uses.
    #[inline]
    pub fn retire_n(&mut self, class: InsnClass, cycles: u64, count: u64) {
        self.cycles += cycles * count;
        self.instret += count;
        self.class_counts[class as usize] += count;
    }

    /// Count of retired instructions in `class`.
    #[must_use]
    pub fn class_count(&self, class: InsnClass) -> u64 {
        self.class_counts[class as usize]
    }

    /// The raw per-class retirement array (snapshot support).
    pub(crate) fn class_counts(&self) -> [u64; InsnClass::ALL.len()] {
        self.class_counts
    }

    /// Overwrites the per-class retirement array (snapshot restore).
    pub(crate) fn set_class_counts(&mut self, counts: [u64; InsnClass::ALL.len()]) {
        self.class_counts = counts;
    }

    /// Fraction of retired instructions that were RegVault crypto ops.
    #[must_use]
    pub fn crypto_fraction(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.class_count(InsnClass::Crypto) as f64 / self.instret as f64
        }
    }

    /// Decode-cache hit ratio in `[0, 1]`; zero before any fetch.
    #[must_use]
    pub fn decode_hit_ratio(&self) -> f64 {
        let total = self.decode_hits + self.decode_misses;
        if total == 0 {
            0.0
        } else {
            self.decode_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_accumulates() {
        let mut stats = Stats::default();
        stats.retire(InsnClass::Alu, 1);
        stats.retire(InsnClass::Crypto, 3);
        stats.retire(InsnClass::Crypto, 1);
        assert_eq!(stats.cycles, 5);
        assert_eq!(stats.instret, 3);
        assert_eq!(stats.class_count(InsnClass::Crypto), 2);
        assert!((stats.crypto_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn retire_n_matches_a_loop_of_retires() {
        let mut batched = Stats::default();
        batched.retire_n(InsnClass::Load, 2, 5);
        let mut looped = Stats::default();
        for _ in 0..5 {
            looped.retire(InsnClass::Load, 2);
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn empty_stats_have_zero_fraction() {
        assert_eq!(Stats::default().crypto_fraction(), 0.0);
        assert_eq!(Stats::default().decode_hit_ratio(), 0.0);
    }
}
