//! Execution statistics.

use std::collections::BTreeMap;

/// Coarse instruction classification used for cycle accounting and
/// instruction-mix reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum InsnClass {
    Alu,
    Branch,
    Jump,
    Load,
    Store,
    Mul,
    Div,
    Csr,
    Crypto,
    System,
}

/// Counters accumulated while the machine runs.
///
/// # Examples
///
/// ```
/// use regvault_sim::Stats;
///
/// let stats = Stats::default();
/// assert_eq!(stats.cycles, 0);
/// assert_eq!(stats.instret, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Retired instructions by class.
    pub class_counts: BTreeMap<InsnClass, u64>,
    /// Executed `cre` instructions.
    pub encrypts: u64,
    /// Executed `crd` instructions.
    pub decrypts: u64,
    /// Integrity-check failures raised by `crd`.
    pub integrity_failures: u64,
    /// Architectural exceptions delivered.
    pub exceptions: u64,
    /// Timer interrupts delivered.
    pub timer_interrupts: u64,
}

impl Stats {
    /// Records one retired instruction of `class` costing `cycles`.
    pub fn retire(&mut self, class: InsnClass, cycles: u64) {
        self.cycles += cycles;
        self.instret += 1;
        *self.class_counts.entry(class).or_insert(0) += 1;
    }

    /// Count of retired instructions in `class`.
    #[must_use]
    pub fn class_count(&self, class: InsnClass) -> u64 {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// Fraction of retired instructions that were RegVault crypto ops.
    #[must_use]
    pub fn crypto_fraction(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.class_count(InsnClass::Crypto) as f64 / self.instret as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_accumulates() {
        let mut stats = Stats::default();
        stats.retire(InsnClass::Alu, 1);
        stats.retire(InsnClass::Crypto, 3);
        stats.retire(InsnClass::Crypto, 1);
        assert_eq!(stats.cycles, 5);
        assert_eq!(stats.instret, 3);
        assert_eq!(stats.class_count(InsnClass::Crypto), 2);
        assert!((stats.crypto_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fraction() {
        assert_eq!(Stats::default().crypto_fraction(), 0.0);
    }
}
