//! Superblock translation tier: fused threaded-code traces over the decode
//! cache.
//!
//! The direct-mapped decoded-instruction cache ([`crate::icache`]) removes
//! the *decode* cost from the hot path but still pays full per-instruction
//! dispatch: fetch probe, cache probe, watchdog/timer/fault checks, and a
//! large `match` per retired instruction. This module adds a second tier
//! above it. Hot basic-block boundaries (detected by retire counts at
//! non-sequential pc updates) are pre-translated into *superblocks*:
//! threaded-code arrays of monomorphized handlers ([`SbOp`]) with operands
//! pre-extracted (immediates sign-extended, branch targets absolute, byte
//! ranges validated) and common pairs fused (ALU-imm + conditional branch,
//! address-gen + dependent load, `cre` + store of the ciphertext). The
//! machine dispatches a whole superblock with a single bounds/budget check
//! — see `Machine::step_tier` — so the per-instruction cost collapses to
//! one handler match plus the architectural work itself.
//!
//! # Exactness
//!
//! A superblock of `len` architectural instructions executes **iff** the
//! machine can prove, at entry, that no observation point falls inside it:
//! no tracer installed, at least `len` steps of run budget and watchdog
//! budget left, the cycle timer cannot fire within the block's worst-case
//! cycle cost, and no injected fault comes due within `len` retires. Under
//! those conditions block execution is bit-for-bit identical to `len`
//! single steps. The only mid-block events are architectural exceptions
//! (access faults, privilege violations, integrity failures), which the
//! handlers raise exactly like the interpreter, with `pc` rewound to the
//! faulting instruction.
//!
//! # Invalidation
//!
//! Blocks are tagged with their page's write generation, exactly like
//! decode-cache entries: the entry probe drops a block whose page
//! generation moved (lazy invalidation — snapshot restore preserves
//! generations, so restored machines never see stale traces). A store
//! *inside* a block that hits the block's own page (self-modifying code)
//! retires normally and then side-exits, so the stale tail is never
//! executed and the next entry rebuilds from fresh bytes.

use std::sync::Arc;

use regvault_isa::{decode, AluOp, BranchOp, ByteRange, Insn, KeyReg, MemWidth, Reg};

use crate::{
    cost::CostModel,
    error::ExceptionCause,
    exec,
    fxhash::FxHashMap,
    hart::Privilege,
    machine::{Event, Machine},
    mem::Memory,
    stats::InsnClass,
};

/// Retire count at which a block boundary is considered hot enough to
/// translate.
pub(crate) const HOT_THRESHOLD: u32 = 16;
/// Longest trace, in architectural instructions.
const MAX_OPS: usize = 64;
/// Shortest trace worth dispatching; below this the entry probe costs more
/// than the dispatch saves.
const MIN_OPS: usize = 3;
/// Cap on cached blocks; the map is cleared wholesale when it fills.
const MAX_BLOCKS: usize = 4096;
/// Direct-mapped boundary-profile slots (power of two). The profile is a
/// heuristic: collisions simply evict the older boundary's state, which
/// costs at worst a re-warm or a redundant rebuild, never correctness.
const PROFILE_SLOTS: usize = 1 << 12;
/// Profile sentinel for boundaries where translation failed: never retry.
const UNBUILDABLE: u32 = u32::MAX;
/// Profile sentinel for boundaries with a translated block in the cache.
const BUILT: u32 = u32::MAX - 1;

/// One pre-translated handler: operands extracted, immediates sign-extended
/// to `u64`, branch targets absolute, byte ranges validated at build time.
/// `Fused*` variants retire **two** architectural instructions.
#[derive(Debug, Clone)]
pub(crate) enum SbOp {
    /// `lui`/`auipc` collapse to a constant (`auipc`'s pc is static inside
    /// a trace).
    Const { rd: Reg, value: u64 },
    /// 64-bit ALU with immediate.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: u64,
    },
    /// 32-bit ALU with immediate (W-form validity checked at build time).
    OpImmW {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: u64,
    },
    /// 64-bit register-register ALU; `class` pre-resolves Mul/Div costing.
    Op {
        op: AluOp,
        class: InsnClass,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// 32-bit register-register ALU.
    OpW {
        op: AluOp,
        class: InsnClass,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Memory load.
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        rs1: Reg,
        offset: u64,
    },
    /// Memory store; side-exits after retiring if it hits the block's page.
    Store {
        width: MemWidth,
        rs2: Reg,
        rs1: Reg,
        offset: u64,
    },
    /// `wfi`/`fence`: architectural no-ops that retire as ALU.
    Nop,
    /// Register encrypt (`cre`).
    Cre {
        key: KeyReg,
        rd: Reg,
        rs: Reg,
        rt: Reg,
        range: ByteRange,
    },
    /// Register decrypt (`crd`).
    Crd {
        key: KeyReg,
        rd: Reg,
        rs: Reg,
        rt: Reg,
        range: ByteRange,
    },
    /// Conditional branch; always the trace terminator.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        taken: u64,
        fallthrough: u64,
    },
    /// Direct jump-and-link; trace terminator.
    Jal { rd: Reg, link: u64, target: u64 },
    /// Indirect jump-and-link; trace terminator.
    Jalr {
        rd: Reg,
        link: u64,
        rs1: Reg,
        offset: u64,
    },
    /// Fused ALU-imm + conditional branch (`addi s1,s1,1; blt s1,s2,loop`).
    /// The branch operands are re-read after the ALU write, so aliasing
    /// matches two single steps exactly.
    FusedOpImmBranch {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: u64,
        bop: BranchOp,
        brs1: Reg,
        brs2: Reg,
        taken: u64,
        fallthrough: u64,
    },
    /// Fused address-gen + dependent load (`add t0,a0,a1; ld t1,0(t0)`).
    FusedAddLoad {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        width: MemWidth,
        signed: bool,
        lrd: Reg,
        offset: u64,
    },
    /// Fused immediate address-gen + dependent load.
    FusedAddiLoad {
        rd: Reg,
        rs1: Reg,
        imm: u64,
        width: MemWidth,
        signed: bool,
        lrd: Reg,
        offset: u64,
    },
    /// Fused encrypt + store of the ciphertext (`cre a0,...; sd a0,0(s0)`).
    FusedCreStore {
        key: KeyReg,
        rd: Reg,
        rs: Reg,
        rt: Reg,
        range: ByteRange,
        width: MemWidth,
        srs1: Reg,
        offset: u64,
    },
}

/// A translated trace: straight-line code from one entry pc, within one
/// page, ending at the first control transfer or untranslatable
/// instruction.
#[derive(Debug)]
pub(crate) struct Superblock {
    /// First instruction's pc; re-entry always starts here.
    pub(crate) entry_pc: u64,
    /// The single page the trace was decoded from.
    pub(crate) page_no: u64,
    /// Page write generation at build time; a moved generation kills the
    /// block at the next entry probe.
    pub(crate) gen: u64,
    /// Architectural instruction count (fused ops count as two).
    pub(crate) len: u64,
    /// Worst-case cycle cost of the whole trace under the machine's cost
    /// model (branches taken, crypto missing); used for the timer check.
    pub(crate) max_cycles: u64,
    ops: Vec<SbOp>,
}

/// How a superblock run ended.
pub(crate) struct SbExit {
    /// Architectural instructions retired.
    pub(crate) retired: u64,
    /// Equivalent `Machine::step` calls (retired, plus one if an exception
    /// was raised — a faulting step consumes budget without retiring).
    pub(crate) consumed: u64,
    /// The event the final step produced, if any.
    pub(crate) event: Option<Event>,
    /// `true` when the block exited before its natural end (exception or
    /// self-modifying store into the block's own page).
    pub(crate) side_exit: bool,
}

/// Public snapshot of the tier's counters (exposed via
/// `Machine::superblock_stats` and the metrics registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Superblock dispatches (block entries).
    pub hits: u64,
    /// Instructions retired inside superblocks.
    pub insns: u64,
    /// Early exits: mid-block exception or self-modifying store.
    pub side_exits: u64,
    /// Traces translated.
    pub built: u64,
    /// Traces dropped because their page's write generation moved.
    pub invalidations: u64,
    /// Traces currently cached.
    pub cached: usize,
}

/// The per-machine tier state: cached blocks, the boundary profile, and
/// counters. Deliberately *not* part of [`crate::stats::Stats`] or the
/// snapshot format — like the decode cache, it is microarchitectural state
/// that restore simply resets.
#[derive(Debug, Clone)]
pub(crate) struct SuperblockCache {
    blocks: FxHashMap<u64, Arc<Superblock>>,
    /// Direct-mapped: slot `(pc >> 2) & (PROFILE_SLOTS - 1)` holds the pc
    /// tag and its warming count (or a [`BUILT`]/[`UNBUILDABLE`] sentinel).
    /// Every interpreter boundary probes this once — it must stay an array
    /// access, not a hash lookup, or event-heavy guests that never build a
    /// block pay for the tier anyway.
    profile: Vec<ProfileSlot>,
    pub(crate) hits: u64,
    pub(crate) insns: u64,
    pub(crate) side_exits: u64,
    pub(crate) built: u64,
    pub(crate) invalidations: u64,
}

/// One direct-mapped profile slot. The tag `1` is unreachable (pcs are
/// 4-aligned), so fresh slots never match.
#[derive(Debug, Clone, Copy)]
struct ProfileSlot {
    pc: u64,
    count: u32,
}

impl Default for SuperblockCache {
    fn default() -> Self {
        Self {
            blocks: FxHashMap::default(),
            profile: vec![ProfileSlot { pc: 1, count: 0 }; PROFILE_SLOTS],
            hits: 0,
            insns: 0,
            side_exits: 0,
            built: 0,
            invalidations: 0,
        }
    }
}

/// What the entry probe found at a boundary pc.
pub(crate) enum Probe {
    /// Not hot (or known untranslatable): stay on the interpreter.
    Cold,
    /// Crossed the hot threshold: attempt a build now.
    Hot,
    /// A translated block should be in the cache: look it up.
    Built,
}

impl SuperblockCache {
    /// Counter snapshot for metrics/bench export.
    pub(crate) fn stats(&self) -> SuperblockStats {
        SuperblockStats {
            hits: self.hits,
            insns: self.insns,
            side_exits: self.side_exits,
            built: self.built,
            invalidations: self.invalidations,
            cached: self.blocks.len(),
        }
    }

    /// Resets counters but keeps translated blocks (used by
    /// `Machine::reset_stats`, which zeroes measurements without cooling
    /// caches).
    pub(crate) fn reset_counters(&mut self) {
        self.hits = 0;
        self.insns = 0;
        self.side_exits = 0;
        self.built = 0;
        self.invalidations = 0;
    }

    /// The per-boundary entry probe: one direct-mapped array access on the
    /// cold path. Bumps the warming count and reports when `pc` crossed the
    /// hot threshold or already has a translated block.
    pub(crate) fn probe(&mut self, pc: u64) -> Probe {
        let slot = &mut self.profile[(pc >> 2) as usize & (PROFILE_SLOTS - 1)];
        if slot.pc != pc {
            // Collision or first visit: evict the older boundary's state.
            *slot = ProfileSlot { pc, count: 1 };
            return Probe::Cold;
        }
        match slot.count {
            UNBUILDABLE => Probe::Cold,
            BUILT => Probe::Built,
            count => {
                slot.count = count + 1;
                if slot.count >= HOT_THRESHOLD {
                    Probe::Hot
                } else {
                    Probe::Cold
                }
            }
        }
    }

    /// Looks up a still-valid block for `pc`, dropping it if its page's
    /// write generation moved since translation. On a stale hit the slot is
    /// re-armed at the hot threshold, so the very next visit rebuilds from
    /// the current bytes.
    pub(crate) fn lookup(&mut self, pc: u64, mem: &Memory) -> Option<Arc<Superblock>> {
        let Some(block) = self.blocks.get(&pc) else {
            // The blocks map was cleared wholesale (capacity) while the
            // profile still says BUILT: re-warm from the hot threshold.
            self.slot_set(pc, HOT_THRESHOLD);
            return None;
        };
        if mem.page_gen(block.page_no) == Some(block.gen) {
            return Some(Arc::clone(block));
        }
        self.blocks.remove(&pc);
        self.invalidations += 1;
        self.slot_set(pc, HOT_THRESHOLD);
        None
    }

    /// Installs a freshly built block (or records that `pc` can't be
    /// translated, so the build is never retried).
    pub(crate) fn install(
        &mut self,
        pc: u64,
        block: Option<Superblock>,
    ) -> Option<Arc<Superblock>> {
        match block {
            Some(block) => {
                self.slot_set(pc, BUILT);
                if self.blocks.len() >= MAX_BLOCKS {
                    self.blocks.clear();
                }
                let block = Arc::new(block);
                self.blocks.insert(pc, Arc::clone(&block));
                self.built += 1;
                Some(block)
            }
            None => {
                self.slot_set(pc, UNBUILDABLE);
                None
            }
        }
    }

    fn slot_set(&mut self, pc: u64, count: u32) {
        self.profile[(pc >> 2) as usize & (PROFILE_SLOTS - 1)] = ProfileSlot { pc, count };
    }
}

/// `true` for instructions a trace may end with (control transfers).
fn is_terminator(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Branch { .. } | Insn::Jal { .. } | Insn::Jalr { .. }
    )
}

/// Ops `alu32` accepts; the rest have no W form and would raise.
fn has_w_form(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add
            | AluOp::Sub
            | AluOp::Sll
            | AluOp::Srl
            | AluOp::Sra
            | AluOp::Mul
            | AluOp::Div
            | AluOp::Divu
            | AluOp::Rem
            | AluOp::Remu
    )
}

/// `true` if the instruction can live inside a trace. CSR accesses, traps,
/// privilege returns and anything that would raise unconditionally
/// (invalid W-forms, malformed byte ranges) end the trace instead — the
/// interpreter handles them with full fidelity.
fn translatable(insn: &Insn) -> bool {
    match insn {
        Insn::Lui { .. }
        | Insn::Auipc { .. }
        | Insn::Jal { .. }
        | Insn::Jalr { .. }
        | Insn::Branch { .. }
        | Insn::Load { .. }
        | Insn::Store { .. }
        | Insn::OpImm { .. }
        | Insn::Op { .. }
        | Insn::Wfi
        | Insn::Fence => true,
        Insn::OpImmW { op, .. } | Insn::OpW { op, .. } => has_w_form(*op),
        Insn::Cre { hi, lo, .. } | Insn::Crd { hi, lo, .. } => ByteRange::new(*hi, *lo).is_some(),
        Insn::Csr { .. }
        | Insn::CsrImm { .. }
        | Insn::Ecall
        | Insn::Ebreak
        | Insn::Mret
        | Insn::Sret => false,
    }
}

/// Worst-case cycle cost of one instruction under `cost` (branch taken,
/// crypto missing) — summed into `Superblock::max_cycles` for the timer
/// entry check.
fn worst_cycles(insn: &Insn, cost: &CostModel) -> u64 {
    match insn {
        Insn::Op { op, .. } | Insn::OpW { op, .. } => match exec::class_of(*op) {
            InsnClass::Mul => cost.mul,
            InsnClass::Div => cost.div,
            _ => cost.alu,
        },
        Insn::Branch { .. } => cost.branch_taken.max(cost.branch_not_taken),
        Insn::Jal { .. } | Insn::Jalr { .. } => cost.branch_taken,
        Insn::Load { .. } => cost.load,
        Insn::Store { .. } => cost.store,
        Insn::Cre { .. } | Insn::Crd { .. } => cost.crypto_hit.max(cost.crypto_miss),
        _ => cost.alu,
    }
}

/// Tries to fuse `first` (at `pc`) with the following instruction. The
/// `rd != zero` guards keep aliasing semantics identical to two single
/// steps: a discarded x0 write must not feed the second half.
fn try_fuse(first: Insn, second: Option<Insn>, pc: u64) -> Option<SbOp> {
    match (first, second?) {
        (
            Insn::OpImm { op, rd, rs1, imm },
            Insn::Branch {
                op: bop,
                rs1: brs1,
                rs2: brs2,
                offset,
            },
        ) => Some(SbOp::FusedOpImmBranch {
            op,
            rd,
            rs1,
            imm: imm as i64 as u64,
            bop,
            brs1,
            brs2,
            taken: (pc + 4).wrapping_add(offset as i64 as u64),
            fallthrough: pc + 8,
        }),
        (
            Insn::Op {
                op: AluOp::Add,
                rd,
                rs1,
                rs2,
            },
            Insn::Load {
                width,
                signed,
                rd: lrd,
                rs1: lbase,
                offset,
            },
        ) if lbase == rd && rd != Reg::Zero => Some(SbOp::FusedAddLoad {
            rd,
            rs1,
            rs2,
            width,
            signed,
            lrd,
            offset: offset as i64 as u64,
        }),
        (
            Insn::OpImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm,
            },
            Insn::Load {
                width,
                signed,
                rd: lrd,
                rs1: lbase,
                offset,
            },
        ) if lbase == rd && rd != Reg::Zero => Some(SbOp::FusedAddiLoad {
            rd,
            rs1,
            imm: imm as i64 as u64,
            width,
            signed,
            lrd,
            offset: offset as i64 as u64,
        }),
        (
            Insn::Cre {
                key,
                rd,
                rs,
                rt,
                hi,
                lo,
            },
            Insn::Store {
                width,
                rs2,
                rs1: srs1,
                offset,
            },
        ) if rs2 == rd && rd != Reg::Zero => Some(SbOp::FusedCreStore {
            key,
            rd,
            rs,
            rt,
            range: ByteRange::new(hi, lo)?,
            width,
            srs1,
            offset: offset as i64 as u64,
        }),
        _ => None,
    }
}

/// Lowers one instruction to its pre-extracted handler. `None` only for
/// untranslatable instructions, which the scanner already filtered.
fn lower(insn: Insn, pc: u64) -> Option<SbOp> {
    let next = pc + 4;
    Some(match insn {
        Insn::Lui { rd, imm20 } => SbOp::Const {
            rd,
            value: (i64::from(imm20) << 12) as u64,
        },
        Insn::Auipc { rd, imm20 } => SbOp::Const {
            rd,
            value: pc.wrapping_add((i64::from(imm20) << 12) as u64),
        },
        Insn::Jal { rd, offset } => SbOp::Jal {
            rd,
            link: next,
            target: pc.wrapping_add(offset as i64 as u64),
        },
        Insn::Jalr { rd, rs1, offset } => SbOp::Jalr {
            rd,
            link: next,
            rs1,
            offset: offset as i64 as u64,
        },
        Insn::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => SbOp::Branch {
            op,
            rs1,
            rs2,
            taken: pc.wrapping_add(offset as i64 as u64),
            fallthrough: next,
        },
        Insn::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => SbOp::Load {
            width,
            signed,
            rd,
            rs1,
            offset: offset as i64 as u64,
        },
        Insn::Store {
            width,
            rs2,
            rs1,
            offset,
        } => SbOp::Store {
            width,
            rs2,
            rs1,
            offset: offset as i64 as u64,
        },
        Insn::OpImm { op, rd, rs1, imm } => SbOp::OpImm {
            op,
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        Insn::OpImmW { op, rd, rs1, imm } => SbOp::OpImmW {
            op,
            rd,
            rs1,
            imm: imm as i64 as u64,
        },
        Insn::Op { op, rd, rs1, rs2 } => SbOp::Op {
            op,
            class: exec::class_of(op),
            rd,
            rs1,
            rs2,
        },
        Insn::OpW { op, rd, rs1, rs2 } => SbOp::OpW {
            op,
            class: exec::class_of(op),
            rd,
            rs1,
            rs2,
        },
        Insn::Wfi | Insn::Fence => SbOp::Nop,
        Insn::Cre {
            key,
            rd,
            rs,
            rt,
            hi,
            lo,
        } => SbOp::Cre {
            key,
            rd,
            rs,
            rt,
            range: ByteRange::new(hi, lo)?,
        },
        Insn::Crd {
            key,
            rd,
            rs,
            rt,
            hi,
            lo,
        } => SbOp::Crd {
            key,
            rd,
            rs,
            rt,
            range: ByteRange::new(hi, lo)?,
        },
        Insn::Csr { .. }
        | Insn::CsrImm { .. }
        | Insn::Ecall
        | Insn::Ebreak
        | Insn::Mret
        | Insn::Sret => return None,
    })
}

/// Translates the straight-line run starting at `entry_pc` into a
/// superblock. `None` when the trace would be too short to pay for its
/// entry probe (misaligned entry, unmapped page, immediate control
/// transfer, or untranslatable leading instructions).
pub(crate) fn build(mem: &Memory, cost: &CostModel, entry_pc: u64) -> Option<Superblock> {
    if !entry_pc.is_multiple_of(4) {
        return None;
    }
    let page_no = Memory::page_number(entry_pc);
    let (_, gen) = mem.fetch_word(entry_pc).ok()?;

    let mut raw: Vec<Insn> = Vec::new();
    let mut pc = entry_pc;
    while raw.len() < MAX_OPS && Memory::page_number(pc) == page_no {
        let Ok((word, _)) = mem.fetch_word(pc) else {
            break;
        };
        let Ok(insn) = decode::decode(word) else {
            break;
        };
        if !translatable(&insn) {
            break;
        }
        raw.push(insn);
        pc += 4;
        if is_terminator(&insn) {
            break;
        }
    }
    if raw.len() < MIN_OPS {
        return None;
    }

    let mut ops = Vec::with_capacity(raw.len());
    let mut max_cycles = 0u64;
    let mut i = 0;
    while i < raw.len() {
        let insn = raw[i];
        let at = entry_pc + 4 * i as u64;
        if let Some(fused) = try_fuse(insn, raw.get(i + 1).copied(), at) {
            max_cycles += worst_cycles(&insn, cost) + worst_cycles(&raw[i + 1], cost);
            ops.push(fused);
            i += 2;
            continue;
        }
        max_cycles += worst_cycles(&insn, cost);
        ops.push(lower(insn, at)?);
        i += 1;
    }

    Some(Superblock {
        entry_pc,
        page_no,
        gen,
        len: raw.len() as u64,
        max_cycles,
        ops,
    })
}

fn branch_taken(op: BranchOp, a: u64, b: u64) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i64) < (b as i64),
        BranchOp::Ge => (a as i64) >= (b as i64),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

fn width_bytes(width: MemWidth) -> u64 {
    match width {
        MemWidth::Byte => 1,
        MemWidth::Half => 2,
        MemWidth::Word => 4,
        MemWidth::Double => 8,
    }
}

/// `true` if a `width`-byte store at `addr` touches `page_no` (either end;
/// straddling stores are checked conservatively at both).
fn touches(page_no: u64, addr: u64, width: MemWidth) -> bool {
    let last = addr.wrapping_add(width_bytes(width) - 1);
    Memory::page_number(addr) == page_no || Memory::page_number(last) == page_no
}

fn load_value(
    mem: &Memory,
    addr: u64,
    width: MemWidth,
    signed: bool,
) -> Result<u64, ExceptionCause> {
    let raw = match width {
        MemWidth::Byte => mem.read_u8(addr).map(u64::from),
        MemWidth::Half => mem.read_u16(addr).map(u64::from),
        MemWidth::Word => mem.read_u32(addr).map(u64::from),
        MemWidth::Double => mem.read_u64(addr),
    }?;
    Ok(if signed {
        match width {
            MemWidth::Byte => raw as u8 as i8 as i64 as u64,
            MemWidth::Half => raw as u16 as i16 as i64 as u64,
            MemWidth::Word => raw as u32 as i32 as i64 as u64,
            MemWidth::Double => raw,
        }
    } else {
        raw
    })
}

fn store_value(
    mem: &mut Memory,
    addr: u64,
    width: MemWidth,
    value: u64,
) -> Result<(), ExceptionCause> {
    match width {
        MemWidth::Byte => mem.write_u8(addr, value as u8),
        MemWidth::Half => mem.write_u16(addr, value as u16),
        MemWidth::Word => mem.write_u32(addr, value as u32),
        MemWidth::Double => mem.write_u64(addr, value),
    }
}

/// Runs one superblock to completion or side-exit. The caller (the
/// machine's tier dispatch) has already proven no timer, fault, watchdog
/// expiry or step-budget boundary can land inside the block, so the only
/// exits are: the terminator, the end of the trace, an architectural
/// exception, or a self-modifying store. `pc` is written only at exits.
#[allow(clippy::too_many_lines)]
pub(crate) fn execute(m: &mut Machine, block: &Superblock) -> SbExit {
    let entry = block.entry_pc;
    let mut retired: u64 = 0;

    macro_rules! raise_at {
        ($cause:expr, $tval:expr) => {{
            m.hart.set_pc(entry + 4 * retired);
            let event = exec::raise(m, $cause, $tval);
            return SbExit {
                retired,
                consumed: retired + 1,
                event: Some(event),
                side_exit: true,
            };
        }};
    }
    macro_rules! exit_to {
        ($pc:expr) => {{
            m.hart.set_pc($pc);
            return SbExit {
                retired,
                consumed: retired,
                event: None,
                side_exit: false,
            };
        }};
    }
    // Store retired; if it rewrote the block's own page, stop before the
    // (now stale) tail.
    macro_rules! smc_check {
        ($addr:expr, $width:expr) => {{
            if touches(block.page_no, $addr, $width) {
                m.hart.set_pc(entry + 4 * retired);
                return SbExit {
                    retired,
                    consumed: retired,
                    event: None,
                    side_exit: true,
                };
            }
        }};
    }

    for op in &block.ops {
        match *op {
            SbOp::Const { rd, value } => {
                m.hart.set_reg(rd, value);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
            }
            SbOp::OpImm { op, rd, rs1, imm } => {
                let value = exec::alu64(op, m.hart.reg(rs1), imm);
                m.hart.set_reg(rd, value);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
            }
            SbOp::OpImmW { op, rd, rs1, imm } => {
                let Some(value) = exec::alu32(op, m.hart.reg(rs1), imm) else {
                    raise_at!(ExceptionCause::IllegalInstruction, 0);
                };
                m.hart.set_reg(rd, value);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
            }
            SbOp::Op {
                op,
                class,
                rd,
                rs1,
                rs2,
            } => {
                let value = exec::alu64(op, m.hart.reg(rs1), m.hart.reg(rs2));
                m.hart.set_reg(rd, value);
                exec::retire(m, class, false, false);
                retired += 1;
            }
            SbOp::OpW {
                op,
                class,
                rd,
                rs1,
                rs2,
            } => {
                let Some(value) = exec::alu32(op, m.hart.reg(rs1), m.hart.reg(rs2)) else {
                    raise_at!(ExceptionCause::IllegalInstruction, 0);
                };
                m.hart.set_reg(rd, value);
                exec::retire(m, class, false, false);
                retired += 1;
            }
            SbOp::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let addr = m.hart.reg(rs1).wrapping_add(offset);
                match load_value(&m.mem, addr, width, signed) {
                    Ok(value) => {
                        m.hart.set_reg(rd, value);
                        exec::retire(m, InsnClass::Load, false, false);
                        retired += 1;
                    }
                    Err(cause) => raise_at!(cause, addr),
                }
            }
            SbOp::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = m.hart.reg(rs1).wrapping_add(offset);
                let value = m.hart.reg(rs2);
                if let Err(cause) = store_value(&mut m.mem, addr, width, value) {
                    raise_at!(cause, addr);
                }
                exec::retire(m, InsnClass::Store, false, false);
                retired += 1;
                smc_check!(addr, width);
            }
            SbOp::Nop => {
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
            }
            SbOp::Cre {
                key,
                rd,
                rs,
                rt,
                range,
            } => {
                if m.hart.privilege() != Privilege::Kernel {
                    raise_at!(ExceptionCause::IllegalInstruction, 0);
                }
                let tweak = m.hart.reg(rt);
                let value = m.hart.reg(rs);
                let result = m.engine_encrypt(key, tweak, value, range);
                m.hart.set_reg(rd, result.value);
                m.stats.encrypts += 1;
                exec::retire(m, InsnClass::Crypto, false, result.clb_hit);
                retired += 1;
            }
            SbOp::Crd {
                key,
                rd,
                rs,
                rt,
                range,
            } => {
                if m.hart.privilege() != Privilege::Kernel {
                    raise_at!(ExceptionCause::IllegalInstruction, 0);
                }
                let tweak = m.hart.reg(rt);
                let ciphertext = m.hart.reg(rs);
                m.stats.decrypts += 1;
                match m.engine_decrypt(key, tweak, ciphertext, range) {
                    Ok(result) => {
                        m.hart.set_reg(rd, result.value);
                        exec::retire(m, InsnClass::Crypto, false, result.clb_hit);
                        retired += 1;
                    }
                    Err(_) => {
                        m.stats.integrity_failures += 1;
                        raise_at!(ExceptionCause::IntegrityCheckFailure, ciphertext);
                    }
                }
            }
            SbOp::Branch {
                op,
                rs1,
                rs2,
                taken,
                fallthrough,
            } => {
                let t = branch_taken(op, m.hart.reg(rs1), m.hart.reg(rs2));
                exec::retire(m, InsnClass::Branch, t, false);
                retired += 1;
                exit_to!(if t { taken } else { fallthrough });
            }
            SbOp::Jal { rd, link, target } => {
                m.hart.set_reg(rd, link);
                exec::retire(m, InsnClass::Jump, true, false);
                retired += 1;
                exit_to!(target);
            }
            SbOp::Jalr {
                rd,
                link,
                rs1,
                offset,
            } => {
                // Target from rs1 *before* the link write (rd may alias rs1).
                let target = m.hart.reg(rs1).wrapping_add(offset) & !1;
                m.hart.set_reg(rd, link);
                exec::retire(m, InsnClass::Jump, true, false);
                retired += 1;
                exit_to!(target);
            }
            SbOp::FusedOpImmBranch {
                op,
                rd,
                rs1,
                imm,
                bop,
                brs1,
                brs2,
                taken,
                fallthrough,
            } => {
                let value = exec::alu64(op, m.hart.reg(rs1), imm);
                m.hart.set_reg(rd, value);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
                let t = branch_taken(bop, m.hart.reg(brs1), m.hart.reg(brs2));
                exec::retire(m, InsnClass::Branch, t, false);
                retired += 1;
                exit_to!(if t { taken } else { fallthrough });
            }
            SbOp::FusedAddLoad {
                rd,
                rs1,
                rs2,
                width,
                signed,
                lrd,
                offset,
            } => {
                let base = m.hart.reg(rs1).wrapping_add(m.hart.reg(rs2));
                m.hart.set_reg(rd, base);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
                let addr = base.wrapping_add(offset);
                match load_value(&m.mem, addr, width, signed) {
                    Ok(value) => {
                        m.hart.set_reg(lrd, value);
                        exec::retire(m, InsnClass::Load, false, false);
                        retired += 1;
                    }
                    Err(cause) => raise_at!(cause, addr),
                }
            }
            SbOp::FusedAddiLoad {
                rd,
                rs1,
                imm,
                width,
                signed,
                lrd,
                offset,
            } => {
                let base = m.hart.reg(rs1).wrapping_add(imm);
                m.hart.set_reg(rd, base);
                exec::retire(m, InsnClass::Alu, false, false);
                retired += 1;
                let addr = base.wrapping_add(offset);
                match load_value(&m.mem, addr, width, signed) {
                    Ok(value) => {
                        m.hart.set_reg(lrd, value);
                        exec::retire(m, InsnClass::Load, false, false);
                        retired += 1;
                    }
                    Err(cause) => raise_at!(cause, addr),
                }
            }
            SbOp::FusedCreStore {
                key,
                rd,
                rs,
                rt,
                range,
                width,
                srs1,
                offset,
            } => {
                if m.hart.privilege() != Privilege::Kernel {
                    raise_at!(ExceptionCause::IllegalInstruction, 0);
                }
                let tweak = m.hart.reg(rt);
                let value = m.hart.reg(rs);
                let result = m.engine_encrypt(key, tweak, value, range);
                m.hart.set_reg(rd, result.value);
                m.stats.encrypts += 1;
                exec::retire(m, InsnClass::Crypto, false, result.clb_hit);
                retired += 1;
                // Address and value re-read after the cre write, exactly
                // like the interpreter would (srs1 may alias rd).
                let addr = m.hart.reg(srs1).wrapping_add(offset);
                let stored = m.hart.reg(rd);
                if let Err(cause) = store_value(&mut m.mem, addr, width, stored) {
                    raise_at!(cause, addr);
                }
                exec::retire(m, InsnClass::Store, false, false);
                retired += 1;
                smc_check!(addr, width);
            }
        }
    }

    // Ran off the end of the trace (the next instruction wasn't
    // translatable): plain sequential exit.
    m.hart.set_pc(entry + 4 * retired);
    SbExit {
        retired,
        consumed: retired,
        event: None,
        side_exit: false,
    }
}
