//! RegVault machine simulator.
//!
//! This crate is the hardware substrate of the RegVault reproduction: a
//! functional, cycle-accounting simulator for a 64-bit RISC-V core extended
//! with the RegVault primitives of the DAC '22 paper:
//!
//! * the `cre`/`crd` *context-aware cryptographic instructions*, executed by
//!   a QARMA-64 [`CryptoEngine`] (§2.3.2),
//! * eight 128-bit hardware [key registers](KeyRegFile) (master `m` +
//!   general `a`–`g`) with the paper's access rules — user mode sees
//!   nothing, the kernel can only *write* general keys, and nobody reads or
//!   writes the master key (§2.3.1),
//! * the [Cryptographic Lookaside Buffer](Clb): a fully-associative LRU
//!   cache of recent cipher computations, invalidated per key selector on
//!   key updates (§2.3.3).
//!
//! The simulator is *functional + cycle-accounting* rather than RTL-level:
//! every instruction executes architecturally, and a configurable
//! [`CostModel`] charges cycles (QARMA = 3 cycles as measured on the
//! paper's FPGA prototype; CLB hit = 1). The paper's evaluation reports
//! relative overheads, which this model reproduces.
//!
//! The [`Machine::run`] loop returns [`Event`]s (syscalls, traps, timer
//! interrupts) to its embedder; the miniature kernel in `regvault-kernel`
//! plays the role of the privileged software handling those events.
//!
//! # Examples
//!
//! Execute Figure 2a of the paper — encrypt a pointer, store it, load it
//! back, decrypt it:
//!
//! ```
//! use regvault_isa::asm;
//! use regvault_sim::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = asm::assemble(
//!     "li   t1, 0x9000     # tweak: the storage address
//!      li   s0, 0x9000
//!      li   a0, 0xdead     # the 'pointer'
//!      creak a0, a0[7:0], t1
//!      sd   a0, 0(s0)
//!      ld   a1, 0(s0)
//!      crdak a1, a1, t1, [7:0]
//!      ebreak",
//! )?;
//! machine.load_program(0x8000_0000, program.bytes());
//! machine.write_key_register(regvault_isa::KeyReg::A, 0x1234, 0x5678)?;
//! machine.hart_mut().set_pc(0x8000_0000);
//! machine.run_until_break(10_000)?;
//! assert_eq!(machine.hart().reg(regvault_isa::Reg::A1), 0xdead);
//! // The in-memory representation was randomized:
//! assert_ne!(machine.memory().read_u64(0x9000)?, 0xdead);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clb;
mod cost;
mod engine;
mod error;
mod exec;
mod fault;
mod fxhash;
mod hart;
mod icache;
mod lockstep;
mod machine;
mod mem;
mod replay;
mod snapshot;
mod stats;
mod superblock;
pub mod trace;

pub use clb::{Clb, ClbStats};
pub use cost::CostModel;
pub use engine::{CryptoEngine, CryptoResult, IntegrityError, KeyRegFile, Watchdog};
pub use error::{ExceptionCause, SimError};
pub use fault::{AppliedFault, FaultEffect, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use hart::{Hart, Privilege};
pub use lockstep::{
    arch_divergence, run_lockstep, run_tiered_lockstep, Divergence, LockstepOutcome,
};
pub use machine::{Event, Machine, MachineConfig};
pub use mem::Memory;
pub use replay::{shrink_events, EventLog, LoggedEvent, ReproBundle};
pub use snapshot::{Snapshot, SnapshotError, SnapshotKind};
pub use stats::{InsnClass, Stats};
pub use superblock::SuperblockStats;
pub use trace::{NullTracer, RingTracer, TraceEvent, TraceRecord, Tracer, TrapCause};
