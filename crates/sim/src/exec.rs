//! Instruction fetch/decode/execute.

use regvault_isa::{csr, decode, AluOp, BranchOp, ByteRange, CsrOp, Insn, MemWidth, Reg};

use crate::{
    error::ExceptionCause,
    hart::Privilege,
    machine::{Event, Machine},
    stats::InsnClass,
};

/// Executes one instruction. Returns `Some(event)` for control transfers to
/// the embedder; `None` means the instruction retired normally.
pub(crate) fn step(machine: &mut Machine) -> Option<Event> {
    let pc = machine.hart.pc();

    if !pc.is_multiple_of(4) {
        return Some(raise(machine, ExceptionCause::InstructionAccessFault, pc));
    }
    let (word, page_gen) = match machine.mem.fetch_word(pc) {
        Ok(fetched) => fetched,
        Err(_) => return Some(raise(machine, ExceptionCause::InstructionAccessFault, pc)),
    };
    let insn = match machine.icache.get(pc, page_gen) {
        Some(insn) => {
            machine.stats.decode_hits += 1;
            insn
        }
        None => match decode::decode(word) {
            Ok(insn) => {
                machine.stats.decode_misses += 1;
                machine.icache.put(pc, page_gen, insn);
                insn
            }
            Err(_) => {
                return Some(raise(
                    machine,
                    ExceptionCause::IllegalInstruction,
                    u64::from(word),
                ))
            }
        },
    };

    machine.emit_trace(|| crate::trace::TraceEvent::InsnRetire { pc, insn });

    execute(machine, insn, pc)
}

pub(crate) fn raise(machine: &mut Machine, cause: ExceptionCause, tval: u64) -> Event {
    machine.stats.exceptions += 1;
    let trap_cycles = machine.cost.trap;
    machine.stats.cycles += trap_cycles;
    Event::Exception { cause, tval }
}

pub(crate) fn retire(
    machine: &mut Machine,
    class: InsnClass,
    branch_taken: bool,
    crypto_hit: bool,
) {
    let cycles = machine.cost.cycles(class, branch_taken, crypto_hit);
    machine.stats.retire(class, cycles);
}

#[allow(clippy::too_many_lines)]
fn execute(machine: &mut Machine, insn: Insn, pc: u64) -> Option<Event> {
    let next_pc = pc + 4;
    match insn {
        Insn::Lui { rd, imm20 } => {
            machine.hart.set_reg(rd, (i64::from(imm20) << 12) as u64);
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Alu, false, false);
        }
        Insn::Auipc { rd, imm20 } => {
            machine
                .hart
                .set_reg(rd, pc.wrapping_add((i64::from(imm20) << 12) as u64));
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Alu, false, false);
        }
        Insn::Jal { rd, offset } => {
            machine.hart.set_reg(rd, next_pc);
            machine.hart.set_pc(pc.wrapping_add(offset as i64 as u64));
            retire(machine, InsnClass::Jump, true, false);
        }
        Insn::Jalr { rd, rs1, offset } => {
            let target = machine.hart.reg(rs1).wrapping_add(offset as i64 as u64) & !1;
            machine.hart.set_reg(rd, next_pc);
            machine.hart.set_pc(target);
            retire(machine, InsnClass::Jump, true, false);
        }
        Insn::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let a = machine.hart.reg(rs1);
            let b = machine.hart.reg(rs2);
            let taken = match op {
                BranchOp::Eq => a == b,
                BranchOp::Ne => a != b,
                BranchOp::Lt => (a as i64) < (b as i64),
                BranchOp::Ge => (a as i64) >= (b as i64),
                BranchOp::Ltu => a < b,
                BranchOp::Geu => a >= b,
            };
            if taken {
                machine.hart.set_pc(pc.wrapping_add(offset as i64 as u64));
            } else {
                machine.hart.set_pc(next_pc);
            }
            retire(machine, InsnClass::Branch, taken, false);
        }
        Insn::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let addr = machine.hart.reg(rs1).wrapping_add(offset as i64 as u64);
            let raw = match width {
                MemWidth::Byte => machine.mem.read_u8(addr).map(u64::from),
                MemWidth::Half => machine.mem.read_u16(addr).map(u64::from),
                MemWidth::Word => machine.mem.read_u32(addr).map(u64::from),
                MemWidth::Double => machine.mem.read_u64(addr),
            };
            let raw = match raw {
                Ok(v) => v,
                Err(cause) => return Some(raise(machine, cause, addr)),
            };
            let value = if signed {
                match width {
                    MemWidth::Byte => raw as u8 as i8 as i64 as u64,
                    MemWidth::Half => raw as u16 as i16 as i64 as u64,
                    MemWidth::Word => raw as u32 as i32 as i64 as u64,
                    MemWidth::Double => raw,
                }
            } else {
                raw
            };
            machine.hart.set_reg(rd, value);
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Load, false, false);
        }
        Insn::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let addr = machine.hart.reg(rs1).wrapping_add(offset as i64 as u64);
            let value = machine.hart.reg(rs2);
            let result = match width {
                MemWidth::Byte => machine.mem.write_u8(addr, value as u8),
                MemWidth::Half => machine.mem.write_u16(addr, value as u16),
                MemWidth::Word => machine.mem.write_u32(addr, value as u32),
                MemWidth::Double => machine.mem.write_u64(addr, value),
            };
            if let Err(cause) = result {
                return Some(raise(machine, cause, addr));
            }
            machine.emit_trace(|| {
                let stored = match width {
                    MemWidth::Byte => value & 0xFF,
                    MemWidth::Half => value & 0xFFFF,
                    MemWidth::Word => value & 0xFFFF_FFFF,
                    MemWidth::Double => value,
                };
                crate::trace::TraceEvent::MemStore {
                    addr,
                    value: stored,
                }
            });
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Store, false, false);
        }
        Insn::OpImm { op, rd, rs1, imm } => {
            let a = machine.hart.reg(rs1);
            let b = imm as i64 as u64;
            let value = alu64(op, a, b);
            machine.hart.set_reg(rd, value);
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Alu, false, false);
        }
        Insn::OpImmW { op, rd, rs1, imm } => {
            let a = machine.hart.reg(rs1);
            let Some(value) = alu32(op, a, imm as i64 as u64) else {
                // An op with no W form reaching execute is a decode anomaly;
                // report it to the guest rather than aborting the simulator.
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            };
            machine.hart.set_reg(rd, value);
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Alu, false, false);
        }
        Insn::Op { op, rd, rs1, rs2 } => {
            let a = machine.hart.reg(rs1);
            let b = machine.hart.reg(rs2);
            machine.hart.set_reg(rd, alu64(op, a, b));
            machine.hart.set_pc(next_pc);
            retire(machine, class_of(op), false, false);
        }
        Insn::OpW { op, rd, rs1, rs2 } => {
            let a = machine.hart.reg(rs1);
            let b = machine.hart.reg(rs2);
            let Some(value) = alu32(op, a, b) else {
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            };
            machine.hart.set_reg(rd, value);
            machine.hart.set_pc(next_pc);
            retire(machine, class_of(op), false, false);
        }
        Insn::Csr { op, rd, rs1, csr } => {
            let operand = machine.hart.reg(rs1);
            let wants_write =
                !(matches!(op, CsrOp::ReadSet | CsrOp::ReadClear) && rs1 == Reg::Zero);
            return csr_access(machine, op, rd, operand, csr, wants_write, next_pc);
        }
        Insn::CsrImm { op, rd, uimm, csr } => {
            let wants_write = !(matches!(op, CsrOp::ReadSet | CsrOp::ReadClear) && uimm == 0);
            return csr_access(machine, op, rd, u64::from(uimm), csr, wants_write, next_pc);
        }
        Insn::Ecall => {
            let from = machine.hart.privilege();
            machine.stats.cycles += machine.cost.trap;
            machine.stats.instret += 1;
            return Some(Event::Ecall { from });
        }
        Insn::Ebreak => {
            machine.stats.instret += 1;
            return Some(Event::Break);
        }
        Insn::Mret | Insn::Sret => {
            if machine.hart.privilege() != Privilege::Kernel {
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            }
            let sepc = machine.hart.csr(csr::SEPC);
            let spp_user = machine.hart.csr(csr::SSTATUS) & 0x100 == 0;
            machine.hart.set_privilege(if spp_user {
                Privilege::User
            } else {
                Privilege::Kernel
            });
            machine.hart.set_pc(sepc);
            retire(machine, InsnClass::System, true, false);
        }
        Insn::Wfi | Insn::Fence => {
            machine.hart.set_pc(next_pc);
            retire(machine, InsnClass::Alu, false, false);
        }
        Insn::Cre {
            key,
            rd,
            rs,
            rt,
            hi,
            lo,
        } => {
            if machine.hart.privilege() != Privilege::Kernel {
                // Dedicated for kernel data randomization: not executable in
                // user mode (§2.3.1).
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            }
            let Some(range) = ByteRange::new(hi, lo) else {
                // A malformed range reaching execute is a decode anomaly;
                // report it to the guest rather than aborting the simulator.
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            };
            let tweak = machine.hart.reg(rt);
            let value = machine.hart.reg(rs);
            let result = machine.engine_encrypt(key, tweak, value, range);
            machine.hart.set_reg(rd, result.value);
            machine.hart.set_pc(next_pc);
            machine.stats.encrypts += 1;
            retire(machine, InsnClass::Crypto, false, result.clb_hit);
        }
        Insn::Crd {
            key,
            rd,
            rs,
            rt,
            hi,
            lo,
        } => {
            if machine.hart.privilege() != Privilege::Kernel {
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            }
            let Some(range) = ByteRange::new(hi, lo) else {
                return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
            };
            let tweak = machine.hart.reg(rt);
            let ciphertext = machine.hart.reg(rs);
            machine.stats.decrypts += 1;
            match machine.engine_decrypt(key, tweak, ciphertext, range) {
                Ok(result) => {
                    machine.hart.set_reg(rd, result.value);
                    machine.hart.set_pc(next_pc);
                    retire(machine, InsnClass::Crypto, false, result.clb_hit);
                }
                Err(_) => {
                    machine.stats.integrity_failures += 1;
                    return Some(raise(
                        machine,
                        ExceptionCause::IntegrityCheckFailure,
                        ciphertext,
                    ));
                }
            }
        }
    }
    None
}

/// CSR privilege + key-register semantics.
fn csr_access(
    machine: &mut Machine,
    op: CsrOp,
    rd: Reg,
    operand: u64,
    addr: u16,
    wants_write: bool,
    next_pc: u64,
) -> Option<Event> {
    let privilege = machine.hart.privilege();
    let user_readable = matches!(addr, csr::CYCLE | csr::INSTRET);

    if privilege == Privilege::User && (wants_write || !user_readable) {
        return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
    }

    // RegVault key registers: write-only, and the master key not even that.
    if let Some((key, high_half)) = csr::key_for_addr(addr) {
        let reads = rd != Reg::Zero;
        let pure_write = matches!(op, CsrOp::ReadWrite) && !reads;
        if key.is_master() || !pure_write || !wants_write {
            return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
        }
        machine.write_key_half_traced(key, high_half, operand);
        machine.hart.set_pc(next_pc);
        retire(machine, InsnClass::Csr, false, false);
        return None;
    }

    let old = match addr {
        csr::CYCLE => machine.stats.cycles,
        csr::INSTRET => machine.stats.instret,
        _ => machine.hart.csr(addr),
    };
    if wants_write {
        let new = match op {
            CsrOp::ReadWrite => operand,
            CsrOp::ReadSet => old | operand,
            CsrOp::ReadClear => old & !operand,
        };
        if matches!(addr, csr::CYCLE | csr::INSTRET) {
            return Some(raise(machine, ExceptionCause::IllegalInstruction, 0));
        }
        machine.hart.set_csr(addr, new);
    }
    machine.hart.set_reg(rd, old);
    machine.hart.set_pc(next_pc);
    retire(machine, InsnClass::Csr, false, false);
    None
}

pub(crate) fn class_of(op: AluOp) -> InsnClass {
    match op {
        AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => InsnClass::Mul,
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => InsnClass::Div,
        _ => InsnClass::Alu,
    }
}

pub(crate) fn alu64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        AluOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                a
            } else {
                ((a as i64) / (b as i64)) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                0
            } else {
                ((a as i64) % (b as i64)) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// 32-bit ALU; `None` for ops with no W form (a decode anomaly the caller
/// reports as an illegal instruction).
pub(crate) fn alu32(op: AluOp, a: u64, b: u64) -> Option<u64> {
    let a32 = a as u32;
    let b32 = b as u32;
    let result: u32 = match op {
        AluOp::Add => a32.wrapping_add(b32),
        AluOp::Sub => a32.wrapping_sub(b32),
        AluOp::Sll => a32 << (b32 & 31),
        AluOp::Srl => a32 >> (b32 & 31),
        AluOp::Sra => ((a32 as i32) >> (b32 & 31)) as u32,
        AluOp::Mul => a32.wrapping_mul(b32),
        AluOp::Div => {
            if b32 == 0 {
                u32::MAX
            } else if a32 as i32 == i32::MIN && b32 as i32 == -1 {
                a32
            } else {
                ((a32 as i32) / (b32 as i32)) as u32
            }
        }
        AluOp::Divu => a32.checked_div(b32).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b32 == 0 {
                a32
            } else if a32 as i32 == i32::MIN && b32 as i32 == -1 {
                0
            } else {
                ((a32 as i32) % (b32 as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b32 == 0 {
                a32
            } else {
                a32 % b32
            }
        }
        _ => return None,
    };
    Some(result as i32 as i64 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu64_division_edge_cases() {
        assert_eq!(alu64(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu64(AluOp::Rem, 7, 0), 7);
        assert_eq!(
            alu64(AluOp::Div, i64::MIN as u64, -1i64 as u64),
            i64::MIN as u64
        );
        assert_eq!(alu64(AluOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
    }

    #[test]
    fn alu32_results_are_sign_extended() {
        // addw of 0x7FFFFFFF + 1 = 0x80000000 -> sign-extends to negative.
        let value = alu32(AluOp::Add, 0x7FFF_FFFF, 1).unwrap();
        assert_eq!(value, 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn alu32_rejects_ops_without_a_w_form() {
        assert_eq!(alu32(AluOp::And, 1, 1), None);
        assert_eq!(alu32(AluOp::Slt, 1, 2), None);
    }

    #[test]
    fn alu64_comparisons() {
        assert_eq!(alu64(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(alu64(AluOp::Sltu, (-1i64) as u64, 0), 0);
    }
}
