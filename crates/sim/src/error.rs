//! Simulator errors and architectural exception causes.

use std::error::Error;
use std::fmt;

/// An architectural exception cause, as written to `scause` on a trap.
///
/// Values follow the RISC-V privileged specification where one exists; the
/// RegVault integrity-check failure uses cause 24, the first custom slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionCause {
    /// Instruction fetched from an unmapped or misaligned address.
    InstructionAccessFault,
    /// The fetched word did not decode.
    IllegalInstruction,
    /// Breakpoint (`ebreak`).
    Breakpoint,
    /// Misaligned data load.
    LoadAddressMisaligned,
    /// Load from an unmapped address.
    LoadAccessFault,
    /// Misaligned data store.
    StoreAddressMisaligned,
    /// Store to an unmapped address.
    StoreAccessFault,
    /// `ecall` from user mode.
    EcallFromUser,
    /// `ecall` from supervisor (kernel) mode.
    EcallFromKernel,
    /// A `crd` integrity check failed: bytes outside the selected range did
    /// not decrypt to zero (RegVault custom cause).
    IntegrityCheckFailure,
}

impl ExceptionCause {
    /// The numeric cause code written to `scause`.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ExceptionCause::InstructionAccessFault => 1,
            ExceptionCause::IllegalInstruction => 2,
            ExceptionCause::Breakpoint => 3,
            ExceptionCause::LoadAddressMisaligned => 4,
            ExceptionCause::LoadAccessFault => 5,
            ExceptionCause::StoreAddressMisaligned => 6,
            ExceptionCause::StoreAccessFault => 7,
            ExceptionCause::EcallFromUser => 8,
            ExceptionCause::EcallFromKernel => 9,
            ExceptionCause::IntegrityCheckFailure => 24,
        }
    }
}

impl fmt::Display for ExceptionCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ExceptionCause::InstructionAccessFault => "instruction access fault",
            ExceptionCause::IllegalInstruction => "illegal instruction",
            ExceptionCause::Breakpoint => "breakpoint",
            ExceptionCause::LoadAddressMisaligned => "load address misaligned",
            ExceptionCause::LoadAccessFault => "load access fault",
            ExceptionCause::StoreAddressMisaligned => "store address misaligned",
            ExceptionCause::StoreAccessFault => "store access fault",
            ExceptionCause::EcallFromUser => "environment call from user mode",
            ExceptionCause::EcallFromKernel => "environment call from kernel mode",
            ExceptionCause::IntegrityCheckFailure => "regvault integrity check failure",
        };
        f.write_str(text)
    }
}

impl Error for ExceptionCause {}

/// A fatal simulator error (as opposed to an architectural exception, which
/// is delivered to the guest via [`crate::Event::Exception`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The run loop exceeded its step budget without reaching the requested
    /// stopping condition.
    StepLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// An exception occurred while no trap vector was installed.
    UnhandledException {
        /// The cause of the unhandled exception.
        cause: ExceptionCause,
        /// Program counter at the faulting instruction.
        pc: u64,
        /// Faulting address or instruction bits.
        tval: u64,
    },
    /// Software attempted a privileged simulator operation (e.g. writing
    /// the master key register from the embedder API with kernel privilege).
    PrivilegeViolation(String),
    /// The armed watchdog budget was exhausted: the guest ran (or a
    /// kernel-modelled operation charged) more work than the embedder
    /// allowed, indicating a wedged or runaway guest.
    Timeout {
        /// The step budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
            SimError::UnhandledException { cause, pc, tval } => {
                write!(
                    f,
                    "unhandled exception `{cause}` at pc {pc:#x} (tval {tval:#x})"
                )
            }
            SimError::PrivilegeViolation(message) => write!(f, "privilege violation: {message}"),
            SimError::Timeout { budget } => {
                write!(f, "watchdog budget of {budget} steps exhausted")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_are_distinct() {
        let causes = [
            ExceptionCause::InstructionAccessFault,
            ExceptionCause::IllegalInstruction,
            ExceptionCause::Breakpoint,
            ExceptionCause::LoadAddressMisaligned,
            ExceptionCause::LoadAccessFault,
            ExceptionCause::StoreAddressMisaligned,
            ExceptionCause::StoreAccessFault,
            ExceptionCause::EcallFromUser,
            ExceptionCause::EcallFromKernel,
            ExceptionCause::IntegrityCheckFailure,
        ];
        let mut codes: Vec<u64> = causes.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), causes.len());
    }

    #[test]
    fn integrity_failure_uses_custom_slot() {
        assert_eq!(ExceptionCause::IntegrityCheckFailure.code(), 24);
    }

    #[test]
    fn errors_format() {
        let err = SimError::StepLimitExceeded { limit: 7 };
        assert_eq!(err.to_string(), "step limit of 7 instructions exceeded");
        let err = SimError::Timeout { budget: 9 };
        assert_eq!(err.to_string(), "watchdog budget of 9 steps exhausted");
    }
}
