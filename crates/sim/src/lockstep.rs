//! Lockstep differential execution: co-run the optimized datapath against
//! the reference datapath and localize the first divergent instruction.
//!
//! PR 2 replaced the cell-level QARMA implementation with a SWAR core and
//! the linear-scan CLB with a hash-indexed intrusive-LRU one. Both rewrites
//! are *supposed* to be architecturally invisible; this module is the
//! machinery that hunts the case where they are not. [`run_lockstep`]
//! single-steps two machines — one built with
//! `MachineConfig::reference_datapath = true`, one without — through the
//! same program, comparing:
//!
//! * the step outcome (event/error) after **every** instruction (cheap), and
//! * the full [`Machine::arch_digest`] every `interval` instructions
//!   (hashes all of memory — the expensive check).
//!
//! On any mismatch it restores both machines from the snapshots taken at
//! the last agreeing checkpoint and re-executes the window one instruction
//! at a time, digesting after each, which pins the divergence to the exact
//! first instruction whose architectural effects differ. The re-execution
//! is sound because both machines are deterministic from a snapshot — the
//! same property the record/replay layer rests on.

use crate::{
    error::SimError,
    machine::{Event, Machine},
};

/// A localized divergence between the two datapaths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based count of the instruction whose effects first differed
    /// (relative to where lockstep started).
    pub step: u64,
    /// Human-readable description of the first differing state component.
    pub detail: String,
}

/// Result of a lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepOutcome {
    /// Instructions executed (on each machine) before stopping.
    pub steps: u64,
    /// The first divergence, or `None` if the machines agreed throughout.
    pub divergence: Option<Divergence>,
}

impl LockstepOutcome {
    /// `true` when the run completed with the datapaths in agreement.
    #[must_use]
    pub fn agreed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Describes the first architectural difference between two machines, or
/// `None` when their digests should agree. Checked in order: pc, privilege,
/// GPRs, CSRs, key registers, CLB, memory, then counters — so the returned
/// string names the most causally-upstream difference.
#[must_use]
pub fn arch_divergence(fast: &Machine, reference: &Machine) -> Option<String> {
    if fast.hart().pc() != reference.hart().pc() {
        return Some(format!(
            "pc: fast={:#x} reference={:#x}",
            fast.hart().pc(),
            reference.hart().pc()
        ));
    }
    if fast.hart().privilege() != reference.hart().privilege() {
        return Some(format!(
            "privilege: fast={:?} reference={:?}",
            fast.hart().privilege(),
            reference.hart().privilege()
        ));
    }
    let (fr, rr) = (fast.hart().regs(), reference.hart().regs());
    if let Some(i) = (0..32).find(|&i| fr[i] != rr[i]) {
        return Some(format!("x{i}: fast={:#x} reference={:#x}", fr[i], rr[i]));
    }
    {
        let fc: Vec<_> = fast.hart().csr_entries().collect();
        let rc: Vec<_> = reference.hart().csr_entries().collect();
        if fc != rc {
            return Some(format!("csrs: fast={fc:x?} reference={rc:x?}"));
        }
    }
    let fk = fast.engine().key_file().raw_keys();
    let rk = reference.engine().key_file().raw_keys();
    if let Some(i) = (0..8).find(|&i| fk[i] != rk[i]) {
        return Some(format!(
            "key register ksel={i}: fast=({:#x},{:#x}) reference=({:#x},{:#x})",
            fk[i].w0(),
            fk[i].k0(),
            rk[i].w0(),
            rk[i].k0()
        ));
    }
    let fe = fast.engine().clb().entries_lru_to_mru();
    let re = reference.engine().clb().entries_lru_to_mru();
    if fe != re {
        return Some(format!(
            "CLB entries (LRU→MRU): fast={} entries, reference={} entries, first mismatch at {:?} vs {:?}",
            fe.len(),
            re.len(),
            fe.iter().zip(re.iter()).find(|(a, b)| a != b).map(|(a, _)| a),
            fe.iter().zip(re.iter()).find(|(a, b)| a != b).map(|(_, b)| b),
        ));
    }
    if fast.engine().clb().stats() != reference.engine().clb().stats() {
        return Some(format!(
            "CLB stats: fast={:?} reference={:?}",
            fast.engine().clb().stats(),
            reference.engine().clb().stats()
        ));
    }
    {
        let fp = fast.memory().page_entries();
        let rp = reference.memory().page_entries();
        let fpages: Vec<u64> = fp.iter().map(|p| p.0).collect();
        let rpages: Vec<u64> = rp.iter().map(|p| p.0).collect();
        if fpages != rpages {
            return Some(format!(
                "mapped pages: fast={} reference={}",
                fpages.len(),
                rpages.len()
            ));
        }
        for (&(no, _, fd), &(_, _, rd)) in fp.iter().zip(rp.iter()) {
            if let Some(off) = (0..fd.len()).find(|&i| fd[i] != rd[i]) {
                let addr = (no << 12) + off as u64;
                return Some(format!(
                    "memory at {addr:#x}: fast={:#04x} reference={:#04x}",
                    fd[off], rd[off]
                ));
            }
        }
    }
    let (fs, rs) = (fast.stats(), reference.stats());
    for (name, a, b) in [
        ("cycles", fs.cycles, rs.cycles),
        ("instret", fs.instret, rs.instret),
        ("encrypts", fs.encrypts, rs.encrypts),
        ("decrypts", fs.decrypts, rs.decrypts),
        (
            "integrity_failures",
            fs.integrity_failures,
            rs.integrity_failures,
        ),
        ("exceptions", fs.exceptions, rs.exceptions),
        ("timer_interrupts", fs.timer_interrupts, rs.timer_interrupts),
    ] {
        if a != b {
            return Some(format!("{name}: fast={a} reference={b}"));
        }
    }
    None
}

/// Co-runs `fast` and `reference` for up to `max_steps` instructions,
/// comparing step outcomes every instruction and architectural digests
/// every `interval` instructions (clamped to ≥ 1). Stops at the first
/// event either machine reports (breakpoint, exception, syscall — the
/// bare-metal terminal conditions) or when `max_steps` is reached, with a
/// final digest comparison either way.
///
/// On mismatch, both machines are rewound to the last agreeing checkpoint
/// and single-stepped to the exact first divergent instruction; the
/// machines are left in their post-divergence states for inspection.
pub fn run_lockstep(
    fast: &mut Machine,
    reference: &mut Machine,
    max_steps: u64,
    interval: u64,
) -> LockstepOutcome {
    let interval = interval.max(1);
    let mut ckpt_fast = fast.snapshot();
    let mut ckpt_reference = reference.snapshot();
    let mut ckpt_step: u64 = 0;
    let mut step: u64 = 0;

    loop {
        if step >= max_steps {
            if fast.arch_digest() != reference.arch_digest() {
                return bisect(
                    fast,
                    reference,
                    &ckpt_fast,
                    &ckpt_reference,
                    ckpt_step,
                    step,
                );
            }
            return LockstepOutcome {
                steps: step,
                divergence: None,
            };
        }

        let fast_result = fast.step();
        let reference_result = reference.step();
        step += 1;

        let fast_text = format!("{fast_result:?}");
        let reference_text = format!("{reference_result:?}");
        if fast_text != reference_text {
            // The visible outcomes differ at this step; an earlier silent
            // state divergence may have caused it, so bisect the window.
            let mut outcome = bisect(
                fast,
                reference,
                &ckpt_fast,
                &ckpt_reference,
                ckpt_step,
                step,
            );
            if outcome.divergence.is_none() {
                outcome.divergence = Some(Divergence {
                    step,
                    detail: format!("step outcome: fast={fast_text} reference={reference_text}"),
                });
                outcome.steps = step;
            }
            return outcome;
        }

        let terminal = !matches!(fast_result, Ok(None));
        if terminal || step.is_multiple_of(interval) {
            if fast.arch_digest() != reference.arch_digest() {
                return bisect(
                    fast,
                    reference,
                    &ckpt_fast,
                    &ckpt_reference,
                    ckpt_step,
                    step,
                );
            }
            if terminal {
                return LockstepOutcome {
                    steps: step,
                    divergence: None,
                };
            }
            ckpt_fast = fast.snapshot();
            ckpt_reference = reference.snapshot();
            ckpt_step = step;
        }
    }
}

/// Re-executes the window `[ckpt_step, limit]` from the checkpoints one
/// instruction at a time, digesting after each, and returns the exact first
/// divergent step. `fast`/`reference` are left at the divergence point.
fn bisect(
    fast: &mut Machine,
    reference: &mut Machine,
    ckpt_fast: &crate::snapshot::Snapshot,
    ckpt_reference: &crate::snapshot::Snapshot,
    ckpt_step: u64,
    limit: u64,
) -> LockstepOutcome {
    fast.restore(ckpt_fast).expect("checkpoint is full");
    reference
        .restore(ckpt_reference)
        .expect("checkpoint is full");
    let mut step = ckpt_step;
    while step < limit.max(ckpt_step + 1) {
        let fast_result = fast.step();
        let reference_result = reference.step();
        step += 1;
        let fast_text = format!("{fast_result:?}");
        let reference_text = format!("{reference_result:?}");
        if fast_text != reference_text {
            return LockstepOutcome {
                steps: step,
                divergence: Some(Divergence {
                    step,
                    detail: format!("step outcome: fast={fast_text} reference={reference_text}"),
                }),
            };
        }
        if fast.arch_digest() != reference.arch_digest() {
            let detail = arch_divergence(fast, reference)
                .unwrap_or_else(|| "digest mismatch (state diff inconclusive)".into());
            return LockstepOutcome {
                steps: step,
                divergence: Some(Divergence { step, detail }),
            };
        }
        if !matches!(fast_result, Ok(None)) {
            break;
        }
    }
    // The window replayed cleanly — the divergence the caller saw did not
    // reproduce (should be impossible for a deterministic machine; surface
    // it rather than panicking).
    LockstepOutcome {
        steps: step,
        divergence: Some(Divergence {
            step,
            detail: "divergence did not reproduce during bisection".into(),
        }),
    }
}

/// Cheap per-epoch agreement check for [`run_tiered_lockstep`]: pc,
/// privilege, all GPRs, and the architectural counters. Memory, CSRs, keys
/// and CLB state are covered by the full digests at interval boundaries
/// (and almost every realistic tier bug corrupts a register or counter
/// within the same epoch anyway).
fn quick_agree(tiered: &Machine, interp: &Machine) -> bool {
    let (ts, is) = (tiered.stats(), interp.stats());
    tiered.hart().pc() == interp.hart().pc()
        && tiered.hart().privilege() == interp.hart().privilege()
        && tiered.hart().regs() == interp.hart().regs()
        && ts.cycles == is.cycles
        && ts.instret == is.instret
        && ts.encrypts == is.encrypts
        && ts.decrypts == is.decrypts
        && ts.integrity_failures == is.integrity_failures
        && ts.exceptions == is.exceptions
        && ts.timer_interrupts == is.timer_interrupts
}

fn divergence_detail(tiered: &Machine, interp: &Machine) -> String {
    arch_divergence(tiered, interp)
        .unwrap_or_else(|| "digest mismatch (state diff inconclusive)".into())
}

/// Co-runs the superblock tier against the single-step interpreter and
/// localizes the first divergence.
///
/// `tiered` advances one *epoch* at a time via [`Machine::step_tier`] — a
/// whole superblock or one interpreter step — and `interp` (which should
/// have the tier disabled) is driven through the same number of
/// architectural steps. Every intermediate step of a block epoch must be
/// an uneventful `Ok(None)` on the interpreter, every final outcome must
/// match, and after every epoch the cheap architectural state (pc,
/// privilege, GPRs, counters) must agree; full digests (memory, CSRs,
/// keys, CLB) run every `interval` architectural steps and at the end.
/// Stops at the first event either machine reports or at `max_steps`.
///
/// Because blocks execute atomically, a divergence inside one is reported
/// against the block — entry pc, architectural step range, and the first
/// differing state component — while single-step epochs pin the exact
/// instruction, exactly like [`run_lockstep`].
pub fn run_tiered_lockstep(
    tiered: &mut Machine,
    interp: &mut Machine,
    max_steps: u64,
    interval: u64,
) -> LockstepOutcome {
    let interval = interval.max(1);
    let mut step: u64 = 0;
    let mut next_digest = interval;

    loop {
        if step >= max_steps {
            break;
        }
        let entry_pc = tiered.hart().pc();
        let (consumed, outcome): (u64, Result<Option<Event>, SimError>) =
            match tiered.step_tier(max_steps - step) {
                Ok((n, event)) => (n, Ok(event)),
                Err(err) => (1, Err(err)),
            };

        for k in 0..consumed {
            let interp_result = interp.step();
            let last = k + 1 == consumed;
            let expected_text = if last {
                format!("{outcome:?}")
            } else {
                // Interior of a superblock: the machine proved no event
                // can land here, so the interpreter must agree.
                format!("{:?}", Ok::<Option<Event>, SimError>(None))
            };
            let interp_text = format!("{interp_result:?}");
            if interp_text != expected_text {
                let at = step + k + 1;
                let context = if consumed > 1 {
                    format!(
                        " (inside superblock at {entry_pc:#x}, insn {} of {consumed})",
                        k + 1
                    )
                } else {
                    String::new()
                };
                return LockstepOutcome {
                    steps: at,
                    divergence: Some(Divergence {
                        step: at,
                        detail: format!(
                            "step outcome{context}: tiered={expected_text} interp={interp_text}"
                        ),
                    }),
                };
            }
        }
        step += consumed;

        if !quick_agree(tiered, interp) {
            let detail = divergence_detail(tiered, interp);
            let detail = if consumed > 1 {
                format!(
                    "inside superblock at {entry_pc:#x} (arch steps {}..={step}): {detail}",
                    step - consumed + 1
                )
            } else {
                detail
            };
            return LockstepOutcome {
                steps: step,
                divergence: Some(Divergence { step, detail }),
            };
        }

        let terminal = !matches!(outcome, Ok(None));
        if terminal || step >= next_digest {
            if tiered.arch_digest() != interp.arch_digest() {
                return LockstepOutcome {
                    steps: step,
                    divergence: Some(Divergence {
                        step,
                        detail: format!(
                            "within the last {interval} steps: {}",
                            divergence_detail(tiered, interp)
                        ),
                    }),
                };
            }
            if terminal {
                return LockstepOutcome {
                    steps: step,
                    divergence: None,
                };
            }
            next_digest = step + interval;
        }
    }

    if tiered.arch_digest() != interp.arch_digest() {
        return LockstepOutcome {
            steps: step,
            divergence: Some(Divergence {
                step,
                detail: format!(
                    "within the last {interval} steps: {}",
                    divergence_detail(tiered, interp)
                ),
            }),
        };
    }
    LockstepOutcome {
        steps: step,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use regvault_isa::KeyReg;

    fn pair(program: &str) -> (Machine, Machine) {
        let image = regvault_isa::asm::assemble(program).unwrap();
        let build = |reference: bool| {
            let mut machine = Machine::new(MachineConfig {
                reference_datapath: reference,
                ..MachineConfig::default()
            });
            machine.load_program(0x8000_0000, image.bytes());
            machine.write_key_register(KeyReg::A, 0x11, 0x22).unwrap();
            machine.write_key_register(KeyReg::B, 0x33, 0x44).unwrap();
            machine.hart_mut().set_pc(0x8000_0000);
            machine
        };
        (build(false), build(true))
    }

    const CRYPTO_LOOP: &str = "li   t1, 0x9000
         li   s0, 0x9000
         li   s1, 0
         li   s2, 50
loop:    addi a0, s1, 0x100
         creak a0, a0[3:0], t1
         sd   a0, 0(s0)
         ld   a1, 0(s0)
         crdak a1, a1, t1, [3:0]
         addi s1, s1, 1
         addi t1, t1, 8
         addi s0, s0, 8
         bne  s1, s2, loop
         ebreak";

    /// Tiered pair: same program, same keys; `tiered` runs the superblock
    /// tier, `interp` is forced to pure single-stepping.
    fn tiered_pair(program: &str) -> (Machine, Machine) {
        let image = regvault_isa::asm::assemble(program).unwrap();
        let build = |superblocks: bool| {
            let mut machine = Machine::new(MachineConfig {
                superblock_tier: superblocks,
                ..MachineConfig::default()
            });
            machine.load_program(0x8000_0000, image.bytes());
            machine.write_key_register(KeyReg::A, 0x11, 0x22).unwrap();
            machine.write_key_register(KeyReg::B, 0x33, 0x44).unwrap();
            machine.hart_mut().set_pc(0x8000_0000);
            machine
        };
        (build(true), build(false))
    }

    #[test]
    fn tiered_agrees_with_interpreter_on_crypto_loop() {
        let (mut tiered, mut interp) = tiered_pair(CRYPTO_LOOP);
        let outcome = run_tiered_lockstep(&mut tiered, &mut interp, 20_000, 64);
        assert!(outcome.agreed(), "divergence: {:?}", outcome.divergence);
        assert!(outcome.steps > 100);
        let sb = tiered.superblock_stats();
        assert!(sb.hits > 0, "the tier never engaged: {sb:?}");
        assert!(sb.insns > sb.hits, "blocks should retire multiple insns");
    }

    #[test]
    fn tiered_divergence_is_localized() {
        // A fault only the tiered machine receives corrupts data memory at
        // instret 200. The fault precheck forces single-stepping around the
        // due point, so with interval=1 the harness pins the exact step.
        let (mut tiered, mut interp) = tiered_pair(CRYPTO_LOOP);
        tiered.set_fault_plan(crate::fault::FaultPlan::new().at(
            200,
            crate::fault::FaultKind::MemWrite {
                addr: 0x9000,
                value: 0x5555_5555,
            },
        ));
        let outcome = run_tiered_lockstep(&mut tiered, &mut interp, 10_000, 1);
        let divergence = outcome.divergence.expect("must diverge");
        // The key-register setup already retired 4 instructions, so the
        // fault (instret 200) lands a few lockstep steps before 200.
        assert!(
            (190..=260).contains(&divergence.step),
            "fault at instret 200 should surface shortly after: {divergence:?}"
        );
        assert!(
            divergence.detail.contains("memory at") || divergence.detail.contains("0x9000"),
            "detail should blame memory: {}",
            divergence.detail
        );
    }

    #[test]
    fn tiered_watchdog_lands_on_the_same_step() {
        let (mut tiered, mut interp) = tiered_pair(CRYPTO_LOOP);
        tiered.arm_watchdog(137);
        interp.arm_watchdog(137);
        let outcome = run_tiered_lockstep(&mut tiered, &mut interp, 10_000, 64);
        // Both must report Timeout on exactly the same architectural step;
        // any off-by-one in the block budget precheck shows up as a step
        // outcome mismatch instead.
        assert!(outcome.agreed(), "divergence: {:?}", outcome.divergence);
    }

    #[test]
    fn identical_datapaths_agree() {
        let (mut fast, mut reference) = pair(CRYPTO_LOOP);
        let outcome = run_lockstep(&mut fast, &mut reference, 10_000, 64);
        assert!(outcome.agreed(), "divergence: {:?}", outcome.divergence);
        assert!(outcome.steps > 100);
    }

    #[test]
    fn seeded_key_divergence_is_localized_exactly() {
        // Ground truth: run a second pair manually and find the first step
        // where the tampered fast machine's digest separates.
        let (mut truth_fast, mut truth_reference) = pair(CRYPTO_LOOP);
        truth_fast
            .engine_mut()
            .key_file_mut()
            .tamper(KeyReg::B.ksel(), 0x4, 0);
        let mut expected_step = None;
        for step in 1..10_000u64 {
            let a = truth_fast.step();
            let _ = truth_reference.step();
            if truth_fast.arch_digest() != truth_reference.arch_digest() {
                expected_step = Some(step);
                break;
            }
            if !matches!(a, Ok(None)) {
                break;
            }
        }
        // Key B is never used by the program, so tampering it diverges at
        // the very first digest (the key register itself differs) — which
        // the bisector must report as step 1's state.
        let expected_step = expected_step.expect("tamper must diverge");

        let (mut fast, mut reference) = pair(CRYPTO_LOOP);
        fast.engine_mut()
            .key_file_mut()
            .tamper(KeyReg::B.ksel(), 0x4, 0);
        let outcome = run_lockstep(&mut fast, &mut reference, 10_000, 64);
        let divergence = outcome.divergence.expect("must diverge");
        assert_eq!(divergence.step, expected_step);
        assert!(
            divergence.detail.contains("key register"),
            "detail should blame the key register: {}",
            divergence.detail
        );
    }

    #[test]
    fn mid_run_data_divergence_is_localized_exactly() {
        // Corrupt the fast machine's data memory mid-run via a scheduled
        // fault that only it receives: the lockstep executor must localize
        // the divergence to the exact step where the fault fired.
        let (mut truth_fast, mut truth_reference) = pair(CRYPTO_LOOP);
        let plan = crate::fault::FaultPlan::new().at(
            200,
            crate::fault::FaultKind::MemWrite {
                addr: 0x9000,
                value: 0x5555_5555,
            },
        );
        truth_fast.set_fault_plan(plan.clone());
        let mut expected_step = None;
        for step in 1..10_000u64 {
            let a = truth_fast.step();
            let _ = truth_reference.step();
            if truth_fast.arch_digest() != truth_reference.arch_digest() {
                expected_step = Some(step);
                break;
            }
            if !matches!(a, Ok(None)) {
                break;
            }
        }
        let expected_step = expected_step.expect("fault must diverge");

        let (mut fast, mut reference) = pair(CRYPTO_LOOP);
        fast.set_fault_plan(plan);
        let outcome = run_lockstep(&mut fast, &mut reference, 10_000, 64);
        let divergence = outcome.divergence.expect("must diverge");
        assert_eq!(divergence.step, expected_step);
        assert!(
            divergence.detail.contains("memory at") || divergence.detail.contains("0x9000"),
            "detail should blame memory: {}",
            divergence.detail
        );
    }
}
