//! Optional execution tracing.
//!
//! A bounded ring buffer of the most recently executed instructions, for
//! debugging guest programs and inspecting what the instrumentation
//! actually executes. Disabled by default (zero overhead beyond a branch).

use regvault_isa::Insn;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
    /// Cycle count *before* the instruction executed.
    pub cycle: u64,
}

impl TraceEntry {
    /// Renders like `cycle 001234  0x80000010: creak a0, a0[7:0], t1`.
    #[must_use]
    pub fn render(&self) -> String {
        format!("cycle {:06}  {:#010x}: {}", self.cycle, self.pc, self.insn)
    }
}

/// Fixed-capacity ring buffer of executed instructions.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    entries: Vec<TraceEntry>,
    capacity: usize,
    next: usize,
    wrapped: bool,
}

impl TraceBuffer {
    /// Creates a buffer holding the last `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            wrapped: false,
        }
    }

    /// Records one executed instruction.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.next] = entry;
            self.wrapped = true;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// The recorded entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<&TraceEntry> {
        if self.wrapped {
            self.entries[self.next..]
                .iter()
                .chain(self.entries[..self.next].iter())
                .collect()
        } else {
            self.entries.iter().collect()
        }
    }

    /// Number of entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::{AluOp, Reg};

    fn entry(pc: u64) -> TraceEntry {
        TraceEntry {
            pc,
            insn: Insn::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1,
            },
            cycle: pc,
        }
    }

    #[test]
    fn keeps_the_last_n_in_order() {
        let mut buffer = TraceBuffer::new(3);
        for pc in 0..5 {
            buffer.record(entry(pc * 4));
        }
        let pcs: Vec<u64> = buffer.entries().iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![8, 12, 16]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut buffer = TraceBuffer::new(10);
        buffer.record(entry(0));
        buffer.record(entry(4));
        assert_eq!(buffer.len(), 2);
        let pcs: Vec<u64> = buffer.entries().iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 4]);
    }

    #[test]
    fn render_is_informative() {
        let text = entry(0x8000_0000).render();
        assert!(text.contains("0x80000000"));
        assert!(text.contains("addi a0, a0, 1"));
    }
}
