//! Structured execution tracing.
//!
//! Every interesting hardware event — instruction retirement, CLB traffic,
//! QARMA computations, CIP chain saves/restores, trap entry/exit, fault
//! injection, context switches — can be captured as a typed [`TraceEvent`],
//! stamped with the cycle/instret clock, and delivered to a [`Tracer`]
//! sink installed on the machine.
//!
//! Tracing is off by default and *zero-cost when off*: the machine stores
//! `Option<Box<dyn Tracer>>`, every emission site first checks the option,
//! and the event value is only constructed inside the taken branch — the
//! off path is a single predictable-not-taken branch per site (the hotpath
//! bench's tracing guard measures and enforces this; see DESIGN.md §11).
//!
//! Two sinks ship with the simulator:
//!
//! * [`RingTracer`] — a bounded ring buffer of the most recent records,
//!   the default behind [`crate::Machine::enable_trace`];
//! * [`NullTracer`] — discards everything; used by the bench harness to
//!   price the emission hooks themselves.
//!
//! Embedders can implement [`Tracer`] for their own sinks (the CLI's
//! per-function profiler does exactly that) and install them with
//! [`crate::Machine::install_tracer`].

use std::any::Any;

use regvault_isa::Insn;

use crate::error::ExceptionCause;
use crate::fault::{FaultEffect, FaultKind};

/// Why control entered (or left) the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// A syscall (`ecall`) with this number.
    Syscall(u64),
    /// The cycle timer fired.
    Timer,
    /// An architectural exception.
    Exception(ExceptionCause),
}

impl TrapCause {
    /// Short label for rendering and export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrapCause::Syscall(_) => "syscall",
            TrapCause::Timer => "timer",
            TrapCause::Exception(_) => "exception",
        }
    }
}

/// One structured machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction retired (fetched, decoded and executed).
    InsnRetire {
        /// Program counter of the instruction.
        pc: u64,
        /// The decoded instruction.
        insn: Insn,
    },
    /// A CLB lookup was served from the buffer.
    ClbHit {
        /// Key selector of the lookup.
        ksel: u8,
        /// `true` for the decrypt direction.
        decrypt: bool,
    },
    /// A CLB lookup missed (a QARMA computation follows).
    ClbMiss {
        /// Key selector of the lookup.
        ksel: u8,
        /// `true` for the decrypt direction.
        decrypt: bool,
    },
    /// Inserting the missed computation evicted the LRU entry.
    ClbEvict {
        /// Key selector of the *inserted* entry.
        ksel: u8,
    },
    /// A key-register write invalidated the entries of one selector.
    ClbInvalidate {
        /// The invalidated key selector.
        ksel: u8,
    },
    /// The QARMA core ran one block computation (a CLB miss or a machine
    /// with the buffer disabled).
    QarmaOp {
        /// Key selector used.
        ksel: u8,
        /// The tweak value (an address or a chain predecessor).
        tweak: u64,
        /// `true` for the decrypt direction.
        decrypt: bool,
    },
    /// The kernel began chain-encrypting an interrupt context (CIP save).
    CipOpen {
        /// Interrupt-frame base address.
        frame: u64,
    },
    /// The kernel finished chain-decrypting an interrupt context (CIP
    /// restore, integrity check passed).
    CipClose {
        /// Interrupt-frame base address.
        frame: u64,
    },
    /// Control entered the kernel.
    TrapEnter {
        /// Why.
        cause: TrapCause,
    },
    /// Control is returning to the interrupted context.
    TrapExit {
        /// The cause being completed.
        cause: TrapCause,
    },
    /// A fault-injection primitive fired.
    Fault {
        /// What was injected.
        kind: FaultKind,
        /// What the injection achieved.
        effect: FaultEffect,
    },
    /// The scheduler switched threads.
    ContextSwitch {
        /// Outgoing thread id.
        from: u32,
        /// Incoming thread id.
        to: u32,
    },
    /// A value was stored to memory (guest store or kernel-modelled store).
    ///
    /// This is the memory-bus observation point of the ciphertext
    /// side-channel oracle: an attacker with physical/DMA access sees
    /// exactly these (address, raw word) pairs, ciphertext included.
    MemStore {
        /// Store target address.
        addr: u64,
        /// The raw stored value (truncated to the store width).
        value: u64,
    },
}

impl TraceEvent {
    /// Short event-kind label (stable; used by exporters as the event name).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::InsnRetire { .. } => "insn",
            TraceEvent::ClbHit { .. } => "clb_hit",
            TraceEvent::ClbMiss { .. } => "clb_miss",
            TraceEvent::ClbEvict { .. } => "clb_evict",
            TraceEvent::ClbInvalidate { .. } => "clb_invalidate",
            TraceEvent::QarmaOp { .. } => "qarma",
            TraceEvent::CipOpen { .. } => "cip_open",
            TraceEvent::CipClose { .. } => "cip_close",
            TraceEvent::TrapEnter { .. } => "trap_enter",
            TraceEvent::TrapExit { .. } => "trap_exit",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::ContextSwitch { .. } => "context_switch",
            TraceEvent::MemStore { .. } => "mem_store",
        }
    }
}

/// A [`TraceEvent`] stamped with the machine clock at emission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated cycles at emission.
    pub cycle: u64,
    /// Retired instructions at emission.
    pub instret: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders like `cycle 001234  insn 0x80000010: addi a0, a0, 1`.
    #[must_use]
    pub fn render(&self) -> String {
        let detail = match &self.event {
            TraceEvent::InsnRetire { pc, insn } => format!("{pc:#010x}: {insn}"),
            TraceEvent::ClbHit { ksel, decrypt } | TraceEvent::ClbMiss { ksel, decrypt } => {
                format!("ksel={ksel} dir={}", if *decrypt { "crd" } else { "cre" })
            }
            TraceEvent::ClbEvict { ksel } | TraceEvent::ClbInvalidate { ksel } => {
                format!("ksel={ksel}")
            }
            TraceEvent::QarmaOp {
                ksel,
                tweak,
                decrypt,
            } => format!(
                "ksel={ksel} tweak={tweak:#x} dir={}",
                if *decrypt { "crd" } else { "cre" }
            ),
            TraceEvent::CipOpen { frame } | TraceEvent::CipClose { frame } => {
                format!("frame={frame:#x}")
            }
            TraceEvent::TrapEnter { cause } | TraceEvent::TrapExit { cause } => {
                format!("{cause:?}")
            }
            TraceEvent::Fault { kind, effect } => format!("{kind:?} -> {effect:?}"),
            TraceEvent::ContextSwitch { from, to } => format!("{from} -> {to}"),
            TraceEvent::MemStore { addr, value } => {
                format!("addr={addr:#x} value={value:#x}")
            }
        };
        format!(
            "cycle {:06}  {:<14} {detail}",
            self.cycle,
            self.event.kind()
        )
    }
}

/// A sink for stamped trace events.
///
/// The machine owns its tracer as `Box<dyn Tracer>`; implementations must
/// therefore be clonable through [`Tracer::boxed_clone`] (the machine
/// itself is `Clone`) and downcastable through [`Tracer::into_any`] so
/// embedders can recover their concrete sink after a run. Sinks must also
/// be `Send`: forked machines move across worker threads in the fleet, so
/// `Machine: Send` is asserted at compile time and the tracer is the only
/// type-erased field that could break it.
pub trait Tracer: std::fmt::Debug + Send {
    /// Consumes one stamped event.
    fn emit(&mut self, record: TraceRecord);

    /// Clones the sink behind the box.
    fn boxed_clone(&self) -> Box<dyn Tracer>;

    /// Borrows the sink as [`Any`] for in-place downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Converts the boxed sink into [`Any`] for downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl Clone for Box<dyn Tracer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Discards every event. Exists so the emission hooks themselves can be
/// priced: a run with a `NullTracer` installed pays the full hook cost
/// (branch + record construction + virtual call) with no sink work, which
/// upper-bounds the cost of the not-taken branch when tracing is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn emit(&mut self, _record: TraceRecord) {}

    fn boxed_clone(&self) -> Box<dyn Tracer> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fixed-capacity ring buffer of the most recent trace records.
#[derive(Debug, Clone)]
pub struct RingTracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    next: usize,
    wrapped: bool,
    emitted: u64,
}

impl RingTracer {
    /// Creates a buffer holding the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            records: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            wrapped: false,
            emitted: 0,
        }
    }

    /// The retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<&TraceRecord> {
        if self.wrapped {
            self.records[self.next..]
                .iter()
                .chain(self.records[..self.next].iter())
                .collect()
        } else {
            self.records.iter().collect()
        }
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total events emitted into this tracer (including overwritten ones).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// `true` when old records have been overwritten.
    #[must_use]
    pub fn dropped_any(&self) -> bool {
        self.wrapped
    }
}

impl Tracer for RingTracer {
    fn emit(&mut self, record: TraceRecord) {
        self.emitted += 1;
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
            self.wrapped = true;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    fn boxed_clone(&self) -> Box<dyn Tracer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::{AluOp, Reg};

    fn record(pc: u64) -> TraceRecord {
        TraceRecord {
            cycle: pc,
            instret: pc / 4,
            event: TraceEvent::InsnRetire {
                pc,
                insn: Insn::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 1,
                },
            },
        }
    }

    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let mut ring = RingTracer::new(3);
        for pc in 0..5 {
            ring.emit(record(pc * 4));
        }
        let cycles: Vec<u64> = ring.records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![8, 12, 16]);
        assert_eq!(ring.emitted(), 5);
        assert!(ring.dropped_any());
    }

    #[test]
    fn ring_under_capacity_keeps_everything() {
        let mut ring = RingTracer::new(10);
        ring.emit(record(0));
        ring.emit(record(4));
        assert_eq!(ring.len(), 2);
        assert!(!ring.dropped_any());
        let cycles: Vec<u64> = ring.records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![0, 4]);
    }

    #[test]
    fn render_is_informative() {
        let text = record(0x8000_0000).render();
        assert!(text.contains("0x80000000"), "{text}");
        assert!(text.contains("addi a0, a0, 1"), "{text}");

        let qarma = TraceRecord {
            cycle: 7,
            instret: 3,
            event: TraceEvent::QarmaOp {
                ksel: 2,
                tweak: 0x9000,
                decrypt: true,
            },
        };
        let text = qarma.render();
        assert!(text.contains("qarma"), "{text}");
        assert!(text.contains("ksel=2"), "{text}");
        assert!(text.contains("0x9000"), "{text}");
    }

    #[test]
    fn boxed_tracers_clone_and_downcast() {
        let mut boxed: Box<dyn Tracer> = Box::new(RingTracer::new(4));
        boxed.emit(record(0));
        let cloned = boxed.clone();
        let ring = cloned
            .into_any()
            .downcast::<RingTracer>()
            .expect("concrete type survives the box");
        assert_eq!(ring.len(), 1);

        let null: Box<dyn Tracer> = Box::new(NullTracer);
        assert!(null.into_any().downcast::<NullTracer>().is_ok());
    }

    #[test]
    fn event_kinds_are_stable_labels() {
        let e = TraceEvent::ClbHit {
            ksel: 1,
            decrypt: false,
        };
        assert_eq!(e.kind(), "clb_hit");
        assert_eq!(TrapCause::Syscall(3).label(), "syscall");
        assert_eq!(TrapCause::Timer.label(), "timer");
    }
}
