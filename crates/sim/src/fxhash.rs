//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The standard library's default SipHash is DoS-resistant but costs tens of
//! cycles per key — far too slow for structures the simulator consults every
//! emulated cycle (the sparse-memory page map, the CLB index). This module
//! provides the FxHash multiply-rotate mix (the hasher rustc itself uses for
//! interned keys): a couple of cycles per word, perfectly adequate for keys
//! the guest cannot choose adversarially against the *host*.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (same constant as `rustc-hash`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one 64-bit accumulator mixed per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline(always)]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline(always)]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline(always)]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_keys_rarely_collide() {
        let build = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..4096 {
            seen.insert(build.hash_one((7u8, i, i.wrapping_mul(0x9E37_79B9))));
        }
        // A 64-bit hash over 4096 structured keys should be collision-free.
        assert_eq!(seen.len(), 4096);
    }

    #[test]
    fn byte_stream_matches_itself_across_chunking() {
        // `write` must be deterministic for a given byte string regardless of
        // how the caller composed it.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
