//! The hart (hardware thread): register file, program counter, privilege,
//! and control/status registers.

use std::collections::BTreeMap;

use regvault_isa::Reg;

/// Processor privilege level.
///
/// The simulator models the two levels that matter for RegVault: user code
/// and the kernel (the paper's prototype runs Linux in RISC-V S-mode; we
/// fold S and M into a single kernel level because no hypervisor is
/// involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Unprivileged user code: no CSR access, no `cre`/`crd`.
    User,
    /// Kernel (supervisor) code.
    Kernel,
}

/// Architectural state of one hardware thread.
///
/// # Examples
///
/// ```
/// use regvault_isa::Reg;
/// use regvault_sim::{Hart, Privilege};
///
/// let mut hart = Hart::new();
/// hart.set_reg(Reg::A0, 42);
/// assert_eq!(hart.reg(Reg::A0), 42);
/// hart.set_reg(Reg::Zero, 7);
/// assert_eq!(hart.reg(Reg::Zero), 0, "x0 is hardwired");
/// assert_eq!(hart.privilege(), Privilege::Kernel, "boots in kernel mode");
/// ```
#[derive(Debug, Clone)]
pub struct Hart {
    regs: [u64; 32],
    pc: u64,
    privilege: Privilege,
    csrs: BTreeMap<u16, u64>,
}

impl Default for Hart {
    fn default() -> Self {
        Self::new()
    }
}

impl Hart {
    /// Creates a hart at reset: registers zero, kernel privilege.
    #[must_use]
    pub fn new() -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            privilege: Privilege::Kernel,
            csrs: BTreeMap::new(),
        }
    }

    /// Reads a general-purpose register (`x0` always reads zero).
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index() as usize]
    }

    /// Writes a general-purpose register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if reg != Reg::Zero {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Snapshot of all 32 registers (index 0 is `x0`).
    #[must_use]
    pub fn regs(&self) -> [u64; 32] {
        self.regs
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Current privilege level.
    #[must_use]
    pub fn privilege(&self) -> Privilege {
        self.privilege
    }

    /// Changes the privilege level (trap entry / return).
    pub fn set_privilege(&mut self, privilege: Privilege) {
        self.privilege = privilege;
    }

    /// Raw CSR read (no privilege checks — those live in the machine).
    #[must_use]
    pub fn csr(&self, addr: u16) -> u64 {
        self.csrs.get(&addr).copied().unwrap_or(0)
    }

    /// Raw CSR write (no privilege checks).
    pub fn set_csr(&mut self, addr: u16, value: u64) {
        self.csrs.insert(addr, value);
    }

    /// Every explicitly-written CSR, in address order (snapshot support;
    /// CSRs that were never written read as zero and are not listed).
    pub(crate) fn csr_entries(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.csrs.iter().map(|(&addr, &value)| (addr, value))
    }

    /// Replaces the whole architectural state (snapshot restore).
    pub(crate) fn restore(
        &mut self,
        regs: [u64; 32],
        pc: u64,
        privilege: Privilege,
        csrs: &[(u16, u64)],
    ) {
        self.regs = regs;
        self.regs[0] = 0;
        self.pc = pc;
        self.privilege = privilege;
        self.csrs = csrs.iter().copied().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_to_zero() {
        let mut hart = Hart::new();
        hart.set_reg(Reg::Zero, u64::MAX);
        assert_eq!(hart.reg(Reg::Zero), 0);
    }

    #[test]
    fn csrs_default_to_zero() {
        let hart = Hart::new();
        assert_eq!(hart.csr(regvault_isa::csr::SEPC), 0);
    }

    #[test]
    fn csr_round_trips() {
        let mut hart = Hart::new();
        hart.set_csr(regvault_isa::csr::STVEC, 0x8000_0000);
        assert_eq!(hart.csr(regvault_isa::csr::STVEC), 0x8000_0000);
    }
}
