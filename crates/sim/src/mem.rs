//! Sparse, page-granular physical memory with copy-on-write page sharing.

use std::sync::Arc;

use crate::fxhash::FxHashMap;
use crate::ExceptionCause;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// The raw contents of one 4 KiB page.
pub(crate) type PageData = [u8; PAGE_SIZE as usize];

/// One 4 KiB page plus its write generation.
///
/// The contents live behind an [`Arc`] so snapshots and forked machines
/// share physical pages until someone writes: every store goes through
/// [`Arc::make_mut`], which copies the page only when it is actually
/// shared (copy-on-first-write). The write generation stays *outside* the
/// `Arc` — it is per-machine microarchitectural state, and two forks that
/// share a page's bytes still advance their generations independently.
#[derive(Debug, Clone)]
struct Page {
    /// Bumped on every store into the page. The decoded-instruction cache
    /// tags entries with the generation it decoded under, so a store to a
    /// code page lazily invalidates every cached decode for that page.
    gen: u64,
    data: Arc<PageData>,
}

impl Page {
    fn zeroed() -> Self {
        Self {
            gen: 0,
            data: Arc::new([0u8; PAGE_SIZE as usize]),
        }
    }
}

/// Sparse byte-addressable memory backed by 4 KiB pages allocated on first
/// touch.
///
/// Reads of never-written pages fault (modelling unmapped physical memory),
/// except within pages that were created by a partial write, which read as
/// zero — the same behaviour as zero-initialised RAM.
///
/// The page table is a hash map under the simulator's FxHash (the page walk
/// runs at least once per emulated instruction), and multi-byte accesses
/// that stay within one page — the overwhelmingly common case — are served
/// with a single probe and a slice copy instead of a byte loop.
///
/// Page contents are reference-counted ([`Arc`]): cloning a `Memory`,
/// capturing a snapshot, or forking a machine from one shares every page
/// and copies nothing. The first store into a shared page copies that one
/// page (copy-on-write), so a fleet of forked instances pays only for the
/// pages it actually dirties.
///
/// # Examples
///
/// ```
/// use regvault_sim::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x8000_0000, 0xdead_beef).unwrap();
/// assert_eq!(mem.read_u64(0x8000_0000).unwrap(), 0xdead_beef);
/// assert!(mem.read_u64(0x4000_0000).is_err()); // untouched page
///
/// let fork = mem.clone();
/// assert_eq!(mem.shared_pages_with(&fork), 1); // CoW: bytes are shared
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: FxHashMap<u64, Page>,
}

impl Memory {
    /// Creates an empty memory with no mapped pages.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently mapped 4 KiB pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// `true` if the page containing `addr` has been touched.
    #[must_use]
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr >> PAGE_SHIFT))
    }

    /// Number of mapped pages whose contents are physically shared (same
    /// reference-counted allocation) with a page in `other` — the
    /// copy-on-write sharing metric the fleet bench reports.
    #[must_use]
    pub fn shared_pages_with(&self, other: &Memory) -> usize {
        self.pages
            .iter()
            .filter(|(no, page)| {
                other
                    .pages
                    .get(no)
                    .is_some_and(|theirs| Arc::ptr_eq(&page.data, &theirs.data))
            })
            .count()
    }

    /// The page number containing `addr` (superblock tagging uses the same
    /// granularity as the write-generation invalidation).
    pub(crate) fn page_number(addr: u64) -> u64 {
        addr >> PAGE_SHIFT
    }

    /// Current write generation of a page, `None` if unmapped.
    pub(crate) fn page_gen(&self, page_no: u64) -> Option<u64> {
        self.pages.get(&page_no).map(|page| page.gen)
    }

    /// Pre-maps (zero-fills) the page range covering `[start, start + len)`.
    pub fn map_region(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = start >> PAGE_SHIFT;
        let last = (start + len - 1) >> PAGE_SHIFT;
        for page in first..=last {
            self.pages.entry(page).or_insert_with(Page::zeroed);
        }
    }

    /// Writable view of the page containing `addr`, mapping it on first
    /// touch, with its generation bumped. Copies the page contents first if
    /// they are shared with a snapshot or fork (copy-on-write).
    fn page_data_mut(&mut self, addr: u64) -> &mut PageData {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(Page::zeroed);
        page.gen += 1;
        Arc::make_mut(&mut page.data)
    }

    /// Fetches the aligned instruction word at `addr` together with the
    /// containing page's write generation, in a single page-table probe.
    ///
    /// The caller guarantees 4-byte alignment (the hart checks `pc` before
    /// fetching), so the word never straddles a page.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] if the page is unmapped.
    pub(crate) fn fetch_word(&self, addr: u64) -> Result<(u32, u64), ExceptionCause> {
        debug_assert!(addr.is_multiple_of(4), "instruction fetch must be aligned");
        let page = self
            .pages
            .get(&(addr >> PAGE_SHIFT))
            .ok_or(ExceptionCause::LoadAccessFault)?;
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        let word = u32::from_le_bytes(
            page.data[offset..offset + 4]
                .try_into()
                .expect("4-byte slice"),
        );
        Ok((word, page.gen))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] if the page is unmapped.
    pub fn read_u8(&self, addr: u64) -> Result<u8, ExceptionCause> {
        let page = self
            .pages
            .get(&(addr >> PAGE_SHIFT))
            .ok_or(ExceptionCause::LoadAccessFault)?;
        Ok(page.data[(addr & (PAGE_SIZE - 1)) as usize])
    }

    /// Writes one byte, mapping the page on first touch.
    ///
    /// # Errors
    ///
    /// Infallible today (sparse memory always maps); kept fallible so a
    /// bounded-memory configuration can fault without an API break.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), ExceptionCause> {
        self.page_data_mut(addr)[(addr & (PAGE_SIZE - 1)) as usize] = value;
        Ok(())
    }

    /// Reads `N` little-endian bytes.
    fn read_bytes<const N: usize>(&self, addr: u64) -> Result<[u8; N], ExceptionCause> {
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        let mut out = [0u8; N];
        if offset + N <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page.
            let page = self
                .pages
                .get(&(addr >> PAGE_SHIFT))
                .ok_or(ExceptionCause::LoadAccessFault)?;
            out.copy_from_slice(&page.data[offset..offset + N]);
        } else {
            for (i, byte) in out.iter_mut().enumerate() {
                *byte = self.read_u8(addr + i as u64)?;
            }
        }
        Ok(out)
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ExceptionCause> {
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        if offset + bytes.len() <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page.
            let data = self.page_data_mut(addr);
            data[offset..offset + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &byte) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, byte)?;
            }
        }
        Ok(())
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] on unmapped pages.
    pub fn read_u16(&self, addr: u64) -> Result<u16, ExceptionCause> {
        Ok(u16::from_le_bytes(self.read_bytes(addr)?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] on unmapped pages.
    pub fn read_u32(&self, addr: u64) -> Result<u32, ExceptionCause> {
        Ok(u32::from_le_bytes(self.read_bytes(addr)?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] on unmapped pages.
    pub fn read_u64(&self, addr: u64) -> Result<u64, ExceptionCause> {
        Ok(u64::from_le_bytes(self.read_bytes(addr)?))
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u16(&mut self, addr: u64, value: u16) -> Result<(), ExceptionCause> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), ExceptionCause> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), ExceptionCause> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Copies a byte slice into memory, mapping pages as needed.
    ///
    /// Infallible by construction: it writes straight into the
    /// mapped-on-touch page table rather than going through the fallible
    /// store path.
    pub fn write_slice(&mut self, addr: u64, bytes: &[u8]) {
        let mut at = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let offset = (at & (PAGE_SIZE - 1)) as usize;
            let room = PAGE_SIZE as usize - offset;
            let take = room.min(rest.len());
            let data = self.page_data_mut(at);
            data[offset..offset + take].copy_from_slice(&rest[..take]);
            at += take as u64;
            rest = &rest[take..];
        }
    }

    /// Reads `len` bytes into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`ExceptionCause::LoadAccessFault`] if any page is unmapped.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>, ExceptionCause> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Every mapped page as `(page_number, write_generation, contents)`,
    /// sorted by page number (snapshot support — the sort makes the
    /// serialized form canonical). The contents come back as `Arc` handles
    /// so a snapshot capture shares pages instead of copying them.
    pub(crate) fn page_entries(&self) -> Vec<(u64, u64, &Arc<PageData>)> {
        let mut pages: Vec<_> = self
            .pages
            .iter()
            .map(|(&no, page)| (no, page.gen, &page.data))
            .collect();
        pages.sort_unstable_by_key(|&(no, _, _)| no);
        pages
    }

    /// Drops every mapped page (snapshot restore starts from empty).
    pub(crate) fn clear(&mut self) {
        self.pages.clear();
    }

    /// Installs a page wholesale, including its write generation (snapshot
    /// restore — generations must survive the round-trip or the decode
    /// cache's lazy invalidation would resurrect stale entries). The `Arc`
    /// is shared, not copied: a restored or forked machine references the
    /// snapshot's pages until it writes to them.
    pub(crate) fn restore_page(&mut self, page_no: u64, gen: u64, data: Arc<PageData>) {
        self.pages.insert(page_no, Page { gen, data });
    }
}

/// Page size re-export for the snapshot module.
pub(crate) const PAGE_BYTES: usize = PAGE_SIZE as usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut mem = Memory::new();
        mem.write_u8(0x1000, 0xAB).unwrap();
        mem.write_u16(0x1010, 0xBEEF).unwrap();
        mem.write_u32(0x1020, 0xDEAD_BEEF).unwrap();
        mem.write_u64(0x1030, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(mem.read_u8(0x1000).unwrap(), 0xAB);
        assert_eq!(mem.read_u16(0x1010).unwrap(), 0xBEEF);
        assert_eq!(mem.read_u32(0x1020).unwrap(), 0xDEAD_BEEF);
        assert_eq!(mem.read_u64(0x1030).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn unmapped_reads_fault() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0).unwrap_err(), ExceptionCause::LoadAccessFault);
    }

    #[test]
    fn cross_page_access_works() {
        let mut mem = Memory::new();
        mem.write_u64(0x1FFC, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(0x1FFC).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn cross_page_read_faults_if_second_page_unmapped() {
        let mut mem = Memory::new();
        mem.write_u8(0x1FFC, 1).unwrap();
        assert!(mem.read_u64(0x1FFC).is_err(), "tail page never touched");
    }

    #[test]
    fn mapped_region_reads_zero() {
        let mut mem = Memory::new();
        mem.map_region(0x4000, 0x2000);
        assert_eq!(mem.read_u64(0x4FF8).unwrap(), 0);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn write_slice_and_read_vec() {
        let mut mem = Memory::new();
        mem.write_slice(0x9000, b"regvault");
        assert_eq!(mem.read_vec(0x9000, 8).unwrap(), b"regvault");
    }

    #[test]
    fn write_slice_spans_pages() {
        let mut mem = Memory::new();
        let data: Vec<u8> = (0..=255).cycle().take(5000).map(|b: u16| b as u8).collect();
        mem.write_slice(0x1F00, &data);
        assert_eq!(mem.read_vec(0x1F00, 5000).unwrap(), data);
        // 0x1F00..0x3288 touches pages 1, 2 and 3.
        assert_eq!(mem.mapped_pages(), 3);
    }

    #[test]
    fn map_region_zero_len_is_noop() {
        let mut mem = Memory::new();
        mem.map_region(0x5000, 0);
        assert_eq!(mem.mapped_pages(), 0);
    }

    #[test]
    fn stores_bump_the_page_generation() {
        let mut mem = Memory::new();
        mem.write_u32(0x2000, 0x13).unwrap();
        let (_, gen_a) = mem.fetch_word(0x2000).unwrap();
        mem.write_u8(0x2FFF, 0xFF).unwrap(); // same page
        let (_, gen_b) = mem.fetch_word(0x2000).unwrap();
        assert!(gen_b > gen_a, "store must advance the page generation");
        mem.write_u8(0x3000, 0xFF).unwrap(); // different page
        let (_, gen_c) = mem.fetch_word(0x2000).unwrap();
        assert_eq!(gen_b, gen_c, "other pages don't disturb the generation");
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 1).unwrap();
        mem.write_u64(0x2000, 2).unwrap();
        let mut fork = mem.clone();
        assert_eq!(mem.shared_pages_with(&fork), 2);

        // Writing in the fork copies exactly the dirtied page...
        fork.write_u64(0x1000, 99).unwrap();
        assert_eq!(mem.shared_pages_with(&fork), 1);
        // ...and the parent is fully isolated from the fork's write.
        assert_eq!(mem.read_u64(0x1000).unwrap(), 1);
        assert_eq!(fork.read_u64(0x1000).unwrap(), 99);
        assert_eq!(fork.read_u64(0x2000).unwrap(), 2);
    }

    #[test]
    fn fork_generations_advance_independently() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 1).unwrap();
        let gen_before = mem.page_gen(1).unwrap();
        let mut fork = mem.clone();
        fork.write_u64(0x1008, 5).unwrap();
        assert_eq!(mem.page_gen(1).unwrap(), gen_before, "parent gen untouched");
        assert!(fork.page_gen(1).unwrap() > gen_before, "fork gen advances");
    }
}
