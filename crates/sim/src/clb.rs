//! The Cryptographic Lookaside Buffer (CLB), §2.3.3 of the paper.
//!
//! The architectural model is a fully-associative LRU cache; the obvious
//! implementation (linear scan per lookup, two more scans per insert) costs
//! O(capacity) on the simulator's hottest path. This implementation keeps
//! the same observable semantics — hit/miss behaviour, LRU eviction order,
//! per-`ksel` invalidation, [`ClbStats`] accounting — but indexes the
//! entries with two hash maps (one per lookup direction, keyed
//! `(ksel, tweak, plaintext)` and `(ksel, tweak, ciphertext)`) and threads
//! an intrusive doubly-linked LRU list through the entry slots, so every
//! operation is O(1) in the buffer capacity:
//!
//! * **lookup** — one hash probe; a hit unlinks the slot and relinks it at
//!   the MRU head.
//! * **insert** — pop a free slot (or unlink the LRU tail, which *is* the
//!   eviction victim the old linear `min_by_key` scan found, since
//!   list order equals recency order), then link at the head.
//! * **occupancy** — allocated slots minus free-stack depth; no recount.
//! * **invalidation** — walks only live entries via the list.
//!
//! Index maps are updated with *guarded removal* (a key is removed only if
//! it still maps to the slot being retired), so unreachable corner states —
//! duplicate tuples injected by fault campaigns poisoning cached plaintext —
//! degrade gracefully instead of corrupting unrelated entries.

use crate::fxhash::FxHashMap;

/// Null link in the intrusive LRU list.
const NONE: u32 = u32::MAX;

/// Index key for one lookup direction: `(ksel, tweak, pt-or-ct)`.
type IndexKey = (u8, u64, u64);

/// One CLB slot: a cached `(ksel, tweak) : plaintext ↔ ciphertext` mapping
/// plus its links in the recency list.
#[derive(Debug, Clone, Copy)]
struct Slot {
    ksel: u8,
    tweak: u64,
    plaintext: u64,
    ciphertext: u64,
    /// Towards the MRU head.
    prev: u32,
    /// Towards the LRU tail.
    next: u32,
}

/// Hit/miss counters for the CLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that missed and required the multi-cycle QARMA datapath.
    pub misses: u64,
    /// Valid entries evicted by LRU replacement.
    pub evictions: u64,
    /// Entries invalidated by key-register writes.
    pub invalidations: u64,
}

impl ClbStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One entry of the [naive reference implementation](Clb::new_reference):
/// the cached tuple plus a monotonically increasing recency stamp.
#[derive(Debug, Clone, Copy)]
struct NaiveEntry {
    ksel: u8,
    tweak: u64,
    plaintext: u64,
    ciphertext: u64,
    last_used: u64,
}

/// The deliberately naive fully-associative LRU cache: linear scan per
/// lookup, `min_by_key(last_used)` eviction — exactly the "obvious
/// implementation" the indexed [`Clb`] replaced. Kept as the reference
/// datapath for the lockstep differential executor: it shares *no* code
/// with the indexed implementation (no hash maps, no intrusive list), so
/// an indexing or recency-tracking bug in either side shows up as a
/// divergence.
#[derive(Debug, Clone, Default)]
struct NaiveClb {
    entries: Vec<NaiveEntry>,
    tick: u64,
}

impl NaiveClb {
    fn touch(&mut self, index: usize) {
        self.tick += 1;
        self.entries[index].last_used = self.tick;
    }

    fn lookup(&mut self, ksel: u8, tweak: u64, value: u64, by_ct: bool) -> Option<u64> {
        let found = self.entries.iter().position(|e| {
            e.ksel == ksel
                && e.tweak == tweak
                && (if by_ct { e.ciphertext } else { e.plaintext }) == value
        })?;
        self.touch(found);
        let entry = self.entries[found];
        Some(if by_ct {
            entry.plaintext
        } else {
            entry.ciphertext
        })
    }

    /// Returns `true` when a valid entry was evicted to make room.
    fn insert(&mut self, capacity: usize, ksel: u8, tweak: u64, pt: u64, ct: u64) -> bool {
        if let Some(found) = self
            .entries
            .iter()
            .position(|e| e.ksel == ksel && e.tweak == tweak && e.plaintext == pt)
        {
            self.entries[found].ciphertext = ct;
            self.touch(found);
            return false;
        }
        let mut evicted = false;
        let index = if self.entries.len() < capacity {
            self.entries.push(NaiveEntry {
                ksel: 0,
                tweak: 0,
                plaintext: 0,
                ciphertext: 0,
                last_used: 0,
            });
            self.entries.len() - 1
        } else {
            evicted = true;
            self.entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0 implies at least one entry")
        };
        self.entries[index] = NaiveEntry {
            ksel,
            tweak,
            plaintext: pt,
            ciphertext: ct,
            last_used: 0,
        };
        self.touch(index);
        evicted
    }

    /// Returns the number of entries invalidated.
    fn invalidate_ksel(&mut self, ksel: u8) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|e| e.ksel != ksel);
        (before - self.entries.len()) as u64
    }

    fn poison_mru(&mut self, xor: u64) -> bool {
        let Some(found) = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
        else {
            return false;
        };
        self.entries[found].plaintext ^= xor;
        true
    }
}

/// A fully-associative, LRU-replaced cache of recent cryptographic results.
///
/// Each entry stores a 3-bit key-selection index rather than the 128-bit key
/// itself, so a key-register write invalidates all entries with the matching
/// `ksel` (§2.3.3). One entry serves both directions: an encryption that
/// cached `(tweak, pt) → ct` also accelerates the later decryption of `ct`.
///
/// A capacity of 0 disables the buffer (every lookup misses), which is the
/// "CLB 0" hardware configuration of Table 3.
///
/// # Examples
///
/// ```
/// use regvault_sim::Clb;
///
/// let mut clb = Clb::new(8);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), None);
/// clb.insert(1, 0x40, 0xdead, 0xc1c1);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), Some(0xc1c1));
/// assert_eq!(clb.lookup_decrypt(1, 0x40, 0xc1c1), Some(0xdead));
/// clb.invalidate_ksel(1);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), None);
/// ```
#[derive(Debug, Clone)]
pub struct Clb {
    capacity: usize,
    /// `Some` selects the naive reference implementation; the indexed
    /// fields below are then unused.
    naive: Option<NaiveClb>,
    /// Slot storage; grows on demand up to `capacity` and is then recycled
    /// through `free`.
    slots: Vec<Slot>,
    /// Stack of retired slot indices available for reuse.
    free: Vec<u32>,
    /// `(ksel, tweak, plaintext) → slot` index (encrypt direction).
    by_pt: FxHashMap<IndexKey, u32>,
    /// `(ksel, tweak, ciphertext) → slot` index (decrypt direction).
    by_ct: FxHashMap<IndexKey, u32>,
    /// Most-recently-used slot, or [`NONE`] when empty.
    head: u32,
    /// Least-recently-used slot (the eviction victim), or [`NONE`].
    tail: u32,
    stats: ClbStats,
}

impl Clb {
    /// Creates a CLB with `capacity` entries (0 disables caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            naive: None,
            slots: Vec::new(),
            free: Vec::new(),
            by_pt: FxHashMap::default(),
            by_ct: FxHashMap::default(),
            head: NONE,
            tail: NONE,
            stats: ClbStats::default(),
        }
    }

    /// Creates a CLB backed by the naive linear-scan reference
    /// implementation (same observable semantics, no shared code with the
    /// indexed fast path) — the CLB half of the reference datapath used by
    /// the lockstep differential executor.
    #[must_use]
    pub fn new_reference(capacity: usize) -> Self {
        Self {
            naive: Some(NaiveClb::default()),
            ..Self::new(capacity)
        }
    }

    /// `true` when this CLB runs the naive reference implementation.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.naive.is_some()
    }

    /// Number of entries (the hardware configuration parameter).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        match &self.naive {
            Some(naive) => naive.entries.len(),
            None => self.slots.len() - self.free.len(),
        }
    }

    /// The valid entries as `(ksel, tweak, plaintext, ciphertext)` tuples in
    /// LRU → MRU order — the canonical architectural view used by snapshots
    /// and the lockstep state comparison (both implementations produce the
    /// same sequence when they agree).
    #[must_use]
    pub fn entries_lru_to_mru(&self) -> Vec<(u8, u64, u64, u64)> {
        if let Some(naive) = &self.naive {
            let mut sorted: Vec<&NaiveEntry> = naive.entries.iter().collect();
            sorted.sort_by_key(|e| e.last_used);
            return sorted
                .into_iter()
                .map(|e| (e.ksel, e.tweak, e.plaintext, e.ciphertext))
                .collect();
        }
        let mut out = Vec::with_capacity(self.occupancy());
        let mut cursor = self.tail;
        while cursor != NONE {
            let s = self.slots[cursor as usize];
            out.push((s.ksel, s.tweak, s.plaintext, s.ciphertext));
            cursor = s.prev;
        }
        out
    }

    /// Rebuilds the buffer from a snapshot: entries in LRU → MRU order plus
    /// the statistics counters captured with them. Preserves the
    /// implementation choice (indexed vs. reference) of `self`.
    pub(crate) fn restore_entries(&mut self, entries: &[(u8, u64, u64, u64)], stats: ClbStats) {
        *self = if self.naive.is_some() {
            Self::new_reference(self.capacity)
        } else {
            Self::new(self.capacity)
        };
        for &(ksel, tweak, pt, ct) in entries {
            self.insert(ksel, tweak, pt, ct);
        }
        self.stats = stats;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> ClbStats {
        self.stats
    }

    /// Resets the statistics counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = ClbStats::default();
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        match prev {
            NONE => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links `slot` at the MRU head.
    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NONE;
        self.slots[slot as usize].next = self.head;
        match self.head {
            NONE => self.tail = slot,
            h => self.slots[h as usize].prev = slot,
        }
        self.head = slot;
    }

    /// Marks `slot` most-recently-used.
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Removes an index key only if it still points at `slot` (a later
    /// insert or poison may have redirected it to a different slot).
    fn remove_index(map: &mut FxHashMap<IndexKey, u32>, key: IndexKey, slot: u32) {
        if map.get(&key) == Some(&slot) {
            map.remove(&key);
        }
    }

    /// Drops both index keys of `slot`.
    fn unindex(&mut self, slot: u32) {
        let s = self.slots[slot as usize];
        Self::remove_index(&mut self.by_pt, (s.ksel, s.tweak, s.plaintext), slot);
        Self::remove_index(&mut self.by_ct, (s.ksel, s.tweak, s.ciphertext), slot);
    }

    /// Looks up a cached ciphertext for `(ksel, tweak, plaintext)`.
    pub fn lookup_encrypt(&mut self, ksel: u8, tweak: u64, plaintext: u64) -> Option<u64> {
        if let Some(naive) = &mut self.naive {
            let found = naive.lookup(ksel, tweak, plaintext, false);
            match found {
                Some(_) => self.stats.hits += 1,
                None => self.stats.misses += 1,
            }
            return found;
        }
        match self.by_pt.get(&(ksel, tweak, plaintext)) {
            Some(&slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(self.slots[slot as usize].ciphertext)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a cached plaintext for `(ksel, tweak, ciphertext)`.
    pub fn lookup_decrypt(&mut self, ksel: u8, tweak: u64, ciphertext: u64) -> Option<u64> {
        if let Some(naive) = &mut self.naive {
            let found = naive.lookup(ksel, tweak, ciphertext, true);
            match found {
                Some(_) => self.stats.hits += 1,
                None => self.stats.misses += 1,
            }
            return found;
        }
        match self.by_ct.get(&(ksel, tweak, ciphertext)) {
            Some(&slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(self.slots[slot as usize].plaintext)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed result, evicting the LRU entry if full.
    ///
    /// A zero-capacity CLB ignores the insertion. Re-inserting an existing
    /// `(ksel, tweak, plaintext)` tuple refreshes that entry in place
    /// (unreachable in real operation — the preceding lookup would have
    /// hit — but harmless).
    pub fn insert(&mut self, ksel: u8, tweak: u64, plaintext: u64, ciphertext: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(naive) = &mut self.naive {
            if naive.insert(self.capacity, ksel, tweak, plaintext, ciphertext) {
                self.stats.evictions += 1;
            }
            return;
        }
        if let Some(&slot) = self.by_pt.get(&(ksel, tweak, plaintext)) {
            let old_ct = self.slots[slot as usize].ciphertext;
            Self::remove_index(&mut self.by_ct, (ksel, tweak, old_ct), slot);
            self.slots[slot as usize].ciphertext = ciphertext;
            self.by_ct.insert((ksel, tweak, ciphertext), slot);
            self.touch(slot);
            return;
        }

        let slot = if let Some(free) = self.free.pop() {
            free
        } else if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                ksel: 0,
                tweak: 0,
                plaintext: 0,
                ciphertext: 0,
                prev: NONE,
                next: NONE,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Full: the LRU tail is exactly the victim the linear-scan
            // implementation's `min_by_key(last_used)` selected.
            let victim = self.tail;
            self.stats.evictions += 1;
            self.unindex(victim);
            self.unlink(victim);
            victim
        };

        {
            let s = &mut self.slots[slot as usize];
            s.ksel = ksel;
            s.tweak = tweak;
            s.plaintext = plaintext;
            s.ciphertext = ciphertext;
        }
        self.by_pt.insert((ksel, tweak, plaintext), slot);
        self.by_ct.insert((ksel, tweak, ciphertext), slot);
        self.push_front(slot);
    }

    /// Invalidates every entry whose key selector matches `ksel` — the
    /// hardware behaviour on a key-register write.
    pub fn invalidate_ksel(&mut self, ksel: u8) {
        if let Some(naive) = &mut self.naive {
            self.stats.invalidations += naive.invalidate_ksel(ksel);
            return;
        }
        let mut cursor = self.head;
        while cursor != NONE {
            let next = self.slots[cursor as usize].next;
            if self.slots[cursor as usize].ksel == ksel {
                self.unindex(cursor);
                self.unlink(cursor);
                self.free.push(cursor);
                self.stats.invalidations += 1;
            }
            cursor = next;
        }
    }

    /// Fault-injection hook: XORs `xor` into the cached plaintext of the
    /// most-recently-used valid entry, modelling a bit upset in the CLB's
    /// data array. Returns `false` (and changes nothing) when `xor` is zero
    /// or no valid entry exists.
    ///
    /// A poisoned entry serves the corrupted plaintext on its next decrypt
    /// hit; whether the consumer notices is exactly what the fault campaign
    /// measures.
    pub fn poison_mru(&mut self, xor: u64) -> bool {
        if xor == 0 {
            return false;
        }
        if let Some(naive) = &mut self.naive {
            return naive.poison_mru(xor);
        }
        if self.head == NONE {
            return false;
        }
        let slot = self.head;
        let s = self.slots[slot as usize];
        Self::remove_index(&mut self.by_pt, (s.ksel, s.tweak, s.plaintext), slot);
        let poisoned = s.plaintext ^ xor;
        self.slots[slot as usize].plaintext = poisoned;
        self.by_pt.insert((s.ksel, s.tweak, poisoned), slot);
        true
    }

    /// Invalidates the whole buffer.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidations += self.occupancy() as u64;
        if let Some(naive) = &mut self.naive {
            naive.entries.clear();
            return;
        }
        self.by_pt.clear();
        self.by_ct.clear();
        self.free.clear();
        self.free.extend((0..self.slots.len() as u32).rev());
        self.head = NONE;
        self.tail = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_always_misses() {
        let mut clb = Clb::new(0);
        clb.insert(1, 2, 3, 4);
        assert_eq!(clb.lookup_encrypt(1, 2, 3), None);
        assert_eq!(clb.stats().misses, 1);
        assert_eq!(clb.occupancy(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut clb = Clb::new(2);
        clb.insert(0, 0, 1, 101);
        clb.insert(0, 0, 2, 102);
        // Touch entry 1 so entry 2 becomes LRU.
        assert_eq!(clb.lookup_encrypt(0, 0, 1), Some(101));
        clb.insert(0, 0, 3, 103);
        assert_eq!(clb.stats().evictions, 1);
        assert_eq!(clb.lookup_encrypt(0, 0, 1), Some(101), "recently used kept");
        assert_eq!(clb.lookup_encrypt(0, 0, 2), None, "LRU evicted");
        assert_eq!(clb.lookup_encrypt(0, 0, 3), Some(103));
    }

    #[test]
    fn decrypt_hit_refreshes_recency() {
        let mut clb = Clb::new(2);
        clb.insert(0, 0, 1, 101);
        clb.insert(0, 0, 2, 102);
        // Touch entry 1 through the *decrypt* index.
        assert_eq!(clb.lookup_decrypt(0, 0, 101), Some(1));
        clb.insert(0, 0, 3, 103);
        assert_eq!(
            clb.lookup_encrypt(0, 0, 1),
            Some(101),
            "refreshed entry kept"
        );
        assert_eq!(clb.lookup_encrypt(0, 0, 2), None, "stale entry evicted");
    }

    #[test]
    fn ksel_invalidation_is_selective() {
        let mut clb = Clb::new(4);
        clb.insert(1, 0, 10, 110);
        clb.insert(2, 0, 20, 120);
        clb.invalidate_ksel(1);
        assert_eq!(clb.lookup_encrypt(1, 0, 10), None);
        assert_eq!(clb.lookup_encrypt(2, 0, 20), Some(120));
        assert_eq!(clb.stats().invalidations, 1);
    }

    #[test]
    fn invalidated_slots_are_recycled() {
        let mut clb = Clb::new(2);
        clb.insert(1, 0, 10, 110);
        clb.insert(2, 0, 20, 120);
        clb.invalidate_ksel(1);
        assert_eq!(clb.occupancy(), 1);
        clb.insert(3, 0, 30, 130);
        assert_eq!(clb.occupancy(), 2);
        assert_eq!(
            clb.stats().evictions,
            0,
            "reused the freed slot, no eviction"
        );
        assert_eq!(clb.lookup_encrypt(2, 0, 20), Some(120));
        assert_eq!(clb.lookup_encrypt(3, 0, 30), Some(130));
    }

    #[test]
    fn tweak_distinguishes_entries() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0xA, 5, 50);
        clb.insert(0, 0xB, 5, 60);
        assert_eq!(clb.lookup_encrypt(0, 0xA, 5), Some(50));
        assert_eq!(clb.lookup_encrypt(0, 0xB, 5), Some(60));
    }

    #[test]
    fn hit_ratio_accounts_both_directions() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0, 1, 2);
        let _ = clb.lookup_encrypt(0, 0, 1); // hit
        let _ = clb.lookup_decrypt(0, 0, 2); // hit
        let _ = clb.lookup_decrypt(0, 0, 99); // miss
        let stats = clb.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn poison_mru_corrupts_only_the_latest_entry() {
        let mut clb = Clb::new(4);
        assert!(!clb.poison_mru(1), "empty buffer has no target");
        clb.insert(1, 0, 10, 110);
        clb.insert(1, 0, 20, 120);
        assert!(!clb.poison_mru(0), "zero xor is a no-op");
        assert!(clb.poison_mru(0xFF));
        assert_eq!(clb.lookup_decrypt(1, 0, 120), Some(20 ^ 0xFF));
        assert_eq!(
            clb.lookup_decrypt(1, 0, 110),
            Some(10),
            "older entry untouched"
        );
    }

    #[test]
    fn poison_updates_the_encrypt_index() {
        let mut clb = Clb::new(4);
        clb.insert(1, 0, 10, 110);
        assert!(clb.poison_mru(0xF0));
        assert_eq!(
            clb.lookup_encrypt(1, 0, 10),
            None,
            "old plaintext unindexed"
        );
        assert_eq!(clb.lookup_encrypt(1, 0, 10 ^ 0xF0), Some(110));
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0, 1, 2);
        clb.insert(3, 0, 4, 5);
        clb.invalidate_all();
        assert_eq!(clb.occupancy(), 0);
        assert_eq!(clb.stats().invalidations, 2);
    }

    /// Drives the indexed and naive implementations through the same
    /// operation sequence and demands identical observables at every step.
    #[test]
    fn reference_implementation_matches_indexed() {
        let mut fast = Clb::new(3);
        let mut reference = Clb::new_reference(3);
        assert!(reference.is_reference() && !fast.is_reference());
        // A mixed workload: inserts past capacity, both lookup directions,
        // selective invalidation, MRU poison.
        let tuples: [(u8, u64, u64, u64); 6] = [
            (1, 0x10, 0xA, 0x1A),
            (2, 0x20, 0xB, 0x2B),
            (1, 0x30, 0xC, 0x3C),
            (3, 0x40, 0xD, 0x4D),
            (2, 0x20, 0xB, 0x2B),
            (1, 0x10, 0xA, 0x1A),
        ];
        for (i, &(ksel, tweak, pt, ct)) in tuples.iter().enumerate() {
            fast.insert(ksel, tweak, pt, ct);
            reference.insert(ksel, tweak, pt, ct);
            if i % 2 == 0 {
                assert_eq!(
                    fast.lookup_decrypt(ksel, tweak, ct),
                    reference.lookup_decrypt(ksel, tweak, ct)
                );
            } else {
                assert_eq!(
                    fast.lookup_encrypt(ksel, tweak, pt),
                    reference.lookup_encrypt(ksel, tweak, pt)
                );
            }
            assert_eq!(fast.entries_lru_to_mru(), reference.entries_lru_to_mru());
            assert_eq!(fast.stats(), reference.stats());
        }
        assert_eq!(fast.poison_mru(0xF0), reference.poison_mru(0xF0));
        assert_eq!(fast.entries_lru_to_mru(), reference.entries_lru_to_mru());
        fast.invalidate_ksel(1);
        reference.invalidate_ksel(1);
        assert_eq!(fast.entries_lru_to_mru(), reference.entries_lru_to_mru());
        assert_eq!(fast.stats(), reference.stats());
    }

    #[test]
    fn restore_entries_reproduces_order_and_stats() {
        let mut clb = Clb::new(4);
        clb.insert(1, 0, 10, 110);
        clb.insert(2, 0, 20, 120);
        let _ = clb.lookup_encrypt(1, 0, 10); // entry 1 becomes MRU
        let entries = clb.entries_lru_to_mru();
        let stats = clb.stats();
        let mut rebuilt = Clb::new(4);
        rebuilt.restore_entries(&entries, stats);
        assert_eq!(rebuilt.entries_lru_to_mru(), entries);
        assert_eq!(rebuilt.stats(), stats);
        // LRU order survived: inserting two more evicts entry 2 first.
        rebuilt.insert(3, 0, 30, 130);
        rebuilt.insert(4, 0, 40, 140);
        rebuilt.insert(5, 0, 50, 150);
        assert_eq!(rebuilt.lookup_encrypt(1, 0, 10), Some(110));
        assert_eq!(rebuilt.lookup_encrypt(2, 0, 20), None);
    }
}
