//! The Cryptographic Lookaside Buffer (CLB), §2.3.3 of the paper.

/// One CLB entry: a cached `(ksel, tweak) : plaintext ↔ ciphertext` mapping.
#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    ksel: u8,
    tweak: u64,
    plaintext: u64,
    ciphertext: u64,
    /// Monotonic timestamp for LRU replacement.
    last_used: u64,
}

impl Entry {
    const INVALID: Entry = Entry {
        valid: false,
        ksel: 0,
        tweak: 0,
        plaintext: 0,
        ciphertext: 0,
        last_used: 0,
    };
}

/// Hit/miss counters for the CLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that missed and required the multi-cycle QARMA datapath.
    pub misses: u64,
    /// Valid entries evicted by LRU replacement.
    pub evictions: u64,
    /// Entries invalidated by key-register writes.
    pub invalidations: u64,
}

impl ClbStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU-replaced cache of recent cryptographic results.
///
/// Each entry stores a 3-bit key-selection index rather than the 128-bit key
/// itself, so a key-register write invalidates all entries with the matching
/// `ksel` (§2.3.3). One entry serves both directions: an encryption that
/// cached `(tweak, pt) → ct` also accelerates the later decryption of `ct`.
///
/// A capacity of 0 disables the buffer (every lookup misses), which is the
/// "CLB 0" hardware configuration of Table 3.
///
/// # Examples
///
/// ```
/// use regvault_sim::Clb;
///
/// let mut clb = Clb::new(8);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), None);
/// clb.insert(1, 0x40, 0xdead, 0xc1c1);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), Some(0xc1c1));
/// assert_eq!(clb.lookup_decrypt(1, 0x40, 0xc1c1), Some(0xdead));
/// clb.invalidate_ksel(1);
/// assert_eq!(clb.lookup_encrypt(1, 0x40, 0xdead), None);
/// ```
#[derive(Debug, Clone)]
pub struct Clb {
    entries: Vec<Entry>,
    clock: u64,
    stats: ClbStats,
}

impl Clb {
    /// Creates a CLB with `capacity` entries (0 disables caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: vec![Entry::INVALID; capacity],
            clock: 0,
            stats: ClbStats::default(),
        }
    }

    /// Number of entries (the hardware configuration parameter).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> ClbStats {
        self.stats
    }

    /// Resets the statistics counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = ClbStats::default();
    }

    fn touch(&mut self, index: usize) {
        self.clock += 1;
        self.entries[index].last_used = self.clock;
    }

    fn find(&self, pred: impl Fn(&Entry) -> bool) -> Option<usize> {
        self.entries.iter().position(|e| e.valid && pred(e))
    }

    /// Looks up a cached ciphertext for `(ksel, tweak, plaintext)`.
    pub fn lookup_encrypt(&mut self, ksel: u8, tweak: u64, plaintext: u64) -> Option<u64> {
        match self.find(|e| e.ksel == ksel && e.tweak == tweak && e.plaintext == plaintext) {
            Some(index) => {
                self.stats.hits += 1;
                self.touch(index);
                Some(self.entries[index].ciphertext)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a cached plaintext for `(ksel, tweak, ciphertext)`.
    pub fn lookup_decrypt(&mut self, ksel: u8, tweak: u64, ciphertext: u64) -> Option<u64> {
        match self.find(|e| e.ksel == ksel && e.tweak == tweak && e.ciphertext == ciphertext) {
            Some(index) => {
                self.stats.hits += 1;
                self.touch(index);
                Some(self.entries[index].plaintext)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed result, evicting the LRU entry if full.
    ///
    /// A zero-capacity CLB ignores the insertion.
    pub fn insert(&mut self, ksel: u8, tweak: u64, plaintext: u64, ciphertext: u64) {
        if self.entries.is_empty() {
            return;
        }
        let slot = match self.entries.iter().position(|e| !e.valid) {
            Some(free) => free,
            None => {
                self.stats.evictions += 1;
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("non-empty CLB")
            }
        };
        self.entries[slot] = Entry {
            valid: true,
            ksel,
            tweak,
            plaintext,
            ciphertext,
            last_used: 0,
        };
        self.touch(slot);
    }

    /// Invalidates every entry whose key selector matches `ksel` — the
    /// hardware behaviour on a key-register write.
    pub fn invalidate_ksel(&mut self, ksel: u8) {
        for entry in &mut self.entries {
            if entry.valid && entry.ksel == ksel {
                entry.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Fault-injection hook: XORs `xor` into the cached plaintext of the
    /// most-recently-used valid entry, modelling a bit upset in the CLB's
    /// data array. Returns `false` (and changes nothing) when `xor` is zero
    /// or no valid entry exists.
    ///
    /// A poisoned entry serves the corrupted plaintext on its next decrypt
    /// hit; whether the consumer notices is exactly what the fault campaign
    /// measures.
    pub fn poison_mru(&mut self, xor: u64) -> bool {
        if xor == 0 {
            return false;
        }
        match self
            .entries
            .iter_mut()
            .filter(|e| e.valid)
            .max_by_key(|e| e.last_used)
        {
            Some(entry) => {
                entry.plaintext ^= xor;
                true
            }
            None => false,
        }
    }

    /// Invalidates the whole buffer.
    pub fn invalidate_all(&mut self) {
        for entry in &mut self.entries {
            if entry.valid {
                entry.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_always_misses() {
        let mut clb = Clb::new(0);
        clb.insert(1, 2, 3, 4);
        assert_eq!(clb.lookup_encrypt(1, 2, 3), None);
        assert_eq!(clb.stats().misses, 1);
        assert_eq!(clb.occupancy(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut clb = Clb::new(2);
        clb.insert(0, 0, 1, 101);
        clb.insert(0, 0, 2, 102);
        // Touch entry 1 so entry 2 becomes LRU.
        assert_eq!(clb.lookup_encrypt(0, 0, 1), Some(101));
        clb.insert(0, 0, 3, 103);
        assert_eq!(clb.stats().evictions, 1);
        assert_eq!(clb.lookup_encrypt(0, 0, 1), Some(101), "recently used kept");
        assert_eq!(clb.lookup_encrypt(0, 0, 2), None, "LRU evicted");
        assert_eq!(clb.lookup_encrypt(0, 0, 3), Some(103));
    }

    #[test]
    fn ksel_invalidation_is_selective() {
        let mut clb = Clb::new(4);
        clb.insert(1, 0, 10, 110);
        clb.insert(2, 0, 20, 120);
        clb.invalidate_ksel(1);
        assert_eq!(clb.lookup_encrypt(1, 0, 10), None);
        assert_eq!(clb.lookup_encrypt(2, 0, 20), Some(120));
        assert_eq!(clb.stats().invalidations, 1);
    }

    #[test]
    fn tweak_distinguishes_entries() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0xA, 5, 50);
        clb.insert(0, 0xB, 5, 60);
        assert_eq!(clb.lookup_encrypt(0, 0xA, 5), Some(50));
        assert_eq!(clb.lookup_encrypt(0, 0xB, 5), Some(60));
    }

    #[test]
    fn hit_ratio_accounts_both_directions() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0, 1, 2);
        let _ = clb.lookup_encrypt(0, 0, 1); // hit
        let _ = clb.lookup_decrypt(0, 0, 2); // hit
        let _ = clb.lookup_decrypt(0, 0, 99); // miss
        let stats = clb.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn poison_mru_corrupts_only_the_latest_entry() {
        let mut clb = Clb::new(4);
        assert!(!clb.poison_mru(1), "empty buffer has no target");
        clb.insert(1, 0, 10, 110);
        clb.insert(1, 0, 20, 120);
        assert!(!clb.poison_mru(0), "zero xor is a no-op");
        assert!(clb.poison_mru(0xFF));
        assert_eq!(clb.lookup_decrypt(1, 0, 120), Some(20 ^ 0xFF));
        assert_eq!(clb.lookup_decrypt(1, 0, 110), Some(10), "older entry untouched");
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut clb = Clb::new(4);
        clb.insert(0, 0, 1, 2);
        clb.insert(3, 0, 4, 5);
        clb.invalidate_all();
        assert_eq!(clb.occupancy(), 0);
        assert_eq!(clb.stats().invalidations, 2);
    }
}
