//! Decoded-instruction cache for the fetch path.
//!
//! `exec::step` used to re-run the full bit-field decoder on every emulated
//! cycle, even though almost all fetches hit the same small working set of
//! instruction words. This direct-mapped cache remembers the [`Insn`] a
//! given `pc` decoded to, tagged with the *write generation* of the page it
//! was fetched from ([`crate::Memory`] bumps a page's generation on every
//! store). A store into a code page therefore invalidates its cached
//! decodes lazily: the generation tag no longer matches, the entry misses,
//! and the word is decoded afresh — self-modifying code stays
//! architecturally correct without any explicit flush traffic.

use regvault_isa::Insn;

/// Number of direct-mapped entries. Power of two; 2048 entries cover an
/// 8 KiB working set of code, larger than every bundled workload loop.
const ENTRIES: usize = 2048;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    /// Write generation of the containing page at decode time.
    gen: u64,
    insn: Insn,
}

/// Direct-mapped decoded-instruction cache, indexed by word-aligned `pc`.
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    entries: Vec<Option<Entry>>,
}

impl DecodeCache {
    pub(crate) fn new() -> Self {
        Self {
            entries: vec![None; ENTRIES],
        }
    }

    #[inline(always)]
    fn index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (ENTRIES - 1)
    }

    /// Returns the cached decode for `pc` if it was made under the same page
    /// generation `gen`.
    #[inline(always)]
    pub(crate) fn get(&self, pc: u64, gen: u64) -> Option<Insn> {
        match self.entries[Self::index(pc)] {
            Some(entry) if entry.pc == pc && entry.gen == gen => Some(entry.insn),
            _ => None,
        }
    }

    /// Caches the decode of the word at `pc`, fetched under page generation
    /// `gen`. Conflicting entries (same index, different pc) are simply
    /// replaced.
    #[inline(always)]
    pub(crate) fn put(&mut self, pc: u64, gen: u64, insn: Insn) {
        self.entries[Self::index(pc)] = Some(Entry { pc, gen, insn });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop() -> Insn {
        regvault_isa::decode::decode(0x0000_0013).expect("addi x0, x0, 0")
    }

    #[test]
    fn hit_requires_matching_pc_and_generation() {
        let mut cache = DecodeCache::new();
        assert_eq!(cache.get(0x8000_0000, 1), None);
        cache.put(0x8000_0000, 1, nop());
        assert_eq!(cache.get(0x8000_0000, 1), Some(nop()));
        assert_eq!(cache.get(0x8000_0000, 2), None, "stale generation misses");
        assert_eq!(cache.get(0x8000_0004, 1), None, "different pc misses");
    }

    #[test]
    fn conflicting_pcs_replace_each_other() {
        let mut cache = DecodeCache::new();
        let stride = (ENTRIES as u64) << 2;
        cache.put(0x1000, 1, nop());
        cache.put(0x1000 + stride, 1, nop());
        assert_eq!(cache.get(0x1000, 1), None, "evicted by the aliasing pc");
        assert_eq!(cache.get(0x1000 + stride, 1), Some(nop()));
    }
}
