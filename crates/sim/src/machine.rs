//! The complete simulated machine: hart + memory + crypto-engine + clock.

use regvault_isa::{ByteRange, KeyReg};
use regvault_metrics::{Counter, MetricsRegistry};
use regvault_qarma::Key;

use crate::{
    cost::CostModel,
    engine::{CryptoEngine, CryptoResult, IntegrityError, Watchdog},
    error::{ExceptionCause, SimError},
    exec,
    fault::{AppliedFault, FaultEffect, FaultKind, FaultPlan},
    hart::{Hart, Privilege},
    icache::DecodeCache,
    mem::Memory,
    stats::{InsnClass, Stats},
    superblock::{self, SuperblockCache, SuperblockStats},
    trace::{RingTracer, TraceEvent, TraceRecord, Tracer},
};

/// Construction parameters for a [`Machine`].
///
/// # Examples
///
/// ```
/// use regvault_sim::MachineConfig;
///
/// let config = MachineConfig {
///     clb_entries: 16,
///     ..MachineConfig::default()
/// };
/// assert_eq!(config.clb_entries, 16);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// CLB entries (0 disables the buffer; the paper's prototype uses 8).
    pub clb_entries: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Seed for hardware randomness (master key).
    pub seed: u64,
    /// Deliver a timer interrupt every this many cycles (None = no timer).
    pub timer_interval: Option<u64>,
    /// Run the reference datapath: cell-level QARMA instead of the SWAR
    /// core, naive linear-scan CLB instead of the indexed one. Slow and
    /// architecturally identical by construction — the co-execution target
    /// of [`crate::lockstep`].
    pub reference_datapath: bool,
    /// Enable the superblock translation tier (on by default): hot basic
    /// blocks are pre-translated into fused threaded-code traces and
    /// dispatched whole. Architecturally invisible — the tier only enters
    /// a block when it can prove no timer, fault, watchdog or step-budget
    /// boundary lands inside it. Disable to force pure single-stepping
    /// (the reference semantics for differential testing).
    pub superblock_tier: bool,
    /// Nonce-diversified rekey (ciphertext side-channel mitigation, off by
    /// default): privileged software may issue fresh per-`ksel` rekey
    /// epochs that the engine folds into every tweak, so re-encrypting the
    /// same plaintext at the same address yields an unlinkable ciphertext.
    /// With the knob off no epoch is ever issued and every ciphertext is
    /// bit-identical to a build without the mitigation (epoch 0 is the
    /// identity fold).
    pub epoch_rekey: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            clb_entries: 8,
            cost: CostModel::default(),
            seed: 0x5EED_0001,
            timer_interval: None,
            reference_datapath: false,
            superblock_tier: true,
            epoch_rekey: false,
        }
    }
}

/// A control transfer out of the guest, handed to the embedder.
///
/// The miniature kernel in `regvault-kernel` acts as the privileged
/// software: it receives these events from [`Machine::run`] and manipulates
/// machine state in response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `ebreak` executed (used by bare-metal programs as a halt).
    Break,
    /// `ecall` executed; `pc` still points at the `ecall` instruction.
    Ecall {
        /// Privilege level the call was made from.
        from: Privilege,
    },
    /// An architectural exception; `pc` still points at the faulting
    /// instruction.
    Exception {
        /// The exception cause.
        cause: ExceptionCause,
        /// Faulting address or instruction bits.
        tval: u64,
    },
    /// The cycle timer fired (between instructions).
    TimerInterrupt,
}

/// The simulated RegVault machine.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) hart: Hart,
    pub(crate) mem: Memory,
    pub(crate) icache: DecodeCache,
    pub(crate) engine: CryptoEngine,
    pub(crate) cost: CostModel,
    pub(crate) stats: Stats,
    pub(crate) seed: u64,
    pub(crate) timer_interval: Option<u64>,
    pub(crate) next_timer: u64,
    pub(crate) tracer: Option<Box<dyn Tracer>>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) hot: SimCounters,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) watchdog: Option<Watchdog>,
    /// When recording, every applied fault is also appended here with its
    /// retired-instruction timestamp — the nondeterministic-input log that
    /// record/replay serializes into repro bundles.
    pub(crate) recorder: Option<crate::replay::EventLog>,
    /// Superblock tier state: translated traces, boundary profile,
    /// counters. Microarchitectural (never snapshotted; restore resets it).
    pub(crate) sb: SuperblockCache,
    /// Master switch for the tier ([`MachineConfig::superblock_tier`]).
    pub(crate) sb_enabled: bool,
    /// Master switch for nonce-diversified rekey
    /// ([`MachineConfig::epoch_rekey`]). Gates the kernel-facing epoch
    /// wrappers; the engine's fold itself is unconditional (epoch 0 is the
    /// identity).
    pub(crate) epoch_rekey: bool,
    /// `true` when the current pc was reached by a control transfer (or an
    /// event), i.e. it is a block boundary worth profiling. Purely a
    /// profiling heuristic — entering a cached block is correct from any
    /// path.
    pub(crate) sb_boundary: bool,
}

/// Compile-time guard that forked machines can move across worker threads.
///
/// The fleet hands [`Machine::fork_from`] results straight to a
/// work-stealing pool, so `Machine: Send` is load-bearing. Every concrete
/// field is `Send` structurally; the one type-erased hole is the tracer,
/// whose trait carries the bound (`Tracer: Send`). If any future field
/// (an `Rc`, a non-`Send` trait object) breaks this, the build fails here
/// rather than at a distant spawn site.
const fn assert_send<T: Send>() {}
const _: () = assert_send::<Machine>();

/// Pre-registered metric handles for the simulator's hot paths. Updating a
/// metric through a handle is one indexed add — no name lookup ever happens
/// while the machine runs.
#[derive(Debug, Clone)]
pub(crate) struct SimCounters {
    pub(crate) clb_hits: Counter,
    pub(crate) clb_misses: Counter,
    pub(crate) key_invalidations: Counter,
    /// QARMA block computations by key selector (`m`, `a`..`g`).
    pub(crate) qarma_ops: [Counter; 8],
    /// Fresh rekey epochs issued ([`Machine::issue_key_epoch`]).
    pub(crate) epoch_rekeys: Counter,
}

impl SimCounters {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        Self {
            clb_hits: metrics.counter("clb_hits"),
            clb_misses: metrics.counter("clb_misses"),
            key_invalidations: metrics.counter("key_invalidations"),
            qarma_ops: std::array::from_fn(|ksel| {
                let key = KeyReg::from_ksel(ksel as u8).expect("ksel < 8");
                metrics.counter(&format!("qarma_ops_ksel_{}", key.name()))
            }),
            epoch_rekeys: metrics.counter("epoch_rekeys"),
        }
    }
}

impl Machine {
    /// Builds a machine from `config`.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        let engine = if config.reference_datapath {
            CryptoEngine::new_reference(config.clb_entries, config.seed)
        } else {
            CryptoEngine::new(config.clb_entries, config.seed)
        };
        let mut metrics = MetricsRegistry::new();
        let hot = SimCounters::register(&mut metrics);
        Self {
            hart: Hart::new(),
            mem: Memory::new(),
            icache: DecodeCache::new(),
            engine,
            cost: config.cost,
            stats: Stats::default(),
            seed: config.seed,
            timer_interval: config.timer_interval,
            next_timer: config.timer_interval.unwrap_or(u64::MAX),
            tracer: None,
            metrics,
            hot,
            fault_plan: None,
            watchdog: None,
            recorder: None,
            sb: SuperblockCache::default(),
            sb_enabled: config.superblock_tier,
            sb_boundary: true,
            epoch_rekey: config.epoch_rekey,
        }
    }

    // --- Tracing --------------------------------------------------------

    /// Enables structured event tracing into a [`RingTracer`] holding the
    /// last `capacity` records (inspect through [`Machine::ring_trace`]).
    /// Tracing is off by default and costs one not-taken branch per
    /// emission site while off.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(RingTracer::new(capacity)));
    }

    /// Installs an arbitrary [`Tracer`] sink (replacing any existing one).
    pub fn install_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the installed tracer, if any. Downcast through
    /// [`Tracer::into_any`] to recover the concrete sink.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// `true` while a tracer is installed.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The ring buffer installed by [`Machine::enable_trace`], if that is
    /// the active tracer.
    #[must_use]
    pub fn ring_trace(&self) -> Option<&RingTracer> {
        self.tracer
            .as_deref()
            .and_then(|t| t.as_any().downcast_ref::<RingTracer>())
    }

    /// Emits one event to the installed tracer, stamped with the current
    /// cycle/instret clock. No-op (one branch) when tracing is off. This is
    /// the embedder hook: the kernel reports trap entry/exit, CIP chain
    /// activity and context switches through it.
    #[inline]
    pub fn trace_emit(&mut self, event: TraceEvent) {
        if self.tracer.is_some() {
            let record = TraceRecord {
                cycle: self.stats.cycles,
                instret: self.stats.instret,
                event,
            };
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(record);
            }
        }
    }

    /// Hot-path emission: the event value is only constructed when a tracer
    /// is installed, so the off path is a single branch.
    #[inline]
    pub(crate) fn emit_trace(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.tracer.is_some() {
            let record = TraceRecord {
                cycle: self.stats.cycles,
                instret: self.stats.instret,
                event: make(),
            };
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(record);
            }
        }
    }

    // --- Metrics --------------------------------------------------------

    /// The live metrics registry. Hot counters (`clb_hits`, `clb_misses`,
    /// per-ksel `qarma_ops_ksel_*`, `key_invalidations`) are maintained by
    /// the machine; embedders (the kernel scheduler) register and update
    /// their own metrics through [`Machine::metrics_mut`].
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable registry access for embedders registering their own metrics.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// A point-in-time export of every metric: the live registry plus
    /// counters derived from [`Stats`] and the CLB (`cycles`, `instret`,
    /// `crypto_encrypts`, `clb_evictions`, ...), so one snapshot carries
    /// the complete picture.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut out = self.metrics.clone();
        let clb = self.engine.clb().stats();
        let sb = self.sb.stats();
        for (name, value) in [
            ("cycles", self.stats.cycles),
            ("instret", self.stats.instret),
            ("crypto_encrypts", self.stats.encrypts),
            ("crypto_decrypts", self.stats.decrypts),
            ("integrity_failures", self.stats.integrity_failures),
            ("exceptions", self.stats.exceptions),
            ("timer_interrupts", self.stats.timer_interrupts),
            ("decode_hits", self.stats.decode_hits),
            ("decode_misses", self.stats.decode_misses),
            ("clb_evictions", clb.evictions),
            ("clb_invalidations", clb.invalidations),
            ("clb_occupancy", self.engine.clb().occupancy() as u64),
            ("superblock_hits", sb.hits),
            ("superblock_insns", sb.insns),
            ("superblock_side_exits", sb.side_exits),
            ("superblock_built", sb.built),
            ("superblock_invalidations", sb.invalidations),
            ("superblock_cached", sb.cached as u64),
        ] {
            let handle = out.counter(name);
            out.add(handle, value);
        }
        out
    }

    /// The hart (register/PC/privilege state).
    #[must_use]
    pub fn hart(&self) -> &Hart {
        &self.hart
    }

    /// Mutable hart access.
    pub fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }

    /// Physical memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (this is also the attacker's arbitrary
    /// read/write primitive in the penetration tests).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The crypto-engine (key registers + CLB).
    #[must_use]
    pub fn engine(&self) -> &CryptoEngine {
        &self.engine
    }

    /// Mutable crypto-engine access.
    pub fn engine_mut(&mut self) -> &mut CryptoEngine {
        &mut self.engine
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets cycle/instruction statistics and metric values (memory,
    /// registers and metric handles are kept).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        self.engine.clb_mut().reset_stats();
        self.metrics.reset_values();
        self.next_timer = self.timer_interval.unwrap_or(u64::MAX);
        // Zero the tier's counters but keep its translated traces warm —
        // reset_stats separates measurement epochs, it doesn't cool caches.
        self.sb.reset_counters();
    }

    /// The active cost model.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Copies a program image into memory at `addr`.
    pub fn load_program(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_slice(addr, bytes);
    }

    /// Kernel-privilege write of a general key register (both halves).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PrivilegeViolation`] for the master key, which no
    /// software may write (§2.3.1).
    pub fn write_key_register(&mut self, key: KeyReg, w0: u64, k0: u64) -> Result<(), SimError> {
        if key.is_master() {
            return Err(SimError::PrivilegeViolation(
                "the master key register is not software-writable".into(),
            ));
        }
        self.engine.write_key(key, Key::new(w0, k0));
        self.metrics.inc(self.hot.key_invalidations);
        self.emit_trace(|| TraceEvent::ClbInvalidate { ksel: key.ksel() });
        self.stats.retire(InsnClass::Csr, self.cost.alu);
        self.stats.retire(InsnClass::Csr, self.cost.alu);
        Ok(())
    }

    /// Writes one half of a key register through the engine, counting and
    /// tracing the CLB invalidation it triggers (the guest `csrw` datapath;
    /// privilege is checked by the executor).
    pub(crate) fn write_key_half_traced(&mut self, key: KeyReg, high_half: bool, value: u64) {
        self.engine.write_key_half(key, high_half, value);
        self.metrics.inc(self.hot.key_invalidations);
        self.emit_trace(|| TraceEvent::ClbInvalidate { ksel: key.ksel() });
    }

    /// `true` when nonce-diversified rekey is enabled
    /// ([`MachineConfig::epoch_rekey`]). The kernel consults this before
    /// issuing epochs so a machine with the knob off never leaves epoch 0.
    #[must_use]
    pub fn epoch_rekey(&self) -> bool {
        self.epoch_rekey
    }

    /// Issues a fresh rekey epoch for `key` and returns it, counting the
    /// rekey in the `epoch_rekeys` metric. See
    /// [`CryptoEngine::issue_epoch`].
    pub fn issue_key_epoch(&mut self, key: KeyReg) -> u64 {
        self.metrics.inc(self.hot.epoch_rekeys);
        self.engine.issue_epoch(key)
    }

    /// Restores a previously issued rekey epoch for `key` (context-switch
    /// restore path). See [`CryptoEngine::set_epoch`].
    pub fn set_key_epoch(&mut self, key: KeyReg, epoch: u64) {
        self.engine.set_epoch(key, epoch);
    }

    /// Central encrypt datapath: runs the engine, maintains the hot
    /// counters, and emits CLB/QARMA trace events when tracing is on. Both
    /// the guest `cre` executor and [`Machine::kernel_encrypt`] route
    /// through here so metrics and traces agree with [`ClbStats`].
    #[inline]
    pub(crate) fn engine_encrypt(
        &mut self,
        key: KeyReg,
        tweak: u64,
        value: u64,
        range: ByteRange,
    ) -> CryptoResult {
        let evictions_before = if self.tracer.is_some() {
            self.engine.clb().stats().evictions
        } else {
            0
        };
        let result = self.engine.encrypt(key, tweak, value, range);
        let ksel = key.ksel();
        if result.clb_hit {
            self.metrics.inc(self.hot.clb_hits);
            self.emit_trace(|| TraceEvent::ClbHit {
                ksel,
                decrypt: false,
            });
        } else {
            self.metrics.inc(self.hot.clb_misses);
            self.metrics.inc(self.hot.qarma_ops[ksel as usize]);
            if self.tracer.is_some() {
                self.trace_emit(TraceEvent::ClbMiss {
                    ksel,
                    decrypt: false,
                });
                // Report the effective (epoch-folded) tweak — the value the
                // cipher actually consumed.
                self.trace_emit(TraceEvent::QarmaOp {
                    ksel,
                    tweak: self.engine.effective_tweak(key, tweak),
                    decrypt: false,
                });
                if self.engine.clb().stats().evictions > evictions_before {
                    self.trace_emit(TraceEvent::ClbEvict { ksel });
                }
            }
        }
        result
    }

    /// Central decrypt datapath; see [`Machine::engine_encrypt`]. The error
    /// path carries no hit flag, so hit/miss classification falls back to
    /// the CLB hit-counter delta.
    #[inline]
    pub(crate) fn engine_decrypt(
        &mut self,
        key: KeyReg,
        tweak: u64,
        ciphertext: u64,
        range: ByteRange,
    ) -> Result<CryptoResult, IntegrityError> {
        let before = self.engine.clb().stats();
        let outcome = self.engine.decrypt(key, tweak, ciphertext, range);
        let clb_hit = match &outcome {
            Ok(result) => result.clb_hit,
            Err(_) => self.engine.clb().stats().hits > before.hits,
        };
        let ksel = key.ksel();
        if clb_hit {
            self.metrics.inc(self.hot.clb_hits);
            self.emit_trace(|| TraceEvent::ClbHit {
                ksel,
                decrypt: true,
            });
        } else {
            self.metrics.inc(self.hot.clb_misses);
            self.metrics.inc(self.hot.qarma_ops[ksel as usize]);
            if self.tracer.is_some() {
                self.trace_emit(TraceEvent::ClbMiss {
                    ksel,
                    decrypt: true,
                });
                self.trace_emit(TraceEvent::QarmaOp {
                    ksel,
                    tweak: self.engine.effective_tweak(key, tweak),
                    decrypt: true,
                });
                if self.engine.clb().stats().evictions > before.evictions {
                    self.trace_emit(TraceEvent::ClbEvict { ksel });
                }
            }
        }
        outcome
    }

    // --- Fault injection and watchdog ----------------------------------

    /// Installs a [`FaultPlan`]; due faults are applied as the machine runs
    /// (polled on every step and every kernel-modelled operation). Replaces
    /// any existing plan, discarding its applied-fault log.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan (schedule plus applied-fault log), if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Removes and returns the installed fault plan.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// Applies one fault immediately and records it in the applied-fault
    /// log (creating an empty plan to hold the log if none is installed).
    ///
    /// This is the attacker/campaign primitive for faults that must land at
    /// a precise point in host-driven code rather than at an instruction
    /// count.
    pub fn inject_fault(&mut self, kind: FaultKind) -> FaultEffect {
        if let Some(log) = self.recorder.as_mut() {
            log.push(self.stats.instret, kind);
        }
        let effect = self.apply_fault(kind);
        self.emit_trace(|| TraceEvent::Fault { kind, effect });
        let entry = AppliedFault {
            instret: self.stats.instret,
            kind,
            effect,
        };
        self.fault_plan
            .get_or_insert_with(FaultPlan::default)
            .record(entry);
        effect
    }

    /// Arms (or re-arms) the step-budget watchdog: after `budget` units of
    /// work — stepped instructions plus kernel-charged operations — the next
    /// [`Machine::step`] returns [`SimError::Timeout`] instead of running.
    pub fn arm_watchdog(&mut self, budget: u64) {
        self.watchdog = Some(Watchdog::new(budget));
    }

    /// Disarms the watchdog.
    pub fn disarm_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// The armed watchdog, if any.
    #[must_use]
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Applies every fault due at the current retired-instruction count and
    /// records the outcomes.
    fn poll_faults(&mut self) {
        // Take/restore so the applied-fault handlers can borrow `self`
        // mutably without aliasing the plan.
        let Some(mut plan) = self.fault_plan.take() else {
            return;
        };
        for kind in plan.take_due(self.stats.instret) {
            if let Some(log) = self.recorder.as_mut() {
                log.push(self.stats.instret, kind);
            }
            let effect = self.apply_fault(kind);
            self.emit_trace(|| TraceEvent::Fault { kind, effect });
            plan.record(AppliedFault {
                instret: self.stats.instret,
                kind,
                effect,
            });
        }
        self.fault_plan = Some(plan);
    }

    fn apply_fault(&mut self, kind: FaultKind) -> FaultEffect {
        match kind {
            FaultKind::MemBitFlip { addr, bit } => match self.mem.read_u64(addr) {
                Ok(word) => {
                    let flipped = word ^ (1u64 << (bit % 64));
                    self.mem.write_slice(addr, &flipped.to_le_bytes());
                    FaultEffect::Injected
                }
                Err(_) => FaultEffect::SkippedUnmapped,
            },
            FaultKind::MemWrite { addr, value } => {
                // Sparse memory maps on touch: an arbitrary write always
                // lands, matching the attacker primitive it models.
                self.mem.write_slice(addr, &value.to_le_bytes());
                FaultEffect::Injected
            }
            FaultKind::MemSwap { a, b } => match (self.mem.read_u64(a), self.mem.read_u64(b)) {
                (Ok(word_a), Ok(word_b)) => {
                    self.mem.write_slice(a, &word_b.to_le_bytes());
                    self.mem.write_slice(b, &word_a.to_le_bytes());
                    FaultEffect::Injected
                }
                _ => FaultEffect::SkippedUnmapped,
            },
            FaultKind::KeyTamper {
                ksel,
                xor_w0,
                xor_k0,
            } => {
                if xor_w0 == 0 && xor_k0 == 0 {
                    FaultEffect::SkippedNoTarget
                } else {
                    self.engine.key_file_mut().tamper(ksel, xor_w0, xor_k0);
                    FaultEffect::Injected
                }
            }
            FaultKind::ClbPoison { xor } => {
                if self.engine.clb_mut().poison_mru(xor) {
                    FaultEffect::Injected
                } else {
                    FaultEffect::SkippedNoTarget
                }
            }
        }
    }

    /// Executes one instruction (or delivers a pending timer interrupt).
    ///
    /// Returns `Some(event)` when control must pass to the embedder.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] when an armed watchdog budget is
    /// exhausted. Guest faults are never errors — they are reported as
    /// [`Event::Exception`].
    pub fn step(&mut self) -> Result<Option<Event>, SimError> {
        if let Some(dog) = &mut self.watchdog {
            if dog.expired() {
                return Err(SimError::Timeout {
                    budget: dog.budget(),
                });
            }
            dog.consume(1);
        }
        if self.stats.cycles >= self.next_timer {
            self.next_timer = self.stats.cycles + self.timer_interval.unwrap_or(u64::MAX);
            self.stats.timer_interrupts += 1;
            return Ok(Some(Event::TimerInterrupt));
        }
        self.poll_faults();
        Ok(exec::step(self))
    }

    /// Executes up to `budget` architectural steps as one unit: a whole
    /// superblock when the tier can prove equivalence, otherwise exactly
    /// one interpreter step. Returns how many [`Machine::step`] equivalents
    /// were consumed plus the event (if any) the final step produced.
    ///
    /// This is the dispatch loop under [`Machine::run`]; it is public so
    /// differential harnesses ([`crate::lockstep::run_tiered_lockstep`])
    /// can drive the tier directly and align it against a single-stepping
    /// reference.
    ///
    /// # Errors
    ///
    /// Exactly like [`Machine::step`]: [`SimError::Timeout`] when an armed
    /// watchdog budget is exhausted.
    pub fn step_tier(&mut self, budget: u64) -> Result<(u64, Option<Event>), SimError> {
        if self.sb_enabled && self.sb_boundary && self.tracer.is_none() {
            if let Some(outcome) = self.try_superblock(budget) {
                return Ok(outcome);
            }
        }
        let pc_before = self.hart.pc();
        let event = self.step()?;
        // A non-sequential pc marks the next instruction as a block
        // boundary worth profiling.
        self.sb_boundary = event.is_some() || self.hart.pc() != pc_before.wrapping_add(4);
        Ok((1, event))
    }

    /// Attempts to dispatch a superblock at the current pc. `None` falls
    /// back to single-stepping: no valid block here (or not yet hot), or
    /// one of the entry conditions — step budget, watchdog, timer, pending
    /// fault — cannot rule out an observation point inside the block.
    fn try_superblock(&mut self, budget: u64) -> Option<(u64, Option<Event>)> {
        let pc = self.hart.pc();
        let block = match self.sb.probe(pc) {
            superblock::Probe::Cold => return None,
            superblock::Probe::Hot => {
                let built = superblock::build(&self.mem, &self.cost, pc);
                self.sb.install(pc, built)?
            }
            superblock::Probe::Built => self.sb.lookup(pc, &self.mem)?,
        };

        let len = block.len;
        if len > budget {
            return None;
        }
        if let Some(dog) = &self.watchdog {
            // `remaining >= len` means every one of the `len` single steps
            // would have passed its own expiry check.
            if dog.expired() || dog.remaining() < len {
                return None;
            }
        }
        // Strict bound: cycles only grow, so if the block's worst case
        // stays below `next_timer`, no sub-step could have delivered the
        // timer.
        if self.stats.cycles.saturating_add(block.max_cycles) >= self.next_timer {
            return None;
        }
        if let Some(plan) = &self.fault_plan {
            if let Some(due) = plan.next_due() {
                if due <= self.stats.instret.saturating_add(len) {
                    return None;
                }
            }
        }

        let exit = superblock::execute(self, &block);
        self.sb.hits += 1;
        self.sb.insns += exit.retired;
        if exit.side_exit {
            self.sb.side_exits += 1;
        }
        // The trace *is* the decoded form: account its instructions as
        // decode-cache hits, like the interpreter path would.
        self.stats.decode_hits += exit.retired;
        if let Some(dog) = &mut self.watchdog {
            dog.consume(exit.consumed);
        }
        // Wherever the block exited — branch target, fall-through, fault
        // pc — the next instruction starts at a boundary.
        self.sb_boundary = true;
        Some((exit.consumed, exit.event))
    }

    /// Counters for the superblock translation tier.
    #[must_use]
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sb.stats()
    }

    /// Enables or disables the superblock tier at runtime. Off forces pure
    /// single-stepping — the reference semantics differential harnesses
    /// compare against.
    pub fn set_superblock_tier(&mut self, enabled: bool) {
        self.sb_enabled = enabled;
    }

    /// `true` while the superblock tier may dispatch traces.
    #[must_use]
    pub fn superblock_tier(&self) -> bool {
        self.sb_enabled
    }

    /// Runs until an [`Event`] occurs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] after `max_steps`
    /// instructions without an event.
    pub fn run(&mut self, max_steps: u64) -> Result<Event, SimError> {
        let mut steps = 0u64;
        while steps < max_steps {
            let (consumed, event) = self.step_tier(max_steps - steps)?;
            steps += consumed;
            if let Some(event) = event {
                return Ok(event);
            }
        }
        Err(SimError::StepLimitExceeded { limit: max_steps })
    }

    /// Runs a bare-metal program to its terminating `ebreak`.
    ///
    /// # Errors
    ///
    /// Any event other than [`Event::Break`] is reported as
    /// [`SimError::UnhandledException`]; exceeding `max_steps` yields
    /// [`SimError::StepLimitExceeded`].
    pub fn run_until_break(&mut self, max_steps: u64) -> Result<(), SimError> {
        match self.run(max_steps)? {
            Event::Break => Ok(()),
            Event::Ecall { from } => Err(SimError::UnhandledException {
                cause: match from {
                    Privilege::User => ExceptionCause::EcallFromUser,
                    Privilege::Kernel => ExceptionCause::EcallFromKernel,
                },
                pc: self.hart.pc(),
                tval: 0,
            }),
            Event::Exception { cause, tval } => Err(SimError::UnhandledException {
                cause,
                pc: self.hart.pc(),
                tval,
            }),
            Event::TimerInterrupt => Err(SimError::UnhandledException {
                cause: ExceptionCause::Breakpoint,
                pc: self.hart.pc(),
                tval: u64::MAX,
            }),
        }
    }

    /// Advances `pc` past the instruction that raised the current event
    /// (used by the kernel after servicing an `ecall`).
    pub fn advance_pc(&mut self) {
        let pc = self.hart.pc();
        self.hart.set_pc(pc + 4);
    }

    // --- Kernel-operation helpers -------------------------------------
    //
    // The miniature kernel in `regvault-kernel` is written in Rust but its
    // work must consume simulated time and exercise the same hardware
    // datapaths as compiled kernel code would. These helpers execute the
    // corresponding hardware operation *and* charge its cycles.

    /// Charges `count` instructions of `class` to the clock — used by the
    /// Rust-modelled kernel to account for straight-line work.
    ///
    /// Kernel work counts against an armed watchdog (expiry surfaces as
    /// [`SimError::Timeout`] at the next [`Machine::step`]) and advances
    /// the fault clock, so planned faults can land inside kernel-modelled
    /// operations, not only between guest instructions.
    pub fn charge(&mut self, class: InsnClass, count: u64) {
        let cycles = self.cost.cycles(class, true, false);
        self.stats.retire_n(class, cycles, count);
        if let Some(dog) = &mut self.watchdog {
            dog.consume(count);
        }
        self.poll_faults();
    }

    /// Kernel-mode `cre`: encrypt, charging crypto cycles.
    pub fn kernel_encrypt(&mut self, key: KeyReg, tweak: u64, value: u64, range: ByteRange) -> u64 {
        self.poll_faults();
        let result = self.engine_encrypt(key, tweak, value, range);
        let cycles = self.cost.cycles(InsnClass::Crypto, false, result.clb_hit);
        self.stats.retire(InsnClass::Crypto, cycles);
        self.stats.encrypts += 1;
        if let Some(dog) = &mut self.watchdog {
            dog.consume(1);
        }
        result.value
    }

    /// Kernel-mode `crd`: decrypt + integrity check, charging crypto cycles.
    ///
    /// # Errors
    ///
    /// Returns the garbage plaintext when the integrity check fails; the
    /// kernel treats this as the hardware exception it is.
    pub fn kernel_decrypt(
        &mut self,
        key: KeyReg,
        tweak: u64,
        ciphertext: u64,
        range: ByteRange,
    ) -> Result<u64, u64> {
        self.poll_faults();
        let outcome = self.engine_decrypt(key, tweak, ciphertext, range);
        let clb_hit = outcome.as_ref().map(|r| r.clb_hit).unwrap_or(false);
        let cycles = self.cost.cycles(InsnClass::Crypto, false, clb_hit);
        self.stats.retire(InsnClass::Crypto, cycles);
        self.stats.decrypts += 1;
        if let Some(dog) = &mut self.watchdog {
            dog.consume(1);
        }
        match outcome {
            Ok(result) => Ok(result.value),
            Err(err) => {
                self.stats.integrity_failures += 1;
                Err(err.plaintext)
            }
        }
    }

    /// Kernel-mode 64-bit load with cycle accounting.
    ///
    /// # Errors
    ///
    /// Returns the exception cause on access faults.
    pub fn kernel_load_u64(&mut self, addr: u64) -> Result<u64, ExceptionCause> {
        // Poll before the access so a plan-scheduled fault at this instret
        // lands before the read, matching the inject_fault ordering a
        // recorded run observed (required for bit-for-bit replay).
        self.poll_faults();
        let value = self.mem.read_u64(addr)?;
        self.charge(InsnClass::Load, 1);
        Ok(value)
    }

    /// Kernel-mode 64-bit store with cycle accounting.
    ///
    /// # Errors
    ///
    /// Returns the exception cause on access faults.
    pub fn kernel_store_u64(&mut self, addr: u64, value: u64) -> Result<(), ExceptionCause> {
        self.poll_faults();
        self.mem.write_u64(addr, value)?;
        self.emit_trace(|| TraceEvent::MemStore { addr, value });
        self.charge(InsnClass::Store, 1);
        Ok(())
    }

    // --- Recording ------------------------------------------------------

    /// Starts appending every applied fault to a fresh [`EventLog`] stamped
    /// with this machine's seed and timer configuration. Replaces any
    /// in-progress recording.
    pub fn start_recording(&mut self) {
        self.recorder = Some(crate::replay::EventLog::new(self.seed, self.timer_interval));
    }

    /// Stops recording and returns the accumulated log, if any.
    pub fn stop_recording(&mut self) -> Option<crate::replay::EventLog> {
        self.recorder.take()
    }

    /// The in-progress recording, if any.
    #[must_use]
    pub fn recording(&self) -> Option<&crate::replay::EventLog> {
        self.recorder.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::Reg;

    #[test]
    fn master_key_write_is_rejected() {
        let mut machine = Machine::new(MachineConfig::default());
        assert!(matches!(
            machine.write_key_register(KeyReg::M, 1, 2),
            Err(SimError::PrivilegeViolation(_))
        ));
    }

    #[test]
    fn kernel_crypto_round_trip_charges_cycles() {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::A, 5, 6).unwrap();
        let before = machine.stats().cycles;
        let ct = machine.kernel_encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::LOW32);
        let pt = machine
            .kernel_decrypt(KeyReg::A, 0x40, ct, ByteRange::LOW32)
            .unwrap();
        assert_eq!(pt, 0x1234);
        assert!(machine.stats().cycles > before);
        assert_eq!(machine.stats().encrypts, 1);
        assert_eq!(machine.stats().decrypts, 1);
    }

    #[test]
    fn timer_interrupt_fires_between_instructions() {
        let mut machine = Machine::new(MachineConfig {
            timer_interval: Some(10),
            ..MachineConfig::default()
        });
        let program = regvault_isa::asm::assemble(
            "loop: addi a0, a0, 1
                   j loop",
        )
        .unwrap();
        machine.load_program(0x8000_0000, program.bytes());
        machine.hart_mut().set_pc(0x8000_0000);
        let event = machine.run(1_000).unwrap();
        assert_eq!(event, Event::TimerInterrupt);
        assert!(machine.hart().reg(Reg::A0) > 0);
        assert_eq!(machine.stats().timer_interrupts, 1);
    }

    #[test]
    fn step_limit_is_reported() {
        let mut machine = Machine::new(MachineConfig::default());
        let program = regvault_isa::asm::assemble("loop: j loop").unwrap();
        machine.load_program(0x8000_0000, program.bytes());
        machine.hart_mut().set_pc(0x8000_0000);
        assert!(matches!(
            machine.run(100),
            Err(SimError::StepLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn planned_fault_lands_at_the_scheduled_instret() {
        let mut machine = Machine::new(MachineConfig::default());
        let program = regvault_isa::asm::assemble(
            "loop: addi a0, a0, 1
                   j loop",
        )
        .unwrap();
        machine.load_program(0x8000_0000, program.bytes());
        machine.hart_mut().set_pc(0x8000_0000);
        machine.memory_mut().write_u64(0x9000, 0xFF00).unwrap();
        machine.set_fault_plan(crate::fault::FaultPlan::new().at(
            10,
            FaultKind::MemBitFlip {
                addr: 0x9000,
                bit: 0,
            },
        ));
        let _ = machine.run(50);
        let log = machine.fault_plan().unwrap().applied();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].effect, FaultEffect::Injected);
        assert!(log[0].instret >= 10);
        assert_eq!(machine.memory().read_u64(0x9000).unwrap(), 0xFF01);
    }

    #[test]
    fn inject_fault_records_skips() {
        let mut machine = Machine::new(MachineConfig::default());
        let effect = machine.inject_fault(FaultKind::MemBitFlip { addr: 0x10, bit: 0 });
        assert_eq!(effect, FaultEffect::SkippedUnmapped);
        let effect = machine.inject_fault(FaultKind::ClbPoison { xor: 1 });
        assert_eq!(effect, FaultEffect::SkippedNoTarget);
        assert_eq!(machine.fault_plan().unwrap().applied().len(), 2);
    }

    #[test]
    fn watchdog_turns_runaway_guest_into_timeout() {
        let mut machine = Machine::new(MachineConfig::default());
        let program = regvault_isa::asm::assemble("loop: j loop").unwrap();
        machine.load_program(0x8000_0000, program.bytes());
        machine.hart_mut().set_pc(0x8000_0000);
        machine.arm_watchdog(25);
        assert!(matches!(
            machine.run(1_000_000),
            Err(SimError::Timeout { budget: 25 })
        ));
        machine.disarm_watchdog();
        assert!(matches!(
            machine.run(100),
            Err(SimError::StepLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn kernel_charges_consume_the_watchdog() {
        let mut machine = Machine::new(MachineConfig::default());
        machine.arm_watchdog(10);
        machine.charge(InsnClass::Alu, 10);
        assert!(machine.watchdog().unwrap().expired());
        assert!(matches!(machine.step(), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn reset_stats_clears_counters_but_not_state() {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::A, 1, 2).unwrap();
        let _ = machine.kernel_encrypt(KeyReg::A, 0, 1, ByteRange::FULL);
        machine.memory_mut().write_u64(0x100, 7).unwrap();
        machine.reset_stats();
        assert_eq!(machine.stats().cycles, 0);
        assert_eq!(machine.memory().read_u64(0x100).unwrap(), 7);
    }
}
