//! Versioned, checksummed snapshots of full architectural state.
//!
//! A [`Snapshot`] captures everything needed to resume a [`Machine`]
//! bit-for-bit: GPRs, pc, privilege, CSRs, all eight hardware key
//! registers, CLB entries in recency order, execution statistics, the
//! timer and watchdog, the pending fault schedule plus its applied log,
//! and every mapped memory page. Snapshots serialize to a little-endian
//! binary format with a magic/version header and a trailing FNV-1a-64
//! checksum; [`Snapshot::from_bytes`] rejects truncation, wrong magic,
//! unknown versions, and checksum mismatches before any field is trusted.
//!
//! Two capture flavours exist:
//!
//! * [`Machine::snapshot`] — a full image;
//! * [`Machine::snapshot_delta`] — only the pages that differ from a base
//!   snapshot (checkpoint streams during long campaigns). A delta must be
//!   [`Snapshot::rebase`]d onto its base before it can restore a machine.
//!
//! The companion [`Machine::arch_digest`] hashes the *architectural*
//! subset of that state — registers, CSRs, keys, CLB, memory contents,
//! cycle/retirement counters — and deliberately excludes microarchitectural
//! bookkeeping (decode-cache hit counters, page write generations) so the
//! optimized and reference datapaths digest identically when they agree.

use crate::clb::ClbStats;
use crate::cost::CostModel;
use crate::engine::{CryptoEngine, Watchdog};
use crate::fault::{AppliedFault, FaultEffect, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
use crate::hart::Privilege;
use crate::machine::Machine;
use crate::mem::{PageData, PAGE_BYTES};
use crate::stats::{InsnClass, Stats};
use regvault_qarma::Key;
use std::sync::Arc;

const MAGIC: [u8; 4] = *b"RVSP";
/// Version 2 added the crypto-engine rekey-epoch state (per-`ksel` epochs,
/// the global nonce counter, and the `epoch_rekey` machine knob) after the
/// key registers. Version-1 streams still decode: they predate the
/// mitigation, so every epoch is 0 (the identity fold) and the knob is off.
const VERSION: u16 = 2;

/// FNV-1a 64-bit running hash — the checksum and digest primitive. Not
/// cryptographic; it guards against corruption and drift, not adversaries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// Why a snapshot failed to decode or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the format said it would.
    Truncated,
    /// The leading magic was not `RVSP`.
    BadMagic,
    /// The version field named a format this build does not speak.
    BadVersion(u16),
    /// The trailing checksum did not match the payload.
    BadChecksum {
        /// Checksum recomputed over the payload.
        expected: u64,
        /// Checksum stored in the stream.
        found: u64,
    },
    /// A field held a value outside its domain (bad enum tag, oversized
    /// count).
    BadEncoding(&'static str),
    /// A delta snapshot was used where a full one is required, or its base
    /// digest did not match the supplied base.
    DeltaBase,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::BadMagic => write!(f, "not a RegVault snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::BadChecksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
            Self::BadEncoding(what) => write!(f, "malformed snapshot field: {what}"),
            Self::DeltaBase => write!(
                f,
                "delta snapshot requires its base (rebase before restoring)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Whether a snapshot carries every page or only those changed from a base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Self-contained: restores on its own.
    Full,
    /// Dirty pages only; must be rebased onto the base it was taken against.
    Delta,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct StatsImage {
    pub cycles: u64,
    pub instret: u64,
    pub class_counts: [u64; InsnClass::ALL.len()],
    pub encrypts: u64,
    pub decrypts: u64,
    pub integrity_failures: u64,
    pub exceptions: u64,
    pub timer_interrupts: u64,
    pub decode_hits: u64,
    pub decode_misses: u64,
}

impl StatsImage {
    fn capture(stats: &Stats) -> Self {
        Self {
            cycles: stats.cycles,
            instret: stats.instret,
            class_counts: stats.class_counts(),
            encrypts: stats.encrypts,
            decrypts: stats.decrypts,
            integrity_failures: stats.integrity_failures,
            exceptions: stats.exceptions,
            timer_interrupts: stats.timer_interrupts,
            decode_hits: stats.decode_hits,
            decode_misses: stats.decode_misses,
        }
    }

    fn apply(&self, stats: &mut Stats) {
        stats.cycles = self.cycles;
        stats.instret = self.instret;
        stats.set_class_counts(self.class_counts);
        stats.encrypts = self.encrypts;
        stats.decrypts = self.decrypts;
        stats.integrity_failures = self.integrity_failures;
        stats.exceptions = self.exceptions;
        stats.timer_interrupts = self.timer_interrupts;
        stats.decode_hits = self.decode_hits;
        stats.decode_misses = self.decode_misses;
    }
}

/// A captured machine state (see the module docs for the format).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) kind: SnapshotKind,
    pub(crate) reference_datapath: bool,
    pub(crate) seed: u64,
    pub(crate) regs: [u64; 32],
    pub(crate) pc: u64,
    pub(crate) privilege: Privilege,
    pub(crate) csrs: Vec<(u16, u64)>,
    pub(crate) keys: [(u64, u64); 8],
    pub(crate) epochs: [u64; 8],
    pub(crate) nonce_ctr: u64,
    pub(crate) epoch_rekey: bool,
    pub(crate) clb_capacity: usize,
    pub(crate) clb_entries: Vec<(u8, u64, u64, u64)>,
    pub(crate) clb_stats: ClbStats,
    pub(crate) cost: CostModel,
    pub(crate) stats: StatsImage,
    pub(crate) timer_interval: Option<u64>,
    pub(crate) next_timer: u64,
    pub(crate) watchdog: Option<(u64, u64)>,
    pub(crate) fault_pending: Vec<FaultSpec>,
    pub(crate) fault_applied: Vec<AppliedFault>,
    pub(crate) digest: u64,
    pub(crate) base_digest: Option<u64>,
    /// `(page_number, write_generation, contents)`, sorted by page number.
    ///
    /// Contents are reference-counted: capturing a snapshot shares the
    /// machine's pages instead of copying them, and restoring / forking
    /// shares them back. Copy-on-write in [`crate::Memory`] keeps every
    /// holder isolated.
    pub(crate) pages: Vec<(u64, u64, Arc<PageData>)>,
}

impl Snapshot {
    /// Full or delta?
    #[must_use]
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// The architectural digest of the machine at capture time.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Retired-instruction count at capture time.
    #[must_use]
    pub fn instret(&self) -> u64 {
        self.stats.instret
    }

    /// Number of memory pages carried by this snapshot.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Every aligned 64-bit word whose value differs between `base` and
    /// `self`, as `(address, new_value)` pairs in address order.
    ///
    /// This is the *memory-bus observation primitive* of the ciphertext
    /// side-channel oracle: an attacker who can image memory before and
    /// after a victim interval (cold-boot, DMA, a malicious hypervisor
    /// diffing guest snapshots) sees exactly these words — ciphertext
    /// included — without any simulator instrumentation. Pages still
    /// physically shared with the base (`Arc` pointer equality) are skipped
    /// without touching their bytes, so diffing forked fleets stays cheap.
    ///
    /// Pages present only in `self` are diffed against zeroes (fresh
    /// mappings started zeroed); pages present only in `base` are ignored
    /// (the machine never unmaps).
    #[must_use]
    pub fn changed_words(&self, base: &Snapshot) -> Vec<(u64, u64)> {
        const ZERO_PAGE: [u8; PAGE_BYTES] = [0; PAGE_BYTES];
        let mut out = Vec::new();
        for (no, _gen, data) in &self.pages {
            let base_page: &[u8] = match base.pages.binary_search_by_key(no, |p| p.0) {
                Ok(i) => {
                    if Arc::ptr_eq(&base.pages[i].2, data) {
                        continue;
                    }
                    &base.pages[i].2[..]
                }
                Err(_) => &ZERO_PAGE,
            };
            let page_base = no * PAGE_BYTES as u64;
            for (offset, (new, old)) in data
                .chunks_exact(8)
                .zip(base_page.chunks_exact(8))
                .enumerate()
            {
                if new != old {
                    let word = u64::from_le_bytes(new.try_into().expect("8-byte chunk"));
                    out.push((page_base + (offset * 8) as u64, word));
                }
            }
        }
        out
    }

    /// Merges a delta snapshot onto the full base it was captured against,
    /// yielding a self-contained full snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaBase`] if `self` is not a delta, `base` is not
    /// full, or the base's digest does not match the one recorded when the
    /// delta was taken.
    pub fn rebase(&self, base: &Snapshot) -> Result<Snapshot, SnapshotError> {
        if self.kind != SnapshotKind::Delta
            || base.kind != SnapshotKind::Full
            || self.base_digest != Some(base.digest)
        {
            return Err(SnapshotError::DeltaBase);
        }
        let mut merged = self.clone();
        merged.kind = SnapshotKind::Full;
        merged.base_digest = None;
        // Base pages not shadowed by a dirty page carry over unchanged.
        let mut pages = base.pages.clone();
        for dirty in &self.pages {
            match pages.binary_search_by_key(&dirty.0, |p| p.0) {
                Ok(i) => pages[i] = dirty.clone(),
                Err(i) => pages.insert(i, dirty.clone()),
            }
        }
        merged.pages = pages;
        Ok(merged)
    }

    /// Serializes to the versioned, checksummed binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024 + self.pages.len() * (PAGE_BYTES + 16));
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, VERSION);
        out.push(match self.kind {
            SnapshotKind::Full => 0,
            SnapshotKind::Delta => 1,
        });
        out.push(u8::from(self.reference_datapath));
        put_u64(&mut out, self.seed);
        for reg in self.regs {
            put_u64(&mut out, reg);
        }
        put_u64(&mut out, self.pc);
        out.push(match self.privilege {
            Privilege::User => 0,
            Privilege::Kernel => 1,
        });
        put_u32(&mut out, self.csrs.len() as u32);
        for &(addr, value) in &self.csrs {
            put_u16(&mut out, addr);
            put_u64(&mut out, value);
        }
        for &(w0, k0) in &self.keys {
            put_u64(&mut out, w0);
            put_u64(&mut out, k0);
        }
        for &epoch in &self.epochs {
            put_u64(&mut out, epoch);
        }
        put_u64(&mut out, self.nonce_ctr);
        out.push(u8::from(self.epoch_rekey));
        put_u32(&mut out, self.clb_capacity as u32);
        put_u64(&mut out, self.clb_stats.hits);
        put_u64(&mut out, self.clb_stats.misses);
        put_u64(&mut out, self.clb_stats.evictions);
        put_u64(&mut out, self.clb_stats.invalidations);
        put_u32(&mut out, self.clb_entries.len() as u32);
        for &(ksel, tweak, pt, ct) in &self.clb_entries {
            out.push(ksel);
            put_u64(&mut out, tweak);
            put_u64(&mut out, pt);
            put_u64(&mut out, ct);
        }
        for value in [
            self.cost.alu,
            self.cost.branch_not_taken,
            self.cost.branch_taken,
            self.cost.load,
            self.cost.store,
            self.cost.mul,
            self.cost.div,
            self.cost.crypto_hit,
            self.cost.crypto_miss,
            self.cost.trap,
        ] {
            put_u64(&mut out, value);
        }
        put_u64(&mut out, self.stats.cycles);
        put_u64(&mut out, self.stats.instret);
        for count in self.stats.class_counts {
            put_u64(&mut out, count);
        }
        for value in [
            self.stats.encrypts,
            self.stats.decrypts,
            self.stats.integrity_failures,
            self.stats.exceptions,
            self.stats.timer_interrupts,
            self.stats.decode_hits,
            self.stats.decode_misses,
        ] {
            put_u64(&mut out, value);
        }
        put_opt_u64(&mut out, self.timer_interval);
        put_u64(&mut out, self.next_timer);
        match self.watchdog {
            None => out.push(0),
            Some((budget, consumed)) => {
                out.push(1);
                put_u64(&mut out, budget);
                put_u64(&mut out, consumed);
            }
        }
        put_u32(&mut out, self.fault_pending.len() as u32);
        for spec in &self.fault_pending {
            let FaultTrigger::AtInstret(when) = spec.trigger;
            put_u64(&mut out, when);
            put_fault_kind(&mut out, spec.kind);
        }
        put_u32(&mut out, self.fault_applied.len() as u32);
        for entry in &self.fault_applied {
            put_u64(&mut out, entry.instret);
            put_fault_kind(&mut out, entry.kind);
            out.push(match entry.effect {
                FaultEffect::Injected => 0,
                FaultEffect::SkippedUnmapped => 1,
                FaultEffect::SkippedNoTarget => 2,
            });
        }
        put_u64(&mut out, self.digest);
        put_opt_u64(&mut out, self.base_digest);
        put_u32(&mut out, self.pages.len() as u32);
        for (no, gen, data) in &self.pages {
            put_u64(&mut out, *no);
            put_u64(&mut out, *gen);
            out.extend_from_slice(&data[..]);
        }
        let checksum = fnv64(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a snapshot, verifying magic, version, and checksum before
    /// trusting any field.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != 1 && version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let found = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let expected = fnv64(payload);
        if expected != found {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let mut r = Reader::new(&payload[6..]);
        let kind = match r.u8()? {
            0 => SnapshotKind::Full,
            1 => SnapshotKind::Delta,
            _ => return Err(SnapshotError::BadEncoding("snapshot kind")),
        };
        let reference_datapath = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::BadEncoding("datapath flag")),
        };
        let seed = r.u64()?;
        let mut regs = [0u64; 32];
        for reg in &mut regs {
            *reg = r.u64()?;
        }
        let pc = r.u64()?;
        let privilege = match r.u8()? {
            0 => Privilege::User,
            1 => Privilege::Kernel,
            _ => return Err(SnapshotError::BadEncoding("privilege")),
        };
        let csr_count = r.u32()? as usize;
        let mut csrs = Vec::with_capacity(csr_count.min(4096));
        for _ in 0..csr_count {
            csrs.push((r.u16()?, r.u64()?));
        }
        let mut keys = [(0u64, 0u64); 8];
        for key in &mut keys {
            *key = (r.u64()?, r.u64()?);
        }
        let mut epochs = [0u64; 8];
        let mut nonce_ctr = 0u64;
        let mut epoch_rekey = false;
        if version >= 2 {
            for epoch in &mut epochs {
                *epoch = r.u64()?;
            }
            nonce_ctr = r.u64()?;
            epoch_rekey = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::BadEncoding("epoch-rekey flag")),
            };
        }
        let clb_capacity = r.u32()? as usize;
        let clb_stats = ClbStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            invalidations: r.u64()?,
        };
        let entry_count = r.u32()? as usize;
        let mut clb_entries = Vec::with_capacity(entry_count.min(4096));
        for _ in 0..entry_count {
            clb_entries.push((r.u8()?, r.u64()?, r.u64()?, r.u64()?));
        }
        let cost = CostModel {
            alu: r.u64()?,
            branch_not_taken: r.u64()?,
            branch_taken: r.u64()?,
            load: r.u64()?,
            store: r.u64()?,
            mul: r.u64()?,
            div: r.u64()?,
            crypto_hit: r.u64()?,
            crypto_miss: r.u64()?,
            trap: r.u64()?,
        };
        let cycles = r.u64()?;
        let instret = r.u64()?;
        let mut class_counts = [0u64; InsnClass::ALL.len()];
        for count in &mut class_counts {
            *count = r.u64()?;
        }
        let stats = StatsImage {
            cycles,
            instret,
            class_counts,
            encrypts: r.u64()?,
            decrypts: r.u64()?,
            integrity_failures: r.u64()?,
            exceptions: r.u64()?,
            timer_interrupts: r.u64()?,
            decode_hits: r.u64()?,
            decode_misses: r.u64()?,
        };
        let timer_interval = r.opt_u64()?;
        let next_timer = r.u64()?;
        let watchdog = match r.u8()? {
            0 => None,
            1 => Some((r.u64()?, r.u64()?)),
            _ => return Err(SnapshotError::BadEncoding("watchdog flag")),
        };
        let pending_count = r.u32()? as usize;
        let mut fault_pending = Vec::with_capacity(pending_count.min(4096));
        for _ in 0..pending_count {
            let when = r.u64()?;
            fault_pending.push(FaultSpec {
                trigger: FaultTrigger::AtInstret(when),
                kind: r.fault_kind()?,
            });
        }
        let applied_count = r.u32()? as usize;
        let mut fault_applied = Vec::with_capacity(applied_count.min(4096));
        for _ in 0..applied_count {
            let instret = r.u64()?;
            let kind = r.fault_kind()?;
            let effect = match r.u8()? {
                0 => FaultEffect::Injected,
                1 => FaultEffect::SkippedUnmapped,
                2 => FaultEffect::SkippedNoTarget,
                _ => return Err(SnapshotError::BadEncoding("fault effect")),
            };
            fault_applied.push(AppliedFault {
                instret,
                kind,
                effect,
            });
        }
        let digest = r.u64()?;
        let base_digest = r.opt_u64()?;
        let page_count = r.u32()? as usize;
        let mut pages = Vec::with_capacity(page_count.min(65536));
        for _ in 0..page_count {
            let no = r.u64()?;
            let gen = r.u64()?;
            let data = r.bytes(PAGE_BYTES)?;
            let page: PageData = data
                .try_into()
                .map_err(|_| SnapshotError::BadEncoding("page size"))?;
            pages.push((no, gen, Arc::new(page)));
        }
        if !r.is_empty() {
            return Err(SnapshotError::BadEncoding("trailing bytes"));
        }
        Ok(Snapshot {
            kind,
            reference_datapath,
            seed,
            regs,
            pc,
            privilege,
            csrs,
            keys,
            epochs,
            nonce_ctr,
            epoch_rekey,
            clb_capacity,
            clb_entries,
            clb_stats,
            cost,
            stats,
            timer_interval,
            next_timer,
            watchdog,
            fault_pending,
            fault_applied,
            digest,
            base_digest,
            pages,
        })
    }
}

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

pub(crate) fn put_fault_kind(out: &mut Vec<u8>, kind: FaultKind) {
    // Uniform encoding: tag byte + three u64 operand slots.
    let (tag, f0, f1, f2) = match kind {
        FaultKind::MemBitFlip { addr, bit } => (0u8, addr, u64::from(bit), 0),
        FaultKind::MemWrite { addr, value } => (1, addr, value, 0),
        FaultKind::MemSwap { a, b } => (2, a, b, 0),
        FaultKind::KeyTamper {
            ksel,
            xor_w0,
            xor_k0,
        } => (3, u64::from(ksel), xor_w0, xor_k0),
        FaultKind::ClbPoison { xor } => (4, xor, 0, 0),
    };
    out.push(tag);
    put_u64(out, f0);
    put_u64(out, f1);
    put_u64(out, f2);
}

/// Bounds-checked little-endian reader over a snapshot payload.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.at == self.bytes.len()
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::BadEncoding("option flag")),
        }
    }

    pub(crate) fn fault_kind(&mut self) -> Result<FaultKind, SnapshotError> {
        let tag = self.u8()?;
        let f0 = self.u64()?;
        let f1 = self.u64()?;
        let f2 = self.u64()?;
        Ok(match tag {
            0 => FaultKind::MemBitFlip {
                addr: f0,
                bit: (f1 % 64) as u8,
            },
            1 => FaultKind::MemWrite {
                addr: f0,
                value: f1,
            },
            2 => FaultKind::MemSwap { a: f0, b: f1 },
            3 => FaultKind::KeyTamper {
                ksel: (f0 % 256) as u8,
                xor_w0: f1,
                xor_k0: f2,
            },
            4 => FaultKind::ClbPoison { xor: f0 },
            _ => return Err(SnapshotError::BadEncoding("fault kind")),
        })
    }
}

impl Machine {
    /// Captures a full snapshot of the machine's state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_inner(None)
    }

    /// Captures a delta snapshot against `base`: only pages whose write
    /// generation or contents differ from the base are stored. Rebase onto
    /// the same base before restoring.
    #[must_use]
    pub fn snapshot_delta(&self, base: &Snapshot) -> Snapshot {
        self.snapshot_inner(Some(base))
    }

    fn snapshot_inner(&self, base: Option<&Snapshot>) -> Snapshot {
        let keys = self.engine.key_file().raw_keys();
        let (epochs, nonce_ctr) = self.engine.epoch_state();
        let clb = self.engine.clb();
        let pages = self.mem.page_entries();
        // Capture shares the machine's pages (Arc clone, no copy); the
        // machine's next write to any page copies it out from under us.
        let stored_pages: Vec<(u64, u64, Arc<PageData>)> = match base {
            None => pages
                .iter()
                .map(|&(no, gen, data)| (no, gen, Arc::clone(data)))
                .collect(),
            Some(base) => pages
                .iter()
                .filter(|&&(no, gen, data)| {
                    match base.pages.binary_search_by_key(&no, |p| p.0) {
                        // Pointer equality proves unchanged contents without
                        // touching the 4 KiB; fall back to the byte compare
                        // for pages rewritten with identical bytes.
                        Ok(i) => {
                            base.pages[i].1 != gen
                                || (!Arc::ptr_eq(&base.pages[i].2, data)
                                    && base.pages[i].2[..] != data[..])
                        }
                        Err(_) => true,
                    }
                })
                .map(|&(no, gen, data)| (no, gen, Arc::clone(data)))
                .collect(),
        };
        Snapshot {
            kind: if base.is_some() {
                SnapshotKind::Delta
            } else {
                SnapshotKind::Full
            },
            reference_datapath: self.engine.is_reference(),
            seed: self.seed,
            regs: self.hart.regs(),
            pc: self.hart.pc(),
            privilege: self.hart.privilege(),
            csrs: self.hart.csr_entries().collect(),
            keys: keys.map(|k| (k.w0(), k.k0())),
            epochs,
            nonce_ctr,
            epoch_rekey: self.epoch_rekey,
            clb_capacity: clb.capacity(),
            clb_entries: clb.entries_lru_to_mru(),
            clb_stats: clb.stats(),
            cost: self.cost,
            stats: StatsImage::capture(&self.stats),
            timer_interval: self.timer_interval,
            next_timer: self.next_timer,
            watchdog: self.watchdog.map(|dog| (dog.budget(), dog.consumed())),
            fault_pending: self
                .fault_plan
                .as_ref()
                .map(|plan| plan.specs().to_vec())
                .unwrap_or_default(),
            fault_applied: self
                .fault_plan
                .as_ref()
                .map(|plan| plan.applied().to_vec())
                .unwrap_or_default(),
            digest: self.arch_digest(),
            base_digest: base.map(|b| b.digest),
            pages: stored_pages,
        }
    }

    /// Restores the machine to `snapshot`'s state, replacing everything:
    /// hart, memory, crypto engine (keys + CLB contents + datapath
    /// flavour), statistics, timer, watchdog, and fault plan. The decode
    /// cache is cleared (it is derived state; page write generations are
    /// restored so its lazy invalidation stays sound).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaBase`] if `snapshot` is a delta — rebase it
    /// first.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        if snapshot.kind != SnapshotKind::Full {
            return Err(SnapshotError::DeltaBase);
        }
        self.seed = snapshot.seed;
        self.hart.restore(
            snapshot.regs,
            snapshot.pc,
            snapshot.privilege,
            &snapshot.csrs,
        );
        self.mem.clear();
        for (no, gen, data) in &snapshot.pages {
            self.mem.restore_page(*no, *gen, Arc::clone(data));
        }
        self.icache = crate::icache::DecodeCache::new();
        // The superblock tier is derived state too: drop its traces and
        // profile. Page generations are restored above, so even a kept
        // trace would be validated correctly — clearing is belt and braces
        // plus counter hygiene.
        self.sb = crate::superblock::SuperblockCache::default();
        self.sb_boundary = true;
        let rebuild = self.engine.is_reference() != snapshot.reference_datapath
            || self.engine.clb().capacity() != snapshot.clb_capacity;
        if rebuild {
            self.engine = if snapshot.reference_datapath {
                CryptoEngine::new_reference(snapshot.clb_capacity, snapshot.seed)
            } else {
                CryptoEngine::new(snapshot.clb_capacity, snapshot.seed)
            };
        }
        let keys = snapshot.keys.map(|(w0, k0)| Key::new(w0, k0));
        self.engine.key_file_mut().set_raw_keys(keys);
        self.engine
            .set_epoch_state(snapshot.epochs, snapshot.nonce_ctr);
        self.epoch_rekey = snapshot.epoch_rekey;
        self.engine
            .clb_mut()
            .restore_entries(&snapshot.clb_entries, snapshot.clb_stats);
        self.cost = snapshot.cost;
        snapshot.stats.apply(&mut self.stats);
        self.timer_interval = snapshot.timer_interval;
        self.next_timer = snapshot.next_timer;
        self.watchdog = snapshot
            .watchdog
            .map(|(budget, consumed)| Watchdog::from_parts(budget, consumed));
        self.fault_plan = if snapshot.fault_pending.is_empty() && snapshot.fault_applied.is_empty()
        {
            None
        } else {
            Some(FaultPlan::from_parts(
                snapshot.fault_pending.clone(),
                snapshot.fault_applied.clone(),
            ))
        };
        Ok(())
    }

    /// Builds a fresh machine from a full snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaBase`] for delta snapshots.
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<Machine, SnapshotError> {
        let mut machine = Machine::new(crate::machine::MachineConfig {
            clb_entries: snapshot.clb_capacity,
            cost: snapshot.cost,
            seed: snapshot.seed,
            timer_interval: snapshot.timer_interval,
            reference_datapath: snapshot.reference_datapath,
            epoch_rekey: snapshot.epoch_rekey,
            ..crate::machine::MachineConfig::default()
        });
        machine.restore(snapshot)?;
        Ok(machine)
    }

    /// Forks a machine from a warm snapshot, SnapStart-style.
    ///
    /// The fork *shares* every memory page with the snapshot (and with
    /// every other fork of it): materialization cost is O(mapped pages)
    /// pointer clones plus the fixed-size architectural state — no page
    /// contents are copied. The first write a fork makes to any page
    /// copies exactly that page (copy-on-write), so a fleet of N forks
    /// pays only for the pages it actually dirties. `Machine` is `Send`,
    /// so forks can be handed straight to worker threads.
    ///
    /// Semantically identical to [`Machine::from_snapshot`] (which shares
    /// pages the same way since the CoW store landed); this entry point
    /// exists to name the fleet idiom and anchor its cost contract.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaBase`] for delta snapshots — rebase first.
    pub fn fork_from(snapshot: &Snapshot) -> Result<Machine, SnapshotError> {
        Machine::from_snapshot(snapshot)
    }

    /// Number of this machine's pages whose contents have diverged from
    /// (are no longer physically shared with) `base` — the copy-on-write
    /// dirty-page count a fork has accumulated since [`Machine::fork_from`].
    ///
    /// Pages the machine mapped that the base never had count as dirty;
    /// base pages the machine still shares count as clean.
    #[must_use]
    pub fn cow_dirty_pages(&self, base: &Snapshot) -> usize {
        let entries = self.mem.page_entries();
        entries
            .iter()
            .filter(
                |&&(no, _, data)| match base.pages.binary_search_by_key(&no, |p| p.0) {
                    Ok(i) => !Arc::ptr_eq(&base.pages[i].2, data),
                    Err(_) => true,
                },
            )
            .count()
    }

    /// Digest of the machine's architectural state: registers, pc,
    /// privilege, CSRs, key registers, CLB entries and statistics, memory
    /// contents, and the architectural counters (cycles, instret, per-class
    /// retirements, crypto/exception/timer counts).
    ///
    /// Deliberately excluded: decode-cache hit/miss counters and page write
    /// generations (microarchitectural), the watchdog and fault plan
    /// (harness state). Two machines that executed the same architectural
    /// history digest identically even when one runs the reference datapath
    /// — which is precisely what the lockstep executor checks.
    #[must_use]
    pub fn arch_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for reg in self.hart.regs() {
            h.write_u64(reg);
        }
        h.write_u64(self.hart.pc());
        h.write(&[match self.hart.privilege() {
            Privilege::User => 0,
            Privilege::Kernel => 1,
        }]);
        for (addr, value) in self.hart.csr_entries() {
            h.write(&addr.to_le_bytes());
            h.write_u64(value);
        }
        for key in self.engine.key_file().raw_keys() {
            h.write_u64(key.w0());
            h.write_u64(key.k0());
        }
        // Rekey epochs are architectural: they change which effective tweak
        // every subsequent cre/crd uses, so two machines can only claim the
        // same history if their epoch state agrees. Always-zero on machines
        // without the mitigation, so digests stay comparable there.
        let (epochs, nonce_ctr) = self.engine.epoch_state();
        for epoch in epochs {
            h.write_u64(epoch);
        }
        h.write_u64(nonce_ctr);
        for (ksel, tweak, pt, ct) in self.engine.clb().entries_lru_to_mru() {
            h.write(&[ksel]);
            h.write_u64(tweak);
            h.write_u64(pt);
            h.write_u64(ct);
        }
        let clb_stats = self.engine.clb().stats();
        for value in [
            clb_stats.hits,
            clb_stats.misses,
            clb_stats.evictions,
            clb_stats.invalidations,
        ] {
            h.write_u64(value);
        }
        for (no, _gen, data) in self.mem.page_entries() {
            h.write_u64(no);
            h.write(&data[..]);
        }
        h.write_u64(self.stats.cycles);
        h.write_u64(self.stats.instret);
        for count in self.stats.class_counts() {
            h.write_u64(count);
        }
        for value in [
            self.stats.encrypts,
            self.stats.decrypts,
            self.stats.integrity_failures,
            self.stats.exceptions,
            self.stats.timer_interrupts,
        ] {
            h.write_u64(value);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use regvault_isa::KeyReg;

    fn busy_machine() -> Machine {
        let mut machine = Machine::new(MachineConfig::default());
        let program = regvault_isa::asm::assemble(
            "li   t1, 0x9000
             li   s0, 0x9000
             li   a0, 0xbeef
             creak a0, a0[3:0], t1
             sd   a0, 0(s0)
             ld   a1, 0(s0)
             crdak a1, a1, t1, [3:0]
             ebreak",
        )
        .unwrap();
        machine.load_program(0x8000_0000, program.bytes());
        machine.write_key_register(KeyReg::A, 0xAA, 0xBB).unwrap();
        machine.hart_mut().set_pc(0x8000_0000);
        machine.run_until_break(1_000).unwrap();
        machine
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let machine = busy_machine();
        let snap = machine.snapshot();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn restore_reproduces_arch_digest() {
        let machine = busy_machine();
        let snap = machine.snapshot();
        let restored = Machine::from_snapshot(&snap).unwrap();
        assert_eq!(machine.arch_digest(), restored.arch_digest());
        assert_eq!(machine.stats(), restored.stats());
    }

    #[test]
    fn corrupted_byte_is_rejected() {
        let bytes = busy_machine().snapshot().to_bytes();
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncation_magic_and_version_are_rejected() {
        let bytes = busy_machine().snapshot().to_bytes();
        // A cut tail shifts the checksum window: rejected as corruption.
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::BadChecksum { .. })
        ));
        assert_eq!(
            Snapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 0x7F;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(SnapshotError::BadVersion(_))
        ));
    }

    #[test]
    fn delta_rebase_matches_full() {
        let mut machine = busy_machine();
        let base = machine.snapshot();
        // Touch one page; the delta should carry only what changed.
        machine.memory_mut().write_u64(0x9000, 0x1234).unwrap();
        machine.memory_mut().write_u64(0xA000, 0x5678).unwrap();
        let full = machine.snapshot();
        let delta = machine.snapshot_delta(&base);
        assert!(delta.page_count() < full.page_count() || full.page_count() <= 2);
        let rebased = delta.rebase(&base).unwrap();
        assert_eq!(rebased, full);
        assert_eq!(
            Machine::from_snapshot(&rebased).unwrap().arch_digest(),
            machine.arch_digest()
        );
    }

    #[test]
    fn epoch_state_round_trips_through_snapshots() {
        let mut machine = Machine::new(MachineConfig {
            epoch_rekey: true,
            ..MachineConfig::default()
        });
        machine.write_key_register(KeyReg::C, 0x1, 0x2).unwrap();
        let e1 = machine.issue_key_epoch(KeyReg::C);
        machine.issue_key_epoch(KeyReg::D);
        machine.set_key_epoch(KeyReg::C, e1);
        let snap = machine.snapshot();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, decoded);
        let restored = Machine::from_snapshot(&decoded).unwrap();
        assert!(restored.epoch_rekey());
        assert_eq!(
            restored.engine().epoch(KeyReg::C),
            machine.engine().epoch(KeyReg::C)
        );
        assert_eq!(machine.arch_digest(), restored.arch_digest());
        // Epochs are architectural: advancing one changes the digest.
        let before = machine.arch_digest();
        machine.issue_key_epoch(KeyReg::C);
        assert_ne!(machine.arch_digest(), before);
    }

    #[test]
    fn version_1_streams_decode_with_zero_epochs() {
        let machine = busy_machine();
        let snap = machine.snapshot();
        let bytes = snap.to_bytes();
        // Splice the epoch block (8 epochs + nonce counter + knob byte =
        // 73 bytes, located right after the 128-byte key block) out of the
        // v2 stream, patch the version to 1, and re-checksum — yielding
        // exactly what a v1 build would have written.
        let csr_count_at = 6 + 1 + 1 + 8 + 32 * 8 + 8 + 1;
        let csr_count =
            u32::from_le_bytes(bytes[csr_count_at..csr_count_at + 4].try_into().unwrap()) as usize;
        let epochs_at = csr_count_at + 4 + csr_count * 10 + 128;
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&bytes[..epochs_at]);
        v1.extend_from_slice(&bytes[epochs_at + 73..bytes.len() - 8]);
        v1[4] = 1;
        v1[5] = 0;
        let checksum = fnv64(&v1);
        v1.extend_from_slice(&checksum.to_le_bytes());
        let decoded = Snapshot::from_bytes(&v1).unwrap();
        assert_eq!(decoded.epochs, [0; 8]);
        assert_eq!(decoded.nonce_ctr, 0);
        assert!(!decoded.epoch_rekey);
        assert_eq!(decoded.regs, snap.regs);
        assert_eq!(decoded.pages.len(), snap.pages.len());
    }

    #[test]
    fn changed_words_sees_exactly_the_stores() {
        let mut machine = busy_machine();
        let base = machine.snapshot();
        machine.memory_mut().write_u64(0x9100, 0xAAAA).unwrap();
        machine.memory_mut().write_u64(0xA008, 0xBBBB).unwrap();
        let after = machine.snapshot();
        let diff = after.changed_words(&base);
        assert!(diff.contains(&(0x9100, 0xAAAA)));
        assert!(diff.contains(&(0xA008, 0xBBBB)));
        // Nothing else on the 0x9000 page changed.
        assert_eq!(
            diff.iter()
                .filter(|(a, _)| (0x9000..0xA000).contains(a))
                .count(),
            1
        );
        assert!(after.changed_words(&after).is_empty());
    }

    #[test]
    fn delta_restore_without_rebase_is_refused() {
        let mut machine = busy_machine();
        let base = machine.snapshot();
        machine.memory_mut().write_u64(0x9000, 1).unwrap();
        let delta = machine.snapshot_delta(&base);
        assert_eq!(machine.restore(&delta), Err(SnapshotError::DeltaBase));
        let other = Machine::new(MachineConfig::default()).snapshot();
        assert_eq!(delta.rebase(&other), Err(SnapshotError::DeltaBase));
    }
}
