//! Cycle cost model.

use crate::stats::InsnClass;

/// Per-instruction-class cycle costs for the cycle-accounting model.
///
/// Defaults approximate an in-order Rocket-class core, with the QARMA
/// latency taken from the paper's FPGA measurement ("our implementation of
/// the crypto-engine completes the QARMA cipher in 3 cycles", §4.2) and a
/// single-cycle CLB hit (§2.3.3: results are "sent to the pipeline
/// directly").
///
/// # Examples
///
/// ```
/// use regvault_sim::CostModel;
///
/// let model = CostModel::default();
/// assert_eq!(model.crypto_miss, 3);
/// assert_eq!(model.crypto_hit, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU / CSR / fence instructions.
    pub alu: u64,
    /// Not-taken branch.
    pub branch_not_taken: u64,
    /// Taken branch / jump (pipeline redirect).
    pub branch_taken: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// `cre`/`crd` with a CLB hit.
    pub crypto_hit: u64,
    /// `cre`/`crd` that runs the full QARMA datapath.
    pub crypto_miss: u64,
    /// Trap entry / return (`ecall`, exception dispatch, `sret`).
    pub trap: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alu: 1,
            branch_not_taken: 1,
            branch_taken: 2,
            load: 2,
            store: 1,
            mul: 3,
            div: 16,
            crypto_hit: 1,
            crypto_miss: 3,
            trap: 4,
        }
    }
}

impl CostModel {
    /// Cycles for an instruction of the given class (crypto classes already
    /// resolved to hit or miss).
    #[must_use]
    pub fn cycles(&self, class: InsnClass, branch_taken: bool, crypto_hit: bool) -> u64 {
        match class {
            InsnClass::Alu | InsnClass::Csr => self.alu,
            InsnClass::Branch => {
                if branch_taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            InsnClass::Jump => self.branch_taken,
            InsnClass::Load => self.load,
            InsnClass::Store => self.store,
            InsnClass::Mul => self.mul,
            InsnClass::Div => self.div,
            InsnClass::Crypto => {
                if crypto_hit {
                    self.crypto_hit
                } else {
                    self.crypto_miss
                }
            }
            InsnClass::System => self.trap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_cost_depends_on_clb() {
        let model = CostModel::default();
        assert_eq!(model.cycles(InsnClass::Crypto, false, true), 1);
        assert_eq!(model.cycles(InsnClass::Crypto, false, false), 3);
    }

    #[test]
    fn branch_cost_depends_on_direction() {
        let model = CostModel::default();
        assert!(
            model.cycles(InsnClass::Branch, true, false)
                > model.cycles(InsnClass::Branch, false, false)
        );
    }
}
