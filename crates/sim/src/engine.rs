//! The RegVault crypto-engine and hardware key register file.

use rand::{Rng, SeedableRng};
use regvault_isa::{ByteRange, KeyReg};
use regvault_qarma::{fold_tweak, reference::Reference, Key, Qarma64};

use crate::clb::Clb;

/// The eight 128-bit hardware key registers.
///
/// Software access rules (enforced by [`crate::Machine`], not here — this
/// type is the *hardware* register file):
///
/// * user mode: no access;
/// * kernel: may write `a`–`g`, may never read any key;
/// * master key `m`: no software read or write; initialized by hardware at
///   reset and used by `cre`/`crd` with `ksel = m` to wrap the per-thread
///   keys the kernel parks in memory (§2.3.1, §3.1.1).
#[derive(Debug, Clone)]
pub struct KeyRegFile {
    keys: [Key; 8],
}

impl KeyRegFile {
    /// Creates a register file with the master key drawn from `seed` and the
    /// general keys zeroed (the boot-time kernel installs real values).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut keys = [Key::default(); 8];
        keys[KeyReg::M.ksel() as usize] = Key::new(rng.gen(), rng.gen());
        Self { keys }
    }

    /// Hardware-internal read of a key register.
    ///
    /// This is the datapath the crypto-engine uses; it deliberately has no
    /// software-facing equivalent. Tests may use it to validate ciphertexts,
    /// which is fine under the paper's threat model (the attacker "cannot
    /// read or write the registers directly").
    #[must_use]
    pub fn key(&self, key: KeyReg) -> Key {
        self.keys[key.ksel() as usize]
    }

    /// Replaces a whole key register.
    pub fn set_key(&mut self, key: KeyReg, value: Key) {
        self.keys[key.ksel() as usize] = value;
    }

    /// Writes the low (core, `k0`) half of a key register.
    pub fn set_lo(&mut self, key: KeyReg, k0: u64) {
        let old = self.key(key);
        self.set_key(key, Key::new(old.w0(), k0));
    }

    /// Writes the high (whitening, `w0`) half of a key register.
    pub fn set_hi(&mut self, key: KeyReg, w0: u64) {
        let old = self.key(key);
        self.set_key(key, Key::new(w0, old.k0()));
    }

    /// Fault-injection hook: XORs the halves of register `ksel` in place.
    ///
    /// This models a glitched/flipped hardware register, not a software key
    /// write — it accepts any selector including the master key and does
    /// *not* trigger the CLB invalidation a software write performs (the
    /// register changed under the CLB's feet). Selectors are taken modulo 8.
    pub fn tamper(&mut self, ksel: u8, xor_w0: u64, xor_k0: u64) {
        let index = usize::from(ksel % 8);
        let old = self.keys[index];
        self.keys[index] = Key::new(old.w0() ^ xor_w0, old.k0() ^ xor_k0);
    }

    /// All eight registers by `ksel` index (snapshot support).
    pub(crate) fn raw_keys(&self) -> [Key; 8] {
        self.keys
    }

    /// Overwrites all eight registers (snapshot restore).
    pub(crate) fn set_raw_keys(&mut self, keys: [Key; 8]) {
        self.keys = keys;
    }
}

/// A step-budget watchdog for wedged or runaway guests.
///
/// The embedder arms it via [`crate::Machine::arm_watchdog`]; the machine
/// charges it one unit per stepped instruction and per kernel-modelled
/// operation, and turns expiry into [`crate::SimError::Timeout`] instead of
/// spinning forever. Unlike the `run(max_steps)` limit — which bounds a
/// single run call — the watchdog budget persists across calls until
/// disarmed or re-armed, so a kernel can bound the *total* work a guest
/// thread performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    budget: u64,
    consumed: u64,
}

impl Watchdog {
    /// A watchdog allowing `budget` units of work.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            consumed: 0,
        }
    }

    /// The armed budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Units of work left before expiry.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.consumed)
    }

    /// `true` once the budget is fully consumed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.consumed >= self.budget
    }

    /// Charges `units` of work against the budget.
    pub fn consume(&mut self, units: u64) {
        self.consumed = self.consumed.saturating_add(units);
    }

    /// Units of work consumed so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Rebuilds a watchdog mid-budget (snapshot restore).
    pub(crate) fn from_parts(budget: u64, consumed: u64) -> Self {
        Self { budget, consumed }
    }
}

/// Error raised by a failed `crd` integrity check: the bytes outside the
/// selected range did not decrypt to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// The (garbage) plaintext the decryption produced.
    pub plaintext: u64,
}

/// The result of one crypto-engine operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoResult {
    /// Output value (ciphertext for encrypt, plaintext for decrypt).
    pub value: u64,
    /// `true` if the CLB supplied the result without running QARMA.
    pub clb_hit: bool,
}

/// The crypto-engine of §2.3.2: key register file + QARMA-64 datapath +
/// cryptographic lookaside buffer.
///
/// # Examples
///
/// ```
/// use regvault_isa::{ByteRange, KeyReg};
/// use regvault_qarma::Key;
/// use regvault_sim::CryptoEngine;
///
/// let mut engine = CryptoEngine::new(8, 42);
/// engine.key_file_mut().set_key(KeyReg::A, Key::new(1, 2));
/// let enc = engine.encrypt(KeyReg::A, 0x40, 0xdead, ByteRange::FULL);
/// let dec = engine.decrypt(KeyReg::A, 0x40, enc.value, ByteRange::FULL).unwrap();
/// assert_eq!(dec.value, 0xdead);
/// assert!(dec.clb_hit, "second op on same tuple hits the CLB");
/// ```
#[derive(Debug, Clone)]
pub struct CryptoEngine {
    keys: KeyRegFile,
    clb: Clb,
    /// Per-`ksel` cache of constructed [`Qarma64`] instances (each carries a
    /// precomputed key schedule). Validated against the live register on
    /// every use, so out-of-band key changes — [`KeyRegFile::tamper`], raw
    /// [`CryptoEngine::key_file_mut`] writes — can never serve a stale
    /// schedule.
    ciphers: [Option<Qarma64>; 8],
    /// Route every cipher computation through the cell-level
    /// [`Reference`] datapath instead of the SWAR [`Qarma64`] core (and
    /// pair it with the naive CLB). The lockstep differential executor
    /// co-runs one engine of each flavour.
    reference: bool,
    /// Per-`ksel` rekey epoch folded into every tweak (ciphertext
    /// side-channel mitigation). Epoch 0 — the reset state — is the
    /// identity fold, so an engine that never issues an epoch behaves
    /// bit-identically to one without the mitigation.
    epochs: [u64; 8],
    /// Global monotone nonce source for [`CryptoEngine::issue_epoch`].
    /// Issued values are never reused: restores via
    /// [`CryptoEngine::set_epoch`] rewind a slot's epoch but not the
    /// counter, so the next issue is still fresh machine-wide.
    nonce_ctr: u64,
}

impl CryptoEngine {
    /// Creates an engine with `clb_entries` CLB slots and a master key
    /// seeded from `seed`.
    #[must_use]
    pub fn new(clb_entries: usize, seed: u64) -> Self {
        Self {
            keys: KeyRegFile::new(seed),
            clb: Clb::new(clb_entries),
            ciphers: Default::default(),
            reference: false,
            epochs: [0; 8],
            nonce_ctr: 0,
        }
    }

    /// Creates a reference-datapath engine: cell-level QARMA (no SWAR
    /// tables, no cached key schedules) plus the naive linear-scan CLB.
    /// Architecturally identical to [`CryptoEngine::new`] — any observable
    /// difference is a bug, which is exactly what the lockstep executor
    /// hunts.
    #[must_use]
    pub fn new_reference(clb_entries: usize, seed: u64) -> Self {
        Self {
            keys: KeyRegFile::new(seed),
            clb: Clb::new_reference(clb_entries),
            ciphers: Default::default(),
            reference: true,
            epochs: [0; 8],
            nonce_ctr: 0,
        }
    }

    /// `true` when this engine runs the reference datapath.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// The hardware key register file.
    #[must_use]
    pub fn key_file(&self) -> &KeyRegFile {
        &self.keys
    }

    /// Mutable access to the key register file (hardware/boot path).
    ///
    /// Writing through this accessor does **not** invalidate CLB entries;
    /// software key updates must go through [`CryptoEngine::write_key`].
    pub fn key_file_mut(&mut self) -> &mut KeyRegFile {
        &mut self.keys
    }

    /// The cryptographic lookaside buffer.
    #[must_use]
    pub fn clb(&self) -> &Clb {
        &self.clb
    }

    /// Mutable access to the CLB (for statistics resets).
    pub fn clb_mut(&mut self) -> &mut Clb {
        &mut self.clb
    }

    /// Software-visible key update: replaces one 64-bit half of a key
    /// register and invalidates the stale CLB entries for that `ksel`.
    pub fn write_key_half(&mut self, key: KeyReg, high_half: bool, value: u64) {
        if high_half {
            self.keys.set_hi(key, value);
        } else {
            self.keys.set_lo(key, value);
        }
        self.clb.invalidate_ksel(key.ksel());
    }

    /// Software-visible whole-key update (both halves, one invalidation).
    pub fn write_key(&mut self, key: KeyReg, value: Key) {
        self.keys.set_key(key, value);
        self.clb.invalidate_ksel(key.ksel());
    }

    /// Issues a fresh rekey epoch for `key` and returns it.
    ///
    /// Epochs come from a global monotone counter, so an issued value is
    /// unique machine-wide and never reused — even across
    /// [`CryptoEngine::set_epoch`] rewinds. CLB entries are *not*
    /// invalidated: they are keyed by the effective (folded) tweak, so
    /// entries created under older epochs remain valid mappings that the
    /// matching [`CryptoEngine::set_epoch`] restore can hit again.
    pub fn issue_epoch(&mut self, key: KeyReg) -> u64 {
        self.nonce_ctr += 1;
        self.epochs[key.ksel() as usize] = self.nonce_ctr;
        self.nonce_ctr
    }

    /// Restores a previously issued epoch for `key` (e.g. on context-switch
    /// restore, from the nonce the matching save parked in the frame).
    /// Does not advance the global counter.
    pub fn set_epoch(&mut self, key: KeyReg, epoch: u64) {
        self.epochs[key.ksel() as usize] = epoch;
    }

    /// The current rekey epoch of `key` (0 = never rekeyed; identity fold).
    #[must_use]
    pub fn epoch(&self, key: KeyReg) -> u64 {
        self.epochs[key.ksel() as usize]
    }

    /// The effective tweak `key`'s current epoch folds `tweak` into — the
    /// value actually presented to the CLB and the cipher.
    #[must_use]
    pub fn effective_tweak(&self, key: KeyReg, tweak: u64) -> u64 {
        fold_tweak(tweak, self.epochs[key.ksel() as usize])
    }

    /// All eight epochs plus the nonce counter (snapshot support).
    pub(crate) fn epoch_state(&self) -> ([u64; 8], u64) {
        (self.epochs, self.nonce_ctr)
    }

    /// Overwrites the epoch state (snapshot restore).
    pub(crate) fn set_epoch_state(&mut self, epochs: [u64; 8], nonce_ctr: u64) {
        self.epochs = epochs;
        self.nonce_ctr = nonce_ctr;
    }

    fn cipher(&mut self, key: KeyReg) -> &Qarma64 {
        let current = self.keys.key(key);
        let slot = &mut self.ciphers[key.ksel() as usize];
        if slot.as_ref().map(Qarma64::key) != Some(current) {
            *slot = Some(Qarma64::new(current));
        }
        slot.as_ref().expect("cipher just cached")
    }

    /// One cipher computation through the configured datapath. The
    /// reference path rebuilds the cell-level cipher from the live register
    /// on every call — deliberately no schedule caching, so stale-schedule
    /// bugs in the fast path cannot be masked by an equivalent cache here.
    fn compute(&mut self, key: KeyReg, tweak: u64, input: u64, decrypt: bool) -> u64 {
        if self.reference {
            let cipher = Reference::new(self.keys.key(key));
            return if decrypt {
                cipher.decrypt(input, tweak)
            } else {
                cipher.encrypt(input, tweak)
            };
        }
        let cipher = self.cipher(key);
        if decrypt {
            cipher.decrypt(input, tweak)
        } else {
            cipher.encrypt(input, tweak)
        }
    }

    /// Executes the `cre` datapath: mask `value` to `range` (bytes outside
    /// are zeroed, §2.3.1), then encrypt under `key` with `tweak`.
    pub fn encrypt(
        &mut self,
        key: KeyReg,
        tweak: u64,
        value: u64,
        range: ByteRange,
    ) -> CryptoResult {
        let plaintext = value & range.mask();
        let ksel = key.ksel();
        let tweak = fold_tweak(tweak, self.epochs[ksel as usize]);
        if let Some(ciphertext) = self.clb.lookup_encrypt(ksel, tweak, plaintext) {
            return CryptoResult {
                value: ciphertext,
                clb_hit: true,
            };
        }
        let ciphertext = self.compute(key, tweak, plaintext, false);
        self.clb.insert(ksel, tweak, plaintext, ciphertext);
        CryptoResult {
            value: ciphertext,
            clb_hit: false,
        }
    }

    /// Executes the `crd` datapath: decrypt, then check that every byte
    /// outside `range` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] when the zero check fails — the hardware
    /// raises an integrity exception in that case.
    pub fn decrypt(
        &mut self,
        key: KeyReg,
        tweak: u64,
        ciphertext: u64,
        range: ByteRange,
    ) -> Result<CryptoResult, IntegrityError> {
        let ksel = key.ksel();
        let tweak = fold_tweak(tweak, self.epochs[ksel as usize]);
        let (plaintext, clb_hit) = match self.clb.lookup_decrypt(ksel, tweak, ciphertext) {
            Some(pt) => (pt, true),
            None => {
                let pt = self.compute(key, tweak, ciphertext, true);
                self.clb.insert(ksel, tweak, pt, ciphertext);
                (pt, false)
            }
        };
        if plaintext & !range.mask() != 0 {
            return Err(IntegrityError { plaintext });
        }
        Ok(CryptoResult {
            value: plaintext,
            clb_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CryptoEngine {
        let mut engine = CryptoEngine::new(8, 7);
        engine
            .key_file_mut()
            .set_key(KeyReg::A, Key::new(0x11, 0x22));
        engine
            .key_file_mut()
            .set_key(KeyReg::B, Key::new(0x33, 0x44));
        engine
    }

    #[test]
    fn master_key_is_random_per_seed() {
        let a = KeyRegFile::new(1).key(KeyReg::M);
        let b = KeyRegFile::new(2).key(KeyReg::M);
        assert_ne!(a, b);
        assert_eq!(a, KeyRegFile::new(1).key(KeyReg::M), "deterministic");
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut engine = engine();
        let enc = engine.encrypt(KeyReg::A, 0x1000, 0xABCD, ByteRange::FULL);
        assert!(!enc.clb_hit);
        let dec = engine
            .decrypt(KeyReg::A, 0x1000, enc.value, ByteRange::FULL)
            .unwrap();
        assert_eq!(dec.value, 0xABCD);
        assert!(dec.clb_hit);
    }

    #[test]
    fn range_masks_before_encrypting() {
        let mut engine = engine();
        // High bytes of the input are ignored for a [3:0] encryption.
        let a = engine.encrypt(KeyReg::A, 0, 0xFFFF_FFFF_0000_1234, ByteRange::LOW32);
        let b = engine.encrypt(KeyReg::A, 0, 0x0000_0000_0000_1234, ByteRange::LOW32);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn integrity_check_catches_corruption() {
        let mut engine = engine();
        let enc = engine.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::LOW32);
        let corrupted = enc.value ^ 0x1;
        let err = engine
            .decrypt(KeyReg::A, 0x40, corrupted, ByteRange::LOW32)
            .unwrap_err();
        assert_ne!(err.plaintext & 0xFFFF_FFFF_0000_0000, 0);
    }

    #[test]
    fn integrity_check_catches_wrong_tweak() {
        // Substituting an encrypted 32-bit value stored at another address
        // (different tweak) trips the zero check with overwhelming
        // probability.
        let mut engine = engine();
        let enc = engine.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::LOW32);
        assert!(engine
            .decrypt(KeyReg::A, 0x48, enc.value, ByteRange::LOW32)
            .is_err());
    }

    #[test]
    fn full_range_decrypt_never_fails_integrity() {
        let mut engine = engine();
        // [7:0] has no redundancy: any ciphertext decrypts "successfully"
        // (to garbage under corruption) — confidentiality-only protection.
        let result = engine.decrypt(KeyReg::A, 0, 0xDEAD_BEEF_0BAD_F00D, ByteRange::FULL);
        assert!(result.is_ok());
    }

    #[test]
    fn software_key_write_invalidates_clb() {
        let mut engine = engine();
        let enc = engine.encrypt(KeyReg::A, 0, 0x5555, ByteRange::FULL);
        engine.write_key(KeyReg::A, Key::new(0x99, 0xAA));
        // Old ciphertext no longer decrypts to the old plaintext.
        let dec = engine
            .decrypt(KeyReg::A, 0, enc.value, ByteRange::FULL)
            .unwrap();
        assert!(!dec.clb_hit, "stale entry must be gone");
        assert_ne!(dec.value, 0x5555);
    }

    #[test]
    fn keys_are_isolated_per_register() {
        let mut engine = engine();
        let with_a = engine.encrypt(KeyReg::A, 0, 0x77, ByteRange::FULL);
        let with_b = engine.encrypt(KeyReg::B, 0, 0x77, ByteRange::FULL);
        assert_ne!(with_a.value, with_b.value);
    }

    #[test]
    fn tamper_skips_clb_invalidation() {
        let mut engine = engine();
        let enc = engine.encrypt(KeyReg::A, 0, 0x77, ByteRange::FULL);
        engine.key_file_mut().tamper(KeyReg::A.ksel(), 0x1, 0x2);
        // The stale CLB entry still serves the old mapping — the register
        // changed under the buffer's feet, exactly the hardware-fault case.
        let dec = engine
            .decrypt(KeyReg::A, 0, enc.value, ByteRange::FULL)
            .unwrap();
        assert!(dec.clb_hit);
        assert_eq!(dec.value, 0x77);
        // A fresh computation uses the tampered key and disagrees.
        engine.clb_mut().invalidate_all();
        let dec = engine
            .decrypt(KeyReg::A, 0, enc.value, ByteRange::FULL)
            .unwrap();
        assert_ne!(dec.value, 0x77);
    }

    #[test]
    fn watchdog_expires_exactly_at_budget() {
        let mut dog = Watchdog::new(3);
        assert!(!dog.expired());
        dog.consume(2);
        assert_eq!(dog.remaining(), 1);
        assert!(!dog.expired());
        dog.consume(1);
        assert!(dog.expired());
        assert_eq!(dog.remaining(), 0);
        dog.consume(u64::MAX); // saturates, no overflow panic
        assert!(dog.expired());
    }

    #[test]
    fn epoch_zero_matches_unmitigated_ciphertexts() {
        let mut plain = engine();
        let mut epoch = engine();
        // An engine that never issues an epoch is bit-identical.
        assert_eq!(epoch.epoch(KeyReg::A), 0);
        let a = plain.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::FULL);
        let b = epoch.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::FULL);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn fresh_epoch_diversifies_ciphertexts() {
        let mut engine = engine();
        let before = engine.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::FULL);
        let epoch = engine.issue_epoch(KeyReg::A);
        assert_ne!(epoch, 0);
        let after = engine.encrypt(KeyReg::A, 0x40, 0x1234, ByteRange::FULL);
        assert_ne!(before.value, after.value, "same write, fresh epoch");
        // The new ciphertext still round-trips under the live epoch.
        let dec = engine
            .decrypt(KeyReg::A, 0x40, after.value, ByteRange::FULL)
            .unwrap();
        assert_eq!(dec.value, 0x1234);
    }

    #[test]
    fn set_epoch_restores_decryptability() {
        let mut engine = engine();
        let e1 = engine.issue_epoch(KeyReg::A);
        let ct = engine.encrypt(KeyReg::A, 0x40, 0xBEEF, ByteRange::LOW32);
        let e2 = engine.issue_epoch(KeyReg::A);
        assert!(e2 > e1, "counter is monotone");
        // Under the newer epoch the old ciphertext garbles / fails integrity.
        assert!(engine
            .decrypt(KeyReg::A, 0x40, ct.value, ByteRange::LOW32)
            .is_err());
        // Restoring the issuing epoch brings it back.
        engine.set_epoch(KeyReg::A, e1);
        let dec = engine
            .decrypt(KeyReg::A, 0x40, ct.value, ByteRange::LOW32)
            .unwrap();
        assert_eq!(dec.value, 0xBEEF);
    }

    #[test]
    fn issue_epoch_never_reuses_a_nonce_across_rewinds() {
        let mut engine = engine();
        let e1 = engine.issue_epoch(KeyReg::A);
        engine.set_epoch(KeyReg::A, 0); // rewind the slot...
        let e2 = engine.issue_epoch(KeyReg::A);
        assert!(e2 > e1, "...but the global counter never rewinds");
    }

    #[test]
    fn epochs_are_per_ksel() {
        let mut engine = engine();
        engine.issue_epoch(KeyReg::A);
        assert_eq!(engine.epoch(KeyReg::B), 0, "other slots untouched");
        let with_b = engine.encrypt(KeyReg::B, 0, 0x77, ByteRange::FULL);
        let mut fresh = CryptoEngine::new(8, 7);
        fresh
            .key_file_mut()
            .set_key(KeyReg::B, Key::new(0x33, 0x44));
        let baseline = fresh.encrypt(KeyReg::B, 0, 0x77, ByteRange::FULL);
        assert_eq!(with_b.value, baseline.value);
    }

    #[test]
    fn half_writes_compose_a_key() {
        let mut engine = CryptoEngine::new(0, 0);
        engine.write_key_half(KeyReg::C, false, 0xAAAA);
        engine.write_key_half(KeyReg::C, true, 0xBBBB);
        assert_eq!(engine.key_file().key(KeyReg::C), Key::new(0xBBBB, 0xAAAA));
    }
}
