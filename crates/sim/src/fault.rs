//! Deterministic fault injection.
//!
//! RegVault's security argument is that corrupted randomized data is
//! *detected or garbled, never silently used* (Table 4; §4.3.2). Proving
//! that on eight hand-written attacks is weak evidence; this module lets a
//! campaign throw seeded, reproducible hardware faults at every layer the
//! paper protects:
//!
//! * guest-memory bit flips and overwrites ([`FaultKind::MemBitFlip`],
//!   [`FaultKind::MemWrite`]),
//! * tweak/address substitution — swapping two ciphertext words between
//!   their storage addresses ([`FaultKind::MemSwap`]),
//! * key-register tampering that bypasses the software write path and its
//!   CLB invalidation, modelling a glitched register
//!   ([`FaultKind::KeyTamper`]),
//! * CLB entry poisoning ([`FaultKind::ClbPoison`]).
//!
//! A [`FaultPlan`] schedules faults at chosen retired-instruction counts;
//! [`crate::Machine`] polls the plan on every step and on every
//! kernel-modelled operation, applies due faults, and records what actually
//! happened in the plan's applied-fault log. Faults can also be injected
//! immediately through [`crate::Machine::inject_fault`].
//!
//! Everything here is deterministic: the same plan against the same machine
//! and program produces the same applied-fault log, which is what makes the
//! campaign reports in `fault_campaign` reproducible.

/// A single architectural fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` (0–63) of the 64-bit word at `addr` — a DRAM
    /// disturbance or rowhammer-style flip on guest memory.
    MemBitFlip {
        /// Word-aligned guest address.
        addr: u64,
        /// Bit index within the word (taken modulo 64).
        bit: u8,
    },
    /// Overwrite the 64-bit word at `addr` with `value` — the classic
    /// arbitrary-write attacker primitive.
    MemWrite {
        /// Guest address.
        addr: u64,
        /// Value to plant.
        value: u64,
    },
    /// Swap the 64-bit words at `a` and `b` — spatial/tweak substitution:
    /// both words stay valid ciphertexts, each now at the wrong address.
    MemSwap {
        /// First guest address.
        a: u64,
        /// Second guest address.
        b: u64,
    },
    /// XOR the halves of hardware key register `ksel` in place, *without*
    /// the CLB invalidation a software key write performs — a glitched
    /// register, not a privileged update.
    KeyTamper {
        /// Key selector (0 = master, 1–7 = general; taken modulo 8).
        ksel: u8,
        /// XOR applied to the whitening half (`w0`).
        xor_w0: u64,
        /// XOR applied to the core half (`k0`).
        xor_k0: u64,
    },
    /// XOR `xor` into the plaintext of the most-recently-used valid CLB
    /// entry — a bit upset in the lookaside buffer's data array.
    ClbPoison {
        /// XOR applied to the cached plaintext.
        xor: u64,
    },
}

/// When a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fires once the machine has retired at least this many instructions
    /// (kernel-modelled operations count too).
    AtInstret(u64),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to do.
    pub kind: FaultKind,
}

/// What actually happened when a fault was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// The fault landed on its target.
    Injected,
    /// The targeted memory was unmapped; nothing was changed.
    SkippedUnmapped,
    /// No target existed (e.g. CLB poison with an empty buffer).
    SkippedNoTarget,
}

/// A log entry: one fault the machine applied (or tried to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedFault {
    /// Retired-instruction count at injection time.
    pub instret: u64,
    /// The fault that fired.
    pub kind: FaultKind,
    /// Whether it landed.
    pub effect: FaultEffect,
}

/// A deterministic schedule of faults plus the log of what fired.
///
/// # Examples
///
/// ```
/// use regvault_sim::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .at(100, FaultKind::MemBitFlip { addr: 0x9000, bit: 3 })
///     .at(250, FaultKind::ClbPoison { xor: 0xFFFF });
/// assert_eq!(plan.pending(), 2);
/// assert!(plan.applied().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pending: Vec<FaultSpec>,
    applied: Vec<AppliedFault>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder form: schedules `kind` at retired-instruction count
    /// `instret`.
    #[must_use]
    pub fn at(mut self, instret: u64, kind: FaultKind) -> Self {
        self.push(FaultSpec {
            trigger: FaultTrigger::AtInstret(instret),
            kind,
        });
        self
    }

    /// Schedules one fault.
    pub fn push(&mut self, spec: FaultSpec) {
        self.pending.push(spec);
    }

    /// Number of faults not yet fired.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The log of faults that fired, in firing order.
    #[must_use]
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Every not-yet-fired fault, in schedule order.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.pending
    }

    /// Rebuilds a plan from a pending schedule plus an applied-fault log
    /// (snapshot restore).
    #[must_use]
    pub fn from_parts(pending: Vec<FaultSpec>, applied: Vec<AppliedFault>) -> Self {
        Self { pending, applied }
    }

    /// Earliest pending trigger point, `None` when the schedule is empty.
    /// The superblock tier refuses to enter a block that would retire past
    /// this instret, so injected faults always land on the exact
    /// architectural step.
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.pending
            .iter()
            .map(|spec| {
                let FaultTrigger::AtInstret(when) = spec.trigger;
                when
            })
            .min()
    }

    /// Removes and returns every fault due at `instret`, preserving
    /// schedule order.
    pub(crate) fn take_due(&mut self, instret: u64) -> Vec<FaultKind> {
        let mut due = Vec::new();
        self.pending.retain(|spec| {
            let FaultTrigger::AtInstret(when) = spec.trigger;
            if when <= instret {
                due.push(spec.kind);
                false
            } else {
                true
            }
        });
        due
    }

    /// Appends a log entry.
    pub(crate) fn record(&mut self, entry: AppliedFault) {
        self.applied.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_faults_fire_in_schedule_order() {
        let mut plan = FaultPlan::new()
            .at(10, FaultKind::MemWrite { addr: 1, value: 2 })
            .at(5, FaultKind::ClbPoison { xor: 3 })
            .at(100, FaultKind::MemSwap { a: 0, b: 8 });
        let due = plan.take_due(10);
        assert_eq!(
            due,
            vec![
                FaultKind::MemWrite { addr: 1, value: 2 },
                FaultKind::ClbPoison { xor: 3 },
            ]
        );
        assert_eq!(plan.pending(), 1);
        assert!(plan.take_due(99).is_empty());
        assert_eq!(plan.take_due(100).len(), 1);
    }

    #[test]
    fn record_appends_to_the_log() {
        let mut plan = FaultPlan::new();
        plan.record(AppliedFault {
            instret: 7,
            kind: FaultKind::KeyTamper {
                ksel: 2,
                xor_w0: 1,
                xor_k0: 0,
            },
            effect: FaultEffect::Injected,
        });
        assert_eq!(plan.applied().len(), 1);
        assert_eq!(plan.applied()[0].instret, 7);
    }
}
