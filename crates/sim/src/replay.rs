//! Record/replay: the event log of nondeterministic inputs, self-contained
//! repro bundles, and the delta-debugging shrinker.
//!
//! The simulator itself is deterministic; every source of "nondeterminism"
//! in a run enters through a narrow funnel — the construction seed, the
//! timer configuration, and injected faults. An [`EventLog`] captures that
//! funnel: while [`crate::Machine::start_recording`] is active, every fault
//! the machine applies (immediate [`crate::Machine::inject_fault`] calls
//! and plan-scheduled faults alike) is appended with its
//! retired-instruction timestamp. Re-running the same program from the same
//! seed and re-applying the log reproduces the run bit-for-bit — verified
//! by comparing [`crate::Machine::arch_digest`].
//!
//! A [`ReproBundle`] packages everything a failure needs to travel: free-form
//! metadata, an optional starting [`Snapshot`], the event log, the expected
//! final digest, and the observed outcome. Bundles serialize with the same
//! magic/version/FNV-checksum discipline as snapshots.
//!
//! [`shrink_events`] is a classic ddmin minimizer over the event list:
//! given a predicate that replays a candidate log and reports whether the
//! failure still reproduces, it returns a 1-minimal sublist (removing any
//! single remaining event makes the failure vanish).

use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
use crate::snapshot::{fnv64, put_fault_kind, Reader, Snapshot, SnapshotError};

const MAGIC: [u8; 4] = *b"RVRB";
const VERSION: u16 = 1;

/// One recorded nondeterministic input: a fault that fired at a specific
/// retired-instruction count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedEvent {
    /// Retired-instruction count when the fault was applied.
    pub instret: u64,
    /// The fault.
    pub kind: FaultKind,
}

/// Append-only log of every nondeterministic input to a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    /// Machine construction seed (fixes the master key).
    pub seed: u64,
    /// Timer configuration of the recorded machine.
    pub timer_interval: Option<u64>,
    /// Faults in application order.
    pub events: Vec<LoggedEvent>,
}

impl EventLog {
    /// An empty log for a machine built with `seed` and `timer_interval`.
    #[must_use]
    pub fn new(seed: u64, timer_interval: Option<u64>) -> Self {
        Self {
            seed,
            timer_interval,
            events: Vec::new(),
        }
    }

    /// Appends one event.
    pub fn push(&mut self, instret: u64, kind: FaultKind) {
        self.events.push(LoggedEvent { instret, kind });
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts the log into a [`FaultPlan`] that re-applies every event at
    /// its recorded retired-instruction count.
    #[must_use]
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for event in &self.events {
            plan.push(FaultSpec {
                trigger: FaultTrigger::AtInstret(event.instret),
                kind: event.kind,
            });
        }
        plan
    }

    /// A copy of this log carrying `events` instead of the originals (the
    /// shrinker's candidate constructor).
    #[must_use]
    pub fn with_events(&self, events: Vec<LoggedEvent>) -> Self {
        Self {
            seed: self.seed,
            timer_interval: self.timer_interval,
            events,
        }
    }
}

/// A self-contained reproduction of one failing run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproBundle {
    /// Free-form `(key, value)` pairs describing provenance (campaign
    /// class, config, seed, verdict, ...).
    pub meta: Vec<(String, String)>,
    /// Starting state; `None` means "a fresh machine built from the log's
    /// seed" (the embedder re-creates program/kernel setup itself).
    pub snapshot: Option<Snapshot>,
    /// The nondeterministic inputs.
    pub log: EventLog,
    /// Architectural digest the replayed run must reach.
    pub expected_digest: u64,
    /// Step bound the original run used.
    pub steps: u64,
    /// Human-readable outcome label (e.g. a campaign verdict).
    pub outcome: String,
}

impl ReproBundle {
    /// Looks up a metadata value by key.
    #[must_use]
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the bundle (magic `RVRB`, version, FNV-checksummed).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        for (key, value) in &self.meta {
            put_str(&mut out, key);
            put_str(&mut out, value);
        }
        put_str(&mut out, &self.outcome);
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.extend_from_slice(&self.expected_digest.to_le_bytes());
        out.extend_from_slice(&self.log.seed.to_le_bytes());
        match self.log.timer_interval {
            None => out.push(0),
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.log.events.len() as u32).to_le_bytes());
        for event in &self.log.events {
            out.extend_from_slice(&event.instret.to_le_bytes());
            put_fault_kind(&mut out, event.kind);
        }
        match &self.snapshot {
            None => out.push(0),
            Some(snap) => {
                out.push(1);
                let bytes = snap.to_bytes();
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
        }
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a bundle, verifying magic, version, and checksum first.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`] (bundles share the snapshot error domain).
    pub fn from_bytes(bytes: &[u8]) -> Result<ReproBundle, SnapshotError> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let found = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let expected = fnv64(payload);
        if expected != found {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let mut r = Reader::new(&payload[6..]);
        let meta_count = r.u32()? as usize;
        let mut meta = Vec::with_capacity(meta_count.min(256));
        for _ in 0..meta_count {
            meta.push((read_str(&mut r)?, read_str(&mut r)?));
        }
        let outcome = read_str(&mut r)?;
        let steps = r.u64()?;
        let expected_digest = r.u64()?;
        let seed = r.u64()?;
        let timer_interval = r.opt_u64()?;
        let event_count = r.u32()? as usize;
        let mut events = Vec::with_capacity(event_count.min(65536));
        for _ in 0..event_count {
            let instret = r.u64()?;
            events.push(LoggedEvent {
                instret,
                kind: r.fault_kind()?,
            });
        }
        let snapshot = match r.u8()? {
            0 => None,
            1 => {
                let len = r.u64()? as usize;
                Some(Snapshot::from_bytes(r.bytes(len)?)?)
            }
            _ => return Err(SnapshotError::BadEncoding("snapshot flag")),
        };
        if !r.is_empty() {
            return Err(SnapshotError::BadEncoding("trailing bytes"));
        }
        Ok(ReproBundle {
            meta,
            snapshot,
            log: EventLog {
                seed,
                timer_interval,
                events,
            },
            expected_digest,
            steps,
            outcome,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>) -> Result<String, SnapshotError> {
    let len = r.u32()? as usize;
    String::from_utf8(r.bytes(len)?.to_vec())
        .map_err(|_| SnapshotError::BadEncoding("utf-8 string"))
}

/// Minimizes `events` with the ddmin delta-debugging algorithm: `fails`
/// replays a candidate event list and returns `true` when the failure still
/// reproduces. The result is 1-minimal — removing any single remaining
/// event makes `fails` return `false`.
///
/// The caller's predicate is the expensive part; ddmin calls it
/// O(n²) times in the worst case but typically O(n log n).
pub fn shrink_events<F>(events: &[LoggedEvent], mut fails: F) -> Vec<LoggedEvent>
where
    F: FnMut(&[LoggedEvent]) -> bool,
{
    let mut current: Vec<LoggedEvent> = events.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    // An empty log that still fails is already minimal.
    if fails(&[]) {
        return Vec::new();
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk alone, then each complement.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<LoggedEvent> = current[start..end].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            let complement: Vec<LoggedEvent> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !complement.is_empty() && complement.len() < current.len() && fails(&complement) {
                current = complement;
                granularity = (granularity - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> LoggedEvent {
        LoggedEvent {
            instret: i,
            kind: FaultKind::MemWrite {
                addr: 0x9000 + i * 8,
                value: i,
            },
        }
    }

    #[test]
    fn bundle_round_trips() {
        let mut log = EventLog::new(42, Some(1000));
        log.push(5, FaultKind::ClbPoison { xor: 0xFF });
        log.push(
            9,
            FaultKind::KeyTamper {
                ksel: 3,
                xor_w0: 1,
                xor_k0: 2,
            },
        );
        let bundle = ReproBundle {
            meta: vec![("class".into(), "mem_bit_flip".into())],
            snapshot: None,
            log,
            expected_digest: 0xDEAD_BEEF,
            steps: 10_000,
            outcome: "Garbled".into(),
        };
        let decoded = ReproBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(bundle, decoded);
        assert_eq!(decoded.meta_value("class"), Some("mem_bit_flip"));
    }

    #[test]
    fn corrupted_bundle_is_rejected() {
        let bundle = ReproBundle {
            meta: vec![],
            snapshot: None,
            log: EventLog::new(1, None),
            expected_digest: 0,
            steps: 0,
            outcome: "ok".into(),
        };
        let mut bytes = bundle.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert!(matches!(
            ReproBundle::from_bytes(&bytes),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn ddmin_finds_single_culprit() {
        let events: Vec<LoggedEvent> = (0..100).map(event).collect();
        let culprit = event(37);
        let mut calls = 0;
        let minimal = shrink_events(&events, |candidate| {
            calls += 1;
            candidate.contains(&culprit)
        });
        assert_eq!(minimal, vec![culprit]);
        assert!(calls < 200, "ddmin should stay subquadratic here: {calls}");
    }

    #[test]
    fn ddmin_finds_interacting_pair() {
        let events: Vec<LoggedEvent> = (0..64).map(event).collect();
        let a = event(3);
        let b = event(60);
        let minimal = shrink_events(&events, |candidate| {
            candidate.contains(&a) && candidate.contains(&b)
        });
        assert_eq!(minimal, vec![a, b]);
    }

    #[test]
    fn ddmin_keeps_passing_input_unchanged() {
        let events: Vec<LoggedEvent> = (0..8).map(event).collect();
        let minimal = shrink_events(&events, |_| false);
        assert_eq!(minimal.len(), 8, "non-failing input is returned as-is");
    }

    #[test]
    fn to_plan_preserves_timestamps() {
        let mut log = EventLog::new(0, None);
        log.push(10, FaultKind::ClbPoison { xor: 1 });
        log.push(20, FaultKind::ClbPoison { xor: 2 });
        let mut plan = log.to_plan();
        assert_eq!(plan.pending(), 2);
        assert_eq!(plan.take_due(10).len(), 1);
        assert_eq!(plan.take_due(20).len(), 1);
    }
}
