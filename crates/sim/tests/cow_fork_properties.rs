//! Copy-on-write fork properties and the micro-reboot equivalence
//! regression:
//!
//! * N machines forked from one snapshot are fully isolated — each fork
//!   sees exactly its own writes, under any interleaving;
//! * a fork that never writes stays bit-for-bit identical to the parent
//!   image (its architectural digest equals the snapshot's);
//! * a micro-rebooted machine (re-forked from the warm snapshot after
//!   running and being corrupted) is indistinguishable from a machine
//!   freshly restored from the same snapshot: identical step results and
//!   architectural digests over a 10k-step lockstep run;
//! * microarchitectural state (superblock tier, decode cache) resets
//!   across a restore and re-warms without architectural effect.

use proptest::prelude::*;
use regvault_isa::{asm, KeyReg, Reg};
use regvault_sim::{Machine, MachineConfig};

const TEXT_BASE: u64 = 0x8000_0000;
const DATA_BASE: u64 = 0x9000;
const DATA_SLOTS: u64 = 256;

/// A warm parent: keys programmed, data region mapped and zeroed, a
/// crypto round-trip loop loaded and run once to the break.
fn warm_machine(seed: u64, iters: u64) -> Machine {
    let program = asm::assemble(&format!(
        "li   t1, 0x9000
         li   s0, 0x9000
         li   s2, {iters}
loop:
         creak a0, a0[3:0], t1
         sd   a0, 0(s0)
         ld   a1, 0(s0)
         crdak a1, a1, t1, [3:0]
         addi a0, a1, 1
         addi s2, s2, -1
         blt  zero, s2, loop
         ebreak"
    ))
    .expect("loop assembles");
    let mut machine = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    machine
        .write_key_register(KeyReg::A, seed | 1, seed.rotate_left(17) | 1)
        .expect("general key");
    for slot in 0..DATA_SLOTS {
        machine
            .memory_mut()
            .write_u64(DATA_BASE + slot * 8, 0)
            .expect("data region maps");
    }
    machine.load_program(TEXT_BASE, program.bytes());
    machine.hart_mut().set_pc(TEXT_BASE);
    machine
}

proptest! {
    /// Forks are isolated: each of N forks sees exactly its own writes
    /// (tagged by fork index), no matter how writes interleave, and a fork
    /// that never wrote still matches the parent image bit-for-bit.
    #[test]
    fn forks_are_isolated_under_interleaved_writes(
        seed in any::<u64>(),
        forks in 2usize..6,
        writes in prop::collection::vec((0..6usize, 0..DATA_SLOTS, any::<u64>()), 1..64),
    ) {
        let mut parent = warm_machine(seed, 4);
        parent.hart_mut().set_reg(Reg::A0, 0x5EED);
        parent.run_until_break(10_000).expect("warm run");
        let snap = parent.snapshot();

        let mut fleet: Vec<Machine> = (0..forks)
            .map(|_| Machine::fork_from(&snap).expect("fork"))
            .collect();
        // One extra fork that never writes: the bit-for-bit control.
        let untouched = Machine::fork_from(&snap).expect("control fork");

        for &(who, slot, value) in &writes {
            let who = who % forks;
            // Tag the value with the writer so collisions are detectable.
            let tagged = value ^ (who as u64).rotate_left(56);
            fleet[who]
                .memory_mut()
                .write_u64(DATA_BASE + slot * 8, tagged)
                .expect("fork write");
        }

        // Replay the log per fork to compute what each one must see.
        for (who, fork) in fleet.iter().enumerate() {
            let mut expected = vec![None; DATA_SLOTS as usize];
            for &(w, slot, value) in &writes {
                if w % forks == who {
                    expected[slot as usize] = Some(value ^ (who as u64).rotate_left(56));
                }
            }
            for (slot, want) in expected.iter().enumerate() {
                let addr = DATA_BASE + slot as u64 * 8;
                let got = fork.memory().read_u64(addr).expect("fork read");
                match want {
                    Some(v) => prop_assert_eq!(got, *v, "fork {} slot {}", who, slot),
                    None => {
                        let parent_val = untouched.memory().read_u64(addr).expect("read");
                        prop_assert_eq!(got, parent_val, "fork {} slot {} must stay parent's", who, slot);
                    }
                }
            }
        }

        // The control fork never wrote: still the parent image, exactly.
        prop_assert_eq!(untouched.arch_digest(), snap.digest());
        prop_assert_eq!(untouched.arch_digest(), parent.arch_digest());
        prop_assert_eq!(untouched.cow_dirty_pages(&snap), 0);
        // And it still shares every page with the parent (CoW, not copies).
        prop_assert_eq!(
            untouched.memory().shared_pages_with(parent.memory()),
            snap.page_count()
        );
    }
}

/// The micro-reboot regression: a machine that ran past the warm point,
/// got corrupted, and was re-forked from the warm snapshot must be
/// bit-for-bit equivalent to a machine freshly restored from that same
/// snapshot — identical step results and architectural digests over a
/// 10k-step lockstep run.
#[test]
fn micro_reboot_is_bit_for_bit_equivalent_to_fresh_restore() {
    let mut parent = warm_machine(7, 4_000);
    parent.hart_mut().set_reg(Reg::A0, 0xBEEF);
    let warm = parent.snapshot();

    // The "crashed" instance: runs a while, then gets scribbled on.
    let mut crashed = Machine::fork_from(&warm).expect("fork");
    // The budget ends mid-loop by design: we want a partially-run machine.
    let _ = crashed.run(2_500);
    crashed
        .memory_mut()
        .write_u64(TEXT_BASE, 0xDEAD_DEAD_DEAD_DEAD)
        .expect("corrupt code page");
    let _ = crashed.write_key_register(KeyReg::A, 0, 0);

    // Micro-reboot: discard the wreck, re-fork the warm image.
    let mut rebooted = Machine::fork_from(&warm).expect("micro-reboot fork");
    assert_eq!(
        rebooted.arch_digest(),
        warm.digest(),
        "restore-integrity check"
    );
    // Microarchitectural state must not leak across the reboot.
    let sb = rebooted.superblock_stats();
    assert_eq!(sb.hits, 0, "superblock tier resets across restore");

    // The reference: a fresh boot-to-snapshot machine.
    let mut fresh = Machine::from_snapshot(&warm).expect("fresh restore");

    let mut steps = 0u64;
    while steps < 10_000 {
        let a = rebooted.step();
        let b = fresh.step();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "step {steps}: rebooted and fresh diverged"
        );
        steps += 1;
        if steps.is_multiple_of(1_000) {
            assert_eq!(
                rebooted.arch_digest(),
                fresh.arch_digest(),
                "digest divergence at step {steps}"
            );
        }
        if !matches!(a, Ok(None)) {
            break;
        }
    }
    assert!(
        steps >= 10_000,
        "loop body must sustain 10k lockstep steps, got {steps}"
    );
    assert_eq!(rebooted.arch_digest(), fresh.arch_digest());

    // Run both to the break through the batch path (single-stepping above
    // bypasses the superblock tier by design): the tier re-warms on the
    // rebooted machine with no architectural effect.
    rebooted
        .run_until_break(1_000_000)
        .expect("rebooted finishes");
    fresh.run_until_break(1_000_000).expect("fresh finishes");
    assert_eq!(rebooted.arch_digest(), fresh.arch_digest());
    assert!(
        rebooted.superblock_stats().hits > 0,
        "hot loop re-enters the superblock tier after restore"
    );
}

/// Forking is O(shared pointers): the fork shares every page with the
/// snapshot until written, and writing one page dirties exactly one.
#[test]
fn fork_copies_nothing_until_written() {
    let mut parent = warm_machine(3, 4);
    parent.hart_mut().set_reg(Reg::A0, 1);
    parent.run_until_break(10_000).expect("warm run");
    let snap = parent.snapshot();

    let mut fork = Machine::fork_from(&snap).expect("fork");
    assert_eq!(fork.cow_dirty_pages(&snap), 0);
    // Slot 1 — the warm loop only touches slot 0 as its scratch word.
    let addr = DATA_BASE + 8;
    let parent_before = parent.memory().read_u64(addr).unwrap();
    fork.memory_mut().write_u64(addr, 42).expect("one write");
    assert_eq!(fork.cow_dirty_pages(&snap), 1, "one write dirties one page");
    assert_eq!(
        fork.memory().shared_pages_with(parent.memory()),
        snap.page_count() - 1
    );
    // The parent is untouched by the fork's write.
    assert_eq!(parent.memory().read_u64(addr).unwrap(), parent_before);
    assert_ne!(fork.memory().read_u64(addr).unwrap(), parent_before);
}
