//! Integration tests for the deterministic fault-injection machinery:
//! plans replay identically, poisoned CLB entries never outlive a software
//! key write, key tampering changes the effective key, and the watchdog
//! converts runaway guests into typed timeouts.

use proptest::prelude::*;
use regvault_isa::{asm, ByteRange, KeyReg};
use regvault_sim::{FaultEffect, FaultKind, FaultPlan, Machine, MachineConfig, SimError};

fn looping_machine() -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = asm::assemble(
        "loop: addi a0, a0, 1
               j loop",
    )
    .unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine
}

/// Runs one seeded plan against a fresh machine and returns the applied
/// log plus the final state of the targeted words.
fn replay(plan: FaultPlan) -> (Vec<(u64, FaultEffect)>, u64, u64) {
    let mut machine = looping_machine();
    machine.memory_mut().write_u64(0x9000, 0xAAAA_BBBB).unwrap();
    machine.memory_mut().write_u64(0x9008, 0xCCCC_DDDD).unwrap();
    machine.set_fault_plan(plan);
    let _ = machine.run(200);
    let log = machine
        .fault_plan()
        .unwrap()
        .applied()
        .iter()
        .map(|entry| (entry.instret, entry.effect))
        .collect();
    (
        log,
        machine.memory().read_u64(0x9000).unwrap(),
        machine.memory().read_u64(0x9008).unwrap(),
    )
}

#[test]
fn identical_plans_replay_identically() {
    let plan = || {
        FaultPlan::new()
            .at(
                10,
                FaultKind::MemBitFlip {
                    addr: 0x9000,
                    bit: 13,
                },
            )
            .at(
                40,
                FaultKind::MemSwap {
                    a: 0x9000,
                    b: 0x9008,
                },
            )
            .at(
                90,
                FaultKind::MemWrite {
                    addr: 0x9008,
                    value: 0x1234,
                },
            )
    };
    let first = replay(plan());
    let second = replay(plan());
    assert_eq!(first, second, "same plan, same machine, same outcome");
    assert_eq!(first.0.len(), 3, "every scheduled fault fired");
    assert!(first.0.iter().all(|&(_, e)| e == FaultEffect::Injected));
}

#[test]
fn key_tamper_changes_the_effective_key_for_cold_lookups() {
    // Encrypt under the genuine key on one machine...
    let mut clean = Machine::new(MachineConfig::default());
    clean.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
    let ct = clean.kernel_encrypt(KeyReg::D, 0x40, 77, ByteRange::LOW32);

    // ...and decrypt on a machine whose key register was glitched before
    // its CLB ever cached the genuine plaintext key.
    let mut glitched = Machine::new(MachineConfig::default());
    glitched.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
    let effect = glitched.inject_fault(FaultKind::KeyTamper {
        ksel: KeyReg::D.ksel(),
        xor_w0: 0xDEAD_BEEF,
        xor_k0: 0x5555,
    });
    assert_eq!(effect, FaultEffect::Injected);
    assert!(
        glitched
            .kernel_decrypt(KeyReg::D, 0x40, ct, ByteRange::LOW32)
            .is_err(),
        "integrity-checked decrypt under the tampered key must fail"
    );
}

#[test]
fn key_tamper_is_masked_while_the_clb_stays_warm() {
    // The paper's CLB caches the *plaintext* key per ksel; a glitched key
    // register therefore stays invisible until the cached line is dropped.
    let mut machine = Machine::new(MachineConfig::default());
    machine.write_key_register(KeyReg::D, 0xD0, 0xD1).unwrap();
    let ct = machine.kernel_encrypt(KeyReg::D, 0x40, 77, ByteRange::LOW32);
    machine.inject_fault(FaultKind::KeyTamper {
        ksel: KeyReg::D.ksel(),
        xor_w0: 0xDEAD_BEEF,
        xor_k0: 0x5555,
    });
    assert_eq!(
        machine
            .kernel_decrypt(KeyReg::D, 0x40, ct, ByteRange::LOW32)
            .unwrap(),
        77,
        "warm CLB line masks the glitch"
    );
}

#[test]
fn watchdog_timeout_is_typed_and_disarmable() {
    let mut machine = looping_machine();
    machine.arm_watchdog(50);
    match machine.run(1_000_000) {
        Err(SimError::Timeout { budget }) => assert_eq!(budget, 50),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(machine.watchdog().unwrap().expired());
    machine.disarm_watchdog();
    assert!(machine.watchdog().is_none());
    assert!(matches!(
        machine.run(100),
        Err(SimError::StepLimitExceeded { limit: 100 })
    ));
}

proptest! {
    /// A poisoned CLB line must never be served after a software key
    /// write to that ksel: `write_key_register` invalidates per-ksel, so
    /// post-write decrypts always come from a fresh key computation.
    #[test]
    fn poisoned_clb_lines_never_survive_a_key_write(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        xor in 1u64..,
        value in 0u64..0xFFFF_FFFF,
        tweak in any::<u64>(),
    ) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::E, w0, k0).unwrap();
        // Warm the CLB line for key E, then poison it.
        let ct = machine.kernel_encrypt(KeyReg::E, tweak, value, ByteRange::LOW32);
        machine.inject_fault(FaultKind::ClbPoison { xor });
        // The software key write (same key material) must flush the
        // poisoned line...
        machine.write_key_register(KeyReg::E, w0, k0).unwrap();
        // ...so the decrypt recomputes from the registers and round-trips.
        prop_assert_eq!(
            machine
                .kernel_decrypt(KeyReg::E, tweak, ct, ByteRange::LOW32)
                .unwrap(),
            value
        );
    }

    /// Conversely, *without* the key write the poisoned line is served and
    /// the integrity check catches the resulting garbage.
    #[test]
    fn served_poison_is_caught_by_the_integrity_check(
        xor in 1u64..,
        value in 0u64..0xFFFF_FFFF,
    ) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.write_key_register(KeyReg::E, 0xE0, 0xE1).unwrap();
        let ct = machine.kernel_encrypt(KeyReg::E, 0x80, value, ByteRange::LOW32);
        machine.inject_fault(FaultKind::ClbPoison { xor });
        let got = machine.kernel_decrypt(KeyReg::E, 0x80, ct, ByteRange::LOW32);
        // Either the garbled plaintext trips the masked-zero check
        // (overwhelmingly likely) or it decodes to some wrong value; it
        // must never silently equal the genuine plaintext.
        prop_assert_ne!(got, Ok(value));
    }
}
