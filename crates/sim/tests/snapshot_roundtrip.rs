//! Snapshot and record/replay properties across random guest modules ×
//! random fault plans:
//!
//! * restoring a mid-run snapshot preserves every future — the restored
//!   machine steps bit-for-bit with the original, fault plan included;
//! * snapshots survive a serialize/deserialize round trip;
//! * a recorded run replays bit-for-bit on a fresh machine from its event
//!   log alone;
//! * corrupted or truncated snapshot bytes are always rejected, never
//!   silently restored.

use proptest::prelude::*;
use regvault_isa::{asm, KeyReg};
use regvault_sim::{
    FaultKind, FaultPlan, FaultSpec, FaultTrigger, Machine, MachineConfig, Snapshot, SnapshotError,
};

const TEXT_BASE: u64 = 0x8000_0000;
const DATA_BASE: u64 = 0x9000;
const DATA_SLOTS: u64 = 64;

/// A machine with general keys programmed, the data region mapped, and the
/// module loaded at [`TEXT_BASE`] — everything a trial run needs, built
/// deterministically from `seed` so two calls produce identical machines.
fn build_machine(seed: u64, program: &[u8]) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    for (i, key) in [
        KeyReg::A,
        KeyReg::B,
        KeyReg::C,
        KeyReg::D,
        KeyReg::E,
        KeyReg::F,
        KeyReg::G,
    ]
    .iter()
    .enumerate()
    {
        machine
            .write_key_register(*key, 0x1000 + i as u64, 0x2000 + i as u64)
            .expect("machine privilege");
    }
    for slot in 0..DATA_SLOTS {
        machine
            .memory_mut()
            .write_u64(DATA_BASE + slot * 8, 0)
            .expect("data region maps");
    }
    machine.load_program(TEXT_BASE, program);
    machine.hart_mut().set_pc(TEXT_BASE);
    machine
}

/// One random module fragment. Every fragment is self-contained (no
/// branches), so any concatenation assembles and runs forward until the
/// trailing `ebreak` — or until a fault-provoked integrity exception ends
/// the run early, which is itself a behavior the properties must preserve.
fn snippet(sel: u8, x: u64, slot: u64) -> String {
    let addr = DATA_BASE + (slot % DATA_SLOTS) * 8;
    match sel % 6 {
        0 => format!("li t0, {x}\naddi t0, t0, 7\nadd t3, t3, t0\n"),
        1 => format!("li t2, {x}\nxor t3, t3, t2\nmul t4, t3, t2\n"),
        2 => format!("li s0, {addr}\nli t5, {x}\nsd t5, 0(s0)\n"),
        3 => format!("li s0, {addr}\nld t6, 0(s0)\nadd a0, a0, t6\n"),
        // Pointer-style protect/store/load/unprotect round trip (key A).
        4 => format!(
            "li s1, {addr}\nli a1, {x}\ncreak a1, a1[7:0], s1\nsd a1, 0(s1)\n\
             ld a2, 0(s1)\ncrdak a2, a2, s1, [7:0]\n"
        ),
        // uid-style 32-bit value with integrity redundancy in bytes 4..7.
        _ => format!(
            "li s1, {addr}\nli a3, {}\ncreak a3, a3[3:0], s1\nsd a3, 0(s1)\n\
             ld a4, 0(s1)\ncrdak a4, a4, s1, [3:0]\n",
            x as u32
        ),
    }
}

fn module() -> impl Strategy<Value = String> {
    prop::collection::vec((any::<u8>(), any::<u64>(), 0..DATA_SLOTS), 4..32).prop_map(|snips| {
        let mut src = String::new();
        for (sel, x, slot) in snips {
            src.push_str(&snippet(sel, x, slot));
        }
        src.push_str("ebreak\n");
        src
    })
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (0..DATA_SLOTS, 0u8..64).prop_map(|(s, bit)| FaultKind::MemBitFlip {
            addr: DATA_BASE + s * 8,
            bit,
        }),
        (0..DATA_SLOTS, any::<u64>()).prop_map(|(s, value)| FaultKind::MemWrite {
            addr: DATA_BASE + s * 8,
            value,
        }),
        (0..DATA_SLOTS, 0..DATA_SLOTS).prop_map(|(a, b)| FaultKind::MemSwap {
            a: DATA_BASE + a * 8,
            b: DATA_BASE + b * 8,
        }),
        (1u8..8, any::<u64>(), any::<u64>()).prop_map(|(ksel, w, k)| FaultKind::KeyTamper {
            ksel,
            xor_w0: w | 1,
            xor_k0: k,
        }),
        any::<u64>().prop_map(|x| FaultKind::ClbPoison { xor: x | 1 }),
    ]
}

fn plan_from(faults: &[(u64, FaultKind)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (instret, kind) in faults {
        plan.push(FaultSpec {
            trigger: FaultTrigger::AtInstret(*instret),
            kind: *kind,
        });
    }
    plan
}

/// Steps up to `n` instructions, stopping at the first terminal event
/// (ebreak, exception, simulator error). Returns a transcript of every
/// step result and whether the run terminated.
fn step_outcomes(machine: &mut Machine, n: u64) -> (String, bool) {
    let mut outcomes = String::new();
    for _ in 0..n {
        let result = machine.step();
        let terminal = !matches!(result, Ok(None));
        outcomes.push_str(&format!("{result:?};"));
        if terminal {
            return (outcomes, true);
        }
    }
    (outcomes, false)
}

proptest! {
    /// Snapshotting mid-run and restoring (through a full byte round trip)
    /// yields a machine whose entire future — step results and final
    /// architectural digest — matches the original, for any module, fault
    /// plan, and split point.
    #[test]
    fn snapshot_restore_preserves_every_future(
        seed in any::<u64>(),
        src in module(),
        faults in prop::collection::vec((0u64..200, fault_kind()), 0..8),
        split in 1u64..80,
        tail in 1u64..200,
    ) {
        let program = asm::assemble(&src).expect("module assembles");
        let mut original = build_machine(seed, program.bytes());
        original.set_fault_plan(plan_from(&faults));
        let (_, terminal) = step_outcomes(&mut original, split);

        let snap = original.snapshot();
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
        prop_assert_eq!(decoded.digest(), snap.digest());

        let mut restored = Machine::from_snapshot(&decoded).expect("snapshot restores");
        prop_assert_eq!(restored.arch_digest(), original.arch_digest());

        if !terminal {
            let (rest_original, _) = step_outcomes(&mut original, tail);
            let (rest_restored, _) = step_outcomes(&mut restored, tail);
            prop_assert_eq!(rest_original, rest_restored);
        }
        prop_assert_eq!(restored.arch_digest(), original.arch_digest());
    }

    /// A recorded run replays bit-for-bit: a fresh machine fed only the
    /// event log's fault plan reproduces every step result and the final
    /// architectural digest.
    #[test]
    fn recorded_runs_replay_bit_for_bit(
        seed in any::<u64>(),
        src in module(),
        faults in prop::collection::vec((0u64..150, fault_kind()), 0..8),
        steps in 1u64..250,
    ) {
        let program = asm::assemble(&src).expect("module assembles");
        let mut recorded = build_machine(seed, program.bytes());
        recorded.set_fault_plan(plan_from(&faults));
        recorded.start_recording();
        let (outcomes, _) = step_outcomes(&mut recorded, steps);
        let log = recorded.stop_recording().expect("recording was active");

        let mut replayed = build_machine(seed, program.bytes());
        replayed.set_fault_plan(log.to_plan());
        let (replay_outcomes, _) = step_outcomes(&mut replayed, steps);

        prop_assert_eq!(outcomes, replay_outcomes);
        prop_assert_eq!(recorded.arch_digest(), replayed.arch_digest());
    }

    /// Any single corrupted byte makes the snapshot undecodable — no
    /// corruption is ever silently restored — and decoding never panics.
    #[test]
    fn corrupted_snapshots_never_restore(
        seed in any::<u64>(),
        pos in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let program = asm::assemble("li t0, 5\nli t1, 0x9000\nsd t0, 0(t1)\nebreak\n")
            .expect("assembles");
        let mut machine = build_machine(seed, program.bytes());
        let _ = step_outcomes(&mut machine, 3);
        let mut bytes = machine.snapshot().to_bytes();
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= mask;
        prop_assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    /// Truncated snapshots are rejected at any cut point.
    #[test]
    fn truncated_snapshots_never_restore(
        seed in any::<u64>(),
        keep in any::<u64>(),
    ) {
        let machine = build_machine(seed, &[]);
        let bytes = machine.snapshot().to_bytes();
        let keep = (keep % bytes.len() as u64) as usize; // always < len, so always cut
        let result = Snapshot::from_bytes(&bytes[..keep]);
        let rejected = matches!(
            result,
            Err(SnapshotError::Truncated | SnapshotError::BadChecksum { .. }
                | SnapshotError::BadMagic | SnapshotError::BadVersion(_)
                | SnapshotError::BadEncoding(_))
        );
        prop_assert!(rejected, "truncating to {} bytes must be rejected, got {:?}", keep, result);
    }
}
