//! End-to-end semantics of the RV64 `*W` (32-bit) instruction group —
//! sign-extension and division edge cases, checked through assembled guest
//! programs.

use regvault_isa::{asm, Reg};
use regvault_sim::{Machine, MachineConfig};

fn run(source: &str) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = asm::assemble(source).expect("assembles");
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.run_until_break(10_000).expect("runs");
    machine
}

#[test]
fn addw_sign_extends_overflow() {
    // 0x7FFFFFFF + 1 wraps to 0x80000000 and sign-extends.
    let machine = run("li a1, 0x7fffffff
         li a2, 1
         addw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0xFFFF_FFFF_8000_0000);
}

#[test]
fn subw_wraps_in_32_bits() {
    let machine = run("li a1, 0
         li a2, 1
         subw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), u64::MAX); // -1 sign-extended
}

#[test]
fn sraw_uses_bit_31_as_sign() {
    let machine = run("li a1, 0x80000000
         li a2, 4
         sraw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0xFFFF_FFFF_F800_0000);
}

#[test]
fn srlw_is_logical_on_the_low_word() {
    let machine = run("li a1, 0xffffffff80000000
         li a2, 4
         srlw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0x0800_0000);
}

#[test]
fn divw_by_zero_returns_minus_one() {
    let machine = run("li a1, 42
         li a2, 0
         divw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), u64::MAX);
}

#[test]
fn divw_overflow_returns_int_min() {
    let machine = run("li a1, 0x80000000     # INT32_MIN in the low word
         li a2, -1
         divw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0xFFFF_FFFF_8000_0000);
}

#[test]
fn remw_by_zero_returns_dividend() {
    let machine = run("li a1, 42
         li a2, 0
         remw a0, a1, a2
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 42);
}

#[test]
fn mulw_truncates_then_sign_extends() {
    let machine = run("li a1, 0x10000
         li a2, 0x10000
         mulw a0, a1, a2       # 2^32 truncates to 0
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0);
}

#[test]
fn slliw_sign_extends_result() {
    let machine = run("li a1, 1
         slliw a0, a1, 31
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0xFFFF_FFFF_8000_0000);
}

#[test]
fn addiw_truncates_before_extending() {
    let machine = run("li a1, 0xffffffff
         addiw a0, a1, 1       # low word wraps to 0
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A0), 0);
}

#[test]
fn div64_edge_cases_in_guest_code() {
    let machine = run("li a1, 1
         slli a1, a1, 63       # INT64_MIN
         li a2, -1
         div a3, a1, a2        # overflow -> INT64_MIN
         rem a4, a1, a2        # overflow -> 0
         li a5, 0
         divu a6, a1, a5       # /0 -> all ones
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A3), 1u64 << 63);
    assert_eq!(machine.hart().reg(Reg::A4), 0);
    assert_eq!(machine.hart().reg(Reg::A6), u64::MAX);
}

#[test]
fn mulh_variants() {
    let machine = run("li a1, -1
         li a2, -1
         mulh   a3, a1, a2     # (-1)*(-1) high = 0
         mulhu  a4, a1, a2     # max*max high = 0xFFFF...FFFE
         mulhsu a5, a1, a2     # (-1)*max high = -1 high part
         ebreak");
    assert_eq!(machine.hart().reg(Reg::A3), 0);
    assert_eq!(machine.hart().reg(Reg::A4), 0xFFFF_FFFF_FFFF_FFFE);
    assert_eq!(machine.hart().reg(Reg::A5), u64::MAX);
}
