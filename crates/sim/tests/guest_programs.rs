//! End-to-end guest-program tests reproducing the usage patterns of
//! Figure 2 of the RegVault paper, plus the privilege rules of §2.3.1.

use regvault_isa::{asm, KeyReg, Reg};
use regvault_sim::{Event, ExceptionCause, Machine, MachineConfig, Privilege};

fn machine_with_keys() -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .write_key_register(KeyReg::A, 0x1111, 0x2222)
        .unwrap();
    machine
        .write_key_register(KeyReg::B, 0x3333, 0x4444)
        .unwrap();
    machine
}

fn run(machine: &mut Machine, source: &str) {
    let program = asm::assemble(source).expect("assembles");
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.run_until_break(100_000).expect("runs to ebreak");
}

#[test]
fn figure_2a_pointer_randomization() {
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x9000
         li   s0, 0x9000
         li   a0, 0xffffffc012345678   # a kernel pointer
         creak a0, a0[7:0], t1
         sd   a0, 0(s0)
         ld   a1, 0(s0)
         crdak a1, a1, t1, [7:0]
         ebreak",
    );
    assert_eq!(machine.hart().reg(Reg::A1), 0xFFFF_FFC0_1234_5678);
    let in_memory = machine.memory().read_u64(0x9000).unwrap();
    assert_ne!(
        in_memory, 0xFFFF_FFC0_1234_5678,
        "memory copy is randomized"
    );
}

#[test]
fn figure_2b_32bit_with_integrity() {
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x9100
         li   s0, 0x9100
         li   a0, 1000                 # a uid-like 32-bit value
         creak a0, a0[3:0], t1
         sd   a0, 0(s0)
         ld   a1, 0(s0)
         crdak a1, a1, t1, [3:0]
         ebreak",
    );
    assert_eq!(machine.hart().reg(Reg::A1), 1000);
}

#[test]
fn figure_2b_corruption_raises_integrity_exception() {
    let mut machine = machine_with_keys();
    // Store the encrypted value, then corrupt it in memory (the attacker's
    // arbitrary-write primitive), then try to decrypt.
    let program = asm::assemble(
        "li   t1, 0x9200
         li   s0, 0x9200
         li   a0, 1000
         creak a0, a0[3:0], t1
         sd   a0, 0(s0)
         ebreak",
    )
    .unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.run_until_break(10_000).unwrap();

    let encrypted = machine.memory().read_u64(0x9200).unwrap();
    machine
        .memory_mut()
        .write_u64(0x9200, encrypted ^ 0xFF)
        .unwrap();

    let attack = asm::assemble(
        "li   t1, 0x9200
         li   s0, 0x9200
         ld   a1, 0(s0)
         crdak a1, a1, t1, [3:0]
         ebreak",
    )
    .unwrap();
    machine.load_program(0x8100_0000, attack.bytes());
    machine.hart_mut().set_pc(0x8100_0000);
    let event = machine.run(10_000).unwrap();
    assert!(matches!(
        event,
        Event::Exception {
            cause: ExceptionCause::IntegrityCheckFailure,
            ..
        }
    ));
    assert_eq!(machine.stats().integrity_failures, 1);
}

#[test]
fn figure_2c_64bit_split_randomization() {
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x9300
         li   t2, 0x9308
         li   s0, 0x9300
         li   a0, 0x1122334455667788
         creak a1, a0[3:0], t1         # encrypt low 4 bytes
         creak a2, a0[7:4], t2         # encrypt high 4 bytes
         sd   a1, 0(s0)
         sd   a2, 8(s0)
         ld   a1, 0(s0)
         ld   a2, 8(s0)
         crdak a1, a1, t1, [3:0]
         crdak a2, a2, t2, [7:4]
         or   a0, a1, a2               # recover the original 64-bit data
         ebreak",
    );
    assert_eq!(machine.hart().reg(Reg::A0), 0x1122_3344_5566_7788);
}

#[test]
fn spatial_substitution_is_detected_for_32bit_data() {
    // Encrypt the same 32-bit value at two addresses; swapping the
    // ciphertexts must fail the integrity check because the tweak differs.
    let mut machine = machine_with_keys();
    let program = asm::assemble(
        "li   t1, 0x9400
         li   t2, 0x9408
         li   a0, 7
         li   a1, 9
         creak a0, a0[3:0], t1
         creak a1, a1[3:0], t2
         li   s0, 0x9400
         sd   a0, 0(s0)
         sd   a1, 8(s0)
         ebreak",
    )
    .unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.run_until_break(10_000).unwrap();

    // Attacker swaps the two encrypted values.
    let low = machine.memory().read_u64(0x9400).unwrap();
    let high = machine.memory().read_u64(0x9408).unwrap();
    machine.memory_mut().write_u64(0x9400, high).unwrap();
    machine.memory_mut().write_u64(0x9408, low).unwrap();

    let victim = asm::assemble(
        "li   t1, 0x9400
         li   s0, 0x9400
         ld   a0, 0(s0)
         crdak a0, a0, t1, [3:0]
         ebreak",
    )
    .unwrap();
    machine.load_program(0x8100_0000, victim.bytes());
    machine.hart_mut().set_pc(0x8100_0000);
    let event = machine.run(10_000).unwrap();
    assert!(matches!(
        event,
        Event::Exception {
            cause: ExceptionCause::IntegrityCheckFailure,
            ..
        }
    ));
}

#[test]
fn cre_is_illegal_in_user_mode() {
    let mut machine = machine_with_keys();
    let program = asm::assemble(
        "li t1, 0x9500
         creak a0, a0[7:0], t1
         ebreak",
    )
    .unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.hart_mut().set_privilege(Privilege::User);
    let event = machine.run(100).unwrap();
    assert!(matches!(
        event,
        Event::Exception {
            cause: ExceptionCause::IllegalInstruction,
            ..
        }
    ));
}

#[test]
fn key_csrs_are_write_only() {
    let mut machine = machine_with_keys();
    // Reading a key CSR must fault even in kernel mode.
    let program = asm::assemble("csrr a0, key_a_lo\nebreak").unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    let event = machine.run(100).unwrap();
    assert!(matches!(
        event,
        Event::Exception {
            cause: ExceptionCause::IllegalInstruction,
            ..
        }
    ));
}

#[test]
fn master_key_csr_rejects_writes() {
    let mut machine = machine_with_keys();
    let program = asm::assemble("csrw key_m_lo, a0\nebreak").unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    let event = machine.run(100).unwrap();
    assert!(matches!(
        event,
        Event::Exception {
            cause: ExceptionCause::IllegalInstruction,
            ..
        }
    ));
}

#[test]
fn key_csr_write_from_kernel_works_and_changes_ciphertexts() {
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x9600
         li   a0, 42
         creak a3, a0[7:0], t1     # ciphertext under the old key
         li   a4, 0xabcdef
         csrw key_a_lo, a4
         csrw key_a_hi, a4
         creak a5, a0[7:0], t1     # ciphertext under the new key
         ebreak",
    );
    assert_ne!(machine.hart().reg(Reg::A3), machine.hart().reg(Reg::A5));
}

#[test]
fn master_key_is_usable_for_wrapping_via_cre() {
    // The kernel cannot read/write the master key, but CAN use it in
    // cre/crd to wrap general keys it stores in memory (§2.3.1).
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x1           # tweak: thread id
         li   a0, 0x123456789
         cremk a1, a0[7:0], t1  # wrap under master key
         crdmk a2, a1, t1, [7:0]
         ebreak",
    );
    assert_ne!(machine.hart().reg(Reg::A1), 0x1_2345_6789);
    assert_eq!(machine.hart().reg(Reg::A2), 0x1_2345_6789);
}

#[test]
fn clb_accelerates_repeated_operations() {
    let mut machine = machine_with_keys();
    run(
        &mut machine,
        "li   t1, 0x9700
         li   a0, 5
         li   t3, 0          # counter
         li   t4, 100
        loop:
         creak a1, a0[7:0], t1
         crdak a2, a1, t1, [7:0]
         addi t3, t3, 1
         blt  t3, t4, loop
         ebreak",
    );
    let stats = machine.engine().clb().stats();
    // First encrypt misses; everything afterwards hits.
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 199);
}

#[test]
fn clb_zero_configuration_never_hits() {
    let mut machine = Machine::new(MachineConfig {
        clb_entries: 0,
        ..MachineConfig::default()
    });
    machine.write_key_register(KeyReg::A, 1, 2).unwrap();
    run(
        &mut machine,
        "li   t1, 0x9800
         li   a0, 5
         creak a1, a0[7:0], t1
         crdak a2, a1, t1, [7:0]
         ebreak",
    );
    let stats = machine.engine().clb().stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 2);
    assert_eq!(machine.hart().reg(Reg::A2), 5);
}

#[test]
fn crypto_cycles_reflect_clb_hits() {
    // Same program with and without CLB: the CLB version must be faster.
    let source = "li   t1, 0x9900
         li   a0, 5
         li   t3, 0
         li   t4, 50
        loop:
         creak a1, a0[7:0], t1
         crdak a2, a1, t1, [7:0]
         addi t3, t3, 1
         blt  t3, t4, loop
         ebreak";
    let mut with_clb = machine_with_keys();
    run(&mut with_clb, source);
    let mut without_clb = Machine::new(MachineConfig {
        clb_entries: 0,
        ..MachineConfig::default()
    });
    without_clb
        .write_key_register(KeyReg::A, 0x1111, 0x2222)
        .unwrap();
    run(&mut without_clb, source);
    assert!(with_clb.stats().cycles < without_clb.stats().cycles);
}

#[test]
fn ecall_event_reports_privilege() {
    let mut machine = machine_with_keys();
    let program = asm::assemble("ecall\nebreak").unwrap();
    machine.load_program(0x8000_0000, program.bytes());
    machine.hart_mut().set_pc(0x8000_0000);
    machine.hart_mut().set_privilege(Privilege::User);
    let event = machine.run(100).unwrap();
    assert_eq!(
        event,
        Event::Ecall {
            from: Privilege::User
        }
    );
    // Kernel services the call and resumes after the ecall.
    machine.advance_pc();
    assert!(matches!(machine.run(100).unwrap(), Event::Break));
}

#[test]
fn fibonacci_computes_correctly() {
    // A plain computational program to sanity-check the core ISA semantics.
    let mut machine = Machine::new(MachineConfig::default());
    run(
        &mut machine,
        "li  a0, 0
         li  a1, 1
         li  t0, 0
         li  t1, 30
        loop:
         add  t2, a0, a1
         mv   a0, a1
         mv   a1, t2
         addi t0, t0, 1
         blt  t0, t1, loop
         ebreak",
    );
    // fib: after 30 steps a0 = fib(30) = 832040.
    assert_eq!(machine.hart().reg(Reg::A0), 832_040);
}

#[test]
fn tracing_captures_executed_instructions() {
    let mut machine = machine_with_keys();
    machine.enable_trace(4);
    run(
        &mut machine,
        "li   t1, 0x9000
         li   a0, 5
         creak a1, a0[7:0], t1
         ebreak",
    );
    let trace = machine.ring_trace().expect("tracing enabled");
    let rendered: Vec<String> = trace.records().iter().map(|r| r.render()).collect();
    assert!(
        rendered.iter().any(|l| l.contains("creak a1, a0[7:0], t1")),
        "{rendered:?}"
    );
    // Ring capacity bounds the record count.
    assert!(trace.len() <= 4);
}
