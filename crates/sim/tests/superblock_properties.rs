//! Property tests for the superblock translation tier.
//!
//! Three angles:
//!
//! 1. **Differential**: random loop-heavy guest programs must leave a
//!    tiered machine and a pure single-step interpreter in identical
//!    architectural state (registers, memory, CSRs, keys, CLB, counters).
//! 2. **Self-modifying code, cold path**: a store into the page holding an
//!    active superblock must invalidate the trace *before its next entry*,
//!    so the patched instruction semantics take effect on the very next
//!    iteration — on both datapaths.
//! 3. **Self-modifying code, mid-trace**: a store executed *inside* a
//!    running superblock that touches the block's own page must side-exit
//!    after retiring the store, and the machine must still agree with the
//!    interpreter instruction-for-instruction.

use proptest::prelude::*;
use regvault_isa::{asm, KeyReg, Reg};
use regvault_sim::{arch_divergence, Machine, MachineConfig};

const CODE_BASE: u64 = 0x8000_0000;
const DATA: [&str; 4] = ["t0", "t1", "t2", "t3"];

/// A tiered machine and a single-step interpreter with identical keys.
fn pair() -> (Machine, Machine) {
    let mut tiered = Machine::new(MachineConfig::default());
    let mut interp = Machine::new(MachineConfig {
        superblock_tier: false,
        ..MachineConfig::default()
    });
    for machine in [&mut tiered, &mut interp] {
        machine
            .write_key_register(KeyReg::A, 0x1111, 0x2222)
            .unwrap();
    }
    (tiered, interp)
}

/// Assemble `source`, run it to `ebreak` on both datapaths, and return the
/// finished machines.
fn run_both(source: &str) -> (Machine, Machine) {
    let program = asm::assemble(source).expect("assembles");
    let (mut tiered, mut interp) = pair();
    for machine in [&mut tiered, &mut interp] {
        machine.load_program(CODE_BASE, program.bytes());
        machine.hart_mut().set_pc(CODE_BASE);
        machine.run_until_break(8_000_000).expect("terminates");
    }
    (tiered, interp)
}

/// Encoding of a single assembly instruction.
fn encode(source: &str) -> u32 {
    let program = asm::assemble(source).expect("assembles");
    u32::from_le_bytes(program.bytes()[0..4].try_into().unwrap())
}

/// Byte offset of the unique occurrence of `needle` in assembled code.
fn find_insn(bytes: &[u8], needle: u32) -> u64 {
    let mut found = None;
    for (i, word) in bytes.chunks_exact(4).enumerate() {
        if u32::from_le_bytes([word[0], word[1], word[2], word[3]]) == needle {
            assert!(found.is_none(), "patch target must be unique");
            found = Some((i * 4) as u64);
        }
    }
    found.expect("patch target present")
}

/// One random instruction (or short template) in the hot loop body.
///
/// Register roles: `t0`–`t3` are data, `t4` holds the crypto tweak, `s0`
/// the scratch base, `t6`/`s1` the loop counter and limit, `a1`/`a2` are
/// crypto scratch. Templates only write data and scratch registers, so the
/// loop always terminates.
#[derive(Debug, Clone)]
enum BodyOp {
    /// Register-register ALU op.
    Alu {
        op: usize,
        rd: usize,
        rs1: usize,
        rs2: usize,
    },
    /// Register-immediate ALU op.
    AluImm {
        op: usize,
        rd: usize,
        rs: usize,
        imm: i64,
    },
    /// Store a data register into the scratch page.
    Store { width: usize, rs: usize, slot: u64 },
    /// Load from the scratch page into a data register.
    Load { width: usize, rd: usize, slot: u64 },
    /// `cre` then either store the ciphertext (exercising cre+store
    /// fusion) or round-trip it through `crd`.
    Crypto {
        src: usize,
        rd: usize,
        store: bool,
        slot: u64,
    },
    /// A forward branch guarding one instruction.
    Guarded {
        rs1: usize,
        rs2: usize,
        rd: usize,
        imm: i64,
    },
}

fn render(op: &BodyOp, idx: usize) -> String {
    match op {
        BodyOp::Alu { op, rd, rs1, rs2 } => {
            let mnem = ["add", "sub", "xor", "or", "and", "sll"][*op % 6];
            format!("{mnem} {}, {}, {}", DATA[*rd], DATA[*rs1], DATA[*rs2])
        }
        BodyOp::AluImm { op, rd, rs, imm } => match *op % 6 {
            0 => format!("addi {}, {}, {}", DATA[*rd], DATA[*rs], imm),
            1 => format!("xori {}, {}, {}", DATA[*rd], DATA[*rs], imm),
            2 => format!("ori {}, {}, {}", DATA[*rd], DATA[*rs], imm),
            3 => format!("andi {}, {}, {}", DATA[*rd], DATA[*rs], imm),
            4 => format!(
                "slli {}, {}, {}",
                DATA[*rd],
                DATA[*rs],
                imm.unsigned_abs() % 64
            ),
            _ => format!(
                "srli {}, {}, {}",
                DATA[*rd],
                DATA[*rs],
                imm.unsigned_abs() % 64
            ),
        },
        BodyOp::Store { width, rs, slot } => {
            let (mnem, scale) = [("sb", 1), ("sh", 2), ("sw", 4), ("sd", 8)][*width % 4];
            format!("{mnem} {}, {}(s0)", DATA[*rs], slot * scale)
        }
        BodyOp::Load { width, rd, slot } => {
            let (mnem, scale) = [("lbu", 1), ("lh", 2), ("lw", 4), ("ld", 8)][*width % 4];
            format!("{mnem} {}, {}(s0)", DATA[*rd], slot * scale)
        }
        BodyOp::Crypto {
            src,
            rd,
            store,
            slot,
        } => {
            if *store {
                format!(
                    "creak a1, {}[7:0], t4\n sd a1, {}(s0)",
                    DATA[*src],
                    slot * 8
                )
            } else {
                format!(
                    "creak a1, {}[7:0], t4\n crdak a2, a1, t4, [7:0]\n add {}, a2, {}",
                    DATA[*src], DATA[*rd], DATA[*src]
                )
            }
        }
        BodyOp::Guarded { rs1, rs2, rd, imm } => format!(
            "bne {}, {}, skip{idx}\n addi {}, {}, {}\nskip{idx}:",
            DATA[*rs1], DATA[*rs2], DATA[*rd], DATA[*rd], imm
        ),
    }
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0usize..6, 0usize..4, 0usize..4, 0usize..4).prop_map(|(op, rd, rs1, rs2)| BodyOp::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (0usize..6, 0usize..4, 0usize..4, -512i64..512)
            .prop_map(|(op, rd, rs, imm)| BodyOp::AluImm { op, rd, rs, imm }),
        (0usize..4, 0usize..4, 0u64..15).prop_map(|(width, rs, slot)| BodyOp::Store {
            width,
            rs,
            slot
        }),
        (0usize..4, 0usize..4, 0u64..15).prop_map(|(width, rd, slot)| BodyOp::Load {
            width,
            rd,
            slot
        }),
        (0usize..4, 0usize..4, any::<bool>(), 0u64..15).prop_map(|(src, rd, store, slot)| {
            BodyOp::Crypto {
                src,
                rd,
                store,
                slot,
            }
        }),
        (0usize..4, 0usize..4, 0usize..4, -64i64..64)
            .prop_map(|(rs1, rs2, rd, imm)| BodyOp::Guarded { rs1, rs2, rd, imm }),
    ]
}

/// A hot loop over the random body: scratch page zeroed up front so every
/// load is mapped, data registers seeded, `iters` iterations.
fn loop_program(body: &[BodyOp], iters: u64, seeds: &[u64; 4]) -> String {
    let mut text = String::from("li s0, 0x9000\n li t4, 0x9000\n");
    for slot in 0..16 {
        text.push_str(&format!("sd zero, {}(s0)\n ", slot * 8));
    }
    for (reg, seed) in DATA.iter().zip(seeds) {
        text.push_str(&format!("li {reg}, {seed}\n "));
    }
    // Two straight-line fillers so the loop head is always a buildable
    // trace (a body starting with a branch would otherwise leave the head
    // block below the tier's minimum length — a policy no-build, not a bug,
    // but it would defeat the `hits > 0` assertion below).
    text.push_str(&format!(
        "li t6, 0\n li s1, {iters}\nloop:\n add t5, t0, t1\n xor t5, t5, t2\n "
    ));
    for (idx, op) in body.iter().enumerate() {
        text.push_str(&render(op, idx));
        text.push_str("\n ");
    }
    text.push_str("addi t6, t6, 1\n blt t6, s1, loop\n ebreak");
    text
}

proptest! {
    /// Random loop-heavy programs: the superblock tier and the single-step
    /// interpreter finish in identical architectural state, and the tier
    /// actually engaged (the loop head runs hot).
    #[test]
    fn tier_matches_interpreter_on_random_programs(
        body in prop::collection::vec(body_op(), 1..10),
        iters in 32u64..128,
        seeds in (0u64..1024, 0u64..1024, 0u64..1024, 0u64..1024),
    ) {
        let seeds = [seeds.0, seeds.1, seeds.2, seeds.3];
        let source = loop_program(&body, iters, &seeds);
        let (tiered, interp) = run_both(&source);
        prop_assert_eq!(arch_divergence(&tiered, &interp), None);
        let stats = tiered.superblock_stats();
        prop_assert!(stats.hits > 0, "tier never engaged: {stats:?}");
        prop_assert!(stats.insns >= stats.hits);
    }

    /// A store into the page holding an active superblock invalidates the
    /// trace before its next entry: a guest patch of a loop-body
    /// instruction (addi imm 3 -> `new_imm`) changes semantics on the very
    /// next iteration, so the final accumulator matches the arithmetic
    /// expectation — on the tiered datapath, and in agreement with the
    /// interpreter.
    #[test]
    fn smc_patch_takes_effect_before_next_entry(
        patch_iter in 20u64..60,
        new_imm in 4i64..32,
    ) {
        const ITERS: u64 = 64;
        let new_word = encode(&format!("addi t2, t2, {new_imm}"));
        let text = |off: u64| -> String {
            format!(
                "li s0, 0x9000
                 li s2, {CODE_BASE}
                 li s3, {patch_iter}
                 li s4, {new_word}
                 li t6, 0
                 li s1, {ITERS}
                 li t0, 0
                 li t2, 0
                loop:
                 addi t0, t0, 1
                 addi t2, t2, 3
                 xor  t5, t0, t2
                 bne  t6, s3, nopatch
                 sw   s4, {off}(s2)
                nopatch:
                 addi t6, t6, 1
                 blt  t6, s1, loop
                 ebreak"
            )
        };
        // Two passes: locate the patch target in the assembled bytes, then
        // re-assemble with the real store offset (same instruction count).
        let probe = asm::assemble(&text(0)).expect("assembles");
        let off = find_insn(probe.bytes(), encode("addi t2, t2, 3"));
        let (tiered, interp) = run_both(&text(off));

        // Old imm (3) for iterations 0..=patch_iter (the patch lands after
        // the target already ran that iteration), new imm afterwards.
        let expected = 3 * (patch_iter + 1) + new_imm as u64 * (ITERS - patch_iter - 1);
        prop_assert_eq!(tiered.hart().reg(Reg::T2), expected);
        prop_assert_eq!(arch_divergence(&tiered, &interp), None);
        let stats = tiered.superblock_stats();
        prop_assert!(
            stats.invalidations >= 1,
            "patch must drop the stale trace: {stats:?}"
        );
    }
}

/// A store executed *inside* a running superblock that hits the block's own
/// page (here: rewriting a later loop instruction with its own encoding)
/// must side-exit after retiring the store and re-enter cleanly — every
/// iteration — while staying in lockstep with the interpreter.
#[test]
fn mid_trace_self_store_side_exits_and_invalidates() {
    const ITERS: u64 = 64;
    let own_word = encode("xor t5, t0, t2");
    let text = |off: u64| -> String {
        format!(
            "li s0, 0x9000
             li s2, {CODE_BASE}
             li s4, {own_word}
             li t6, 0
             li s1, {ITERS}
             li t0, 0
             li t2, 0
            loop:
             addi t0, t0, 1
             addi t2, t2, 3
             sw   s4, {off}(s2)
             xor  t5, t0, t2
             addi t6, t6, 1
             blt  t6, s1, loop
             ebreak"
        )
    };
    let probe = asm::assemble(&text(0)).expect("assembles");
    let off = find_insn(probe.bytes(), own_word);
    let (tiered, interp) = run_both(&text(off));

    assert_eq!(tiered.hart().reg(Reg::T0), ITERS);
    assert_eq!(tiered.hart().reg(Reg::T2), 3 * ITERS);
    assert_eq!(arch_divergence(&tiered, &interp), None);
    let stats = tiered.superblock_stats();
    assert!(stats.side_exits > 0, "self-store must side-exit: {stats:?}");
    assert!(
        stats.invalidations > 0,
        "self-store must invalidate the trace: {stats:?}"
    );
}
