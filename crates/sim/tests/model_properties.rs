//! Model-based property tests: the sparse memory against a hash-map
//! reference, and the CLB against a naive fully-associative LRU model.

use std::collections::HashMap;

use proptest::prelude::*;
use regvault_sim::{Clb, Memory};

proptest! {
    /// Memory behaves like a byte map: every read returns the most recent
    /// write, across widths and page boundaries.
    #[test]
    fn memory_matches_a_byte_map(
        ops in prop::collection::vec(
            (0u64..0x4000, any::<u64>(), 0u8..3),
            1..200,
        )
    ) {
        let mut memory = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, width_sel) in ops {
            match width_sel {
                0 => {
                    memory.write_u8(addr, value as u8).expect("write");
                    model.insert(addr, value as u8);
                }
                1 => {
                    memory.write_u32(addr, value as u32).expect("write");
                    for (i, byte) in (value as u32).to_le_bytes().iter().enumerate() {
                        model.insert(addr + i as u64, *byte);
                    }
                }
                _ => {
                    memory.write_u64(addr, value).expect("write");
                    for (i, byte) in value.to_le_bytes().iter().enumerate() {
                        model.insert(addr + i as u64, *byte);
                    }
                }
            }
        }
        for (&addr, &expected) in &model {
            prop_assert_eq!(memory.read_u8(addr).expect("mapped"), expected);
        }
    }

    /// Untouched pages always fault.
    #[test]
    fn unmapped_reads_always_fault(addr in 0x10_0000u64..0x20_0000) {
        let memory = Memory::new();
        prop_assert!(memory.read_u8(addr).is_err());
        prop_assert!(memory.read_u64(addr).is_err());
    }
}

/// Reference model of a fully-associative LRU cache of (ksel, tweak, pt,
/// ct) tuples.
///
/// Real operation can never hold two valid entries with the same
/// `(ksel, tweak, plaintext)` or `(ksel, tweak, ciphertext)`: the cipher is
/// a function of those inputs for a fixed key, and key updates invalidate
/// the whole `ksel`. The generator below respects that reachability
/// invariant (conflicting inserts are skipped), because match selection
/// among impossible duplicates is unspecified.
struct ClbModel {
    capacity: usize,
    /// Most-recently-used last.
    entries: Vec<(u8, u64, u64, u64)>,
    stats: regvault_sim::ClbStats,
}

impl ClbModel {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            stats: regvault_sim::ClbStats::default(),
        }
    }

    fn lookup_encrypt(&mut self, ksel: u8, tweak: u64, pt: u64) -> Option<u64> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.0 == ksel && e.1 == tweak && e.2 == pt);
        let Some(pos) = pos else {
            self.stats.misses += 1;
            return None;
        };
        self.stats.hits += 1;
        let entry = self.entries.remove(pos);
        let ct = entry.3;
        self.entries.push(entry);
        Some(ct)
    }

    fn lookup_decrypt(&mut self, ksel: u8, tweak: u64, ct: u64) -> Option<u64> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.0 == ksel && e.1 == tweak && e.3 == ct);
        let Some(pos) = pos else {
            self.stats.misses += 1;
            return None;
        };
        self.stats.hits += 1;
        let entry = self.entries.remove(pos);
        let pt = entry.2;
        self.entries.push(entry);
        Some(pt)
    }

    fn insert(&mut self, ksel: u8, tweak: u64, pt: u64, ct: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0); // LRU is at the front
            self.stats.evictions += 1;
        }
        self.entries.push((ksel, tweak, pt, ct));
    }

    fn invalidate_ksel(&mut self, ksel: u8) {
        let before = self.entries.len();
        self.entries.retain(|e| e.0 != ksel);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }
}

#[derive(Debug, Clone)]
enum ClbOp {
    LookupEncrypt(u8, u64, u64),
    LookupDecrypt(u8, u64, u64),
    Insert(u8, u64, u64, u64),
    Invalidate(u8),
}

fn clb_op() -> impl Strategy<Value = ClbOp> {
    // Small value domains so lookups actually hit.
    let small = 0u64..8;
    prop_oneof![
        (0u8..4, small.clone(), small.clone()).prop_map(|(k, t, p)| ClbOp::LookupEncrypt(k, t, p)),
        (0u8..4, small.clone(), small.clone()).prop_map(|(k, t, c)| ClbOp::LookupDecrypt(k, t, c)),
        (0u8..4, small.clone(), small.clone(), small)
            .prop_map(|(k, t, p, c)| ClbOp::Insert(k, t, p, c)),
        (0u8..4).prop_map(ClbOp::Invalidate),
    ]
}

proptest! {
    /// The CLB implementation agrees with the naive LRU model on every
    /// reachable operation sequence: hit/miss agreement, LRU eviction and
    /// per-ksel invalidation.
    #[test]
    fn clb_matches_reference_lru(
        capacity in 1usize..6,
        ops in prop::collection::vec(clb_op(), 1..120),
    ) {
        let mut clb = Clb::new(capacity);
        let mut model = ClbModel::new(capacity);
        for op in ops {
            match op {
                ClbOp::LookupEncrypt(k, t, p) => {
                    prop_assert_eq!(
                        clb.lookup_encrypt(k, t, p),
                        model.lookup_encrypt(k, t, p)
                    );
                }
                ClbOp::LookupDecrypt(k, t, c) => {
                    prop_assert_eq!(
                        clb.lookup_decrypt(k, t, c),
                        model.lookup_decrypt(k, t, c)
                    );
                }
                ClbOp::Insert(k, t, p, c) => {
                    // Skip inserts that would create an impossible
                    // duplicate (see the reachability note above). The
                    // membership probes must not disturb LRU order, so use
                    // the model (search only, no touch).
                    let duplicate = model
                        .entries
                        .iter()
                        .any(|e| e.0 == k && e.1 == t && (e.2 == p || e.3 == c));
                    if !duplicate {
                        clb.insert(k, t, p, c);
                        model.insert(k, t, p, c);
                    }
                }
                ClbOp::Invalidate(k) => {
                    clb.invalidate_ksel(k);
                    model.invalidate_ksel(k);
                }
            }
            prop_assert_eq!(clb.occupancy(), model.entries.len());
            prop_assert_eq!(clb.stats(), model.stats);
        }
    }
}
