//! Exit-code contract of the `regvault-cli` binary.
//!
//! CI pipelines (and `scripts/check.sh`) rely on the process exit status:
//! findings, divergences and malformed inputs must all be nonzero, clean
//! runs zero. These tests shell out to the real binary so the full
//! main() → run() → subcommand path is covered.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_regvault-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn scratch(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "regvault_cli_exit_codes_{}_{name}",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("write scratch file");
    path
}

const CLEAN_PROGRAM: &str = "main:\n  li a0, 1\n  ebreak\n";

/// A decrypted value spilled to the stack unencrypted — a verifier finding.
const SPILL_PROGRAM: &str = "main:
  addi sp, sp, -16
  crdak a0, a0, t1, [7:0]
  sd a0, 0(sp)
  ebreak
";

const CRYPTO_PROGRAM: &str = "main:
  li   t1, 0x9000
  li   a0, 0xbeef
  creak a0, a0[3:0], t1
  crdak a0, a0, t1, [3:0]
  ebreak
";

#[test]
fn verify_is_zero_on_clean_and_nonzero_on_findings() {
    let clean = scratch("clean.s", CLEAN_PROGRAM);
    let out = cli(&["verify", clean.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    let dirty = scratch("spill.s", SPILL_PROGRAM);
    let out = cli(&["verify", dirty.to_str().unwrap()]);
    assert!(!out.status.success(), "findings must exit nonzero: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("plain-spill"), "{stderr}");
}

#[test]
fn verify_rejects_malformed_assembly() {
    let bad = scratch("bad.s", "frobnicate the bits\n");
    let out = cli(&["verify", bad.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
}

#[test]
fn record_then_replay_round_trips_and_corruption_fails() {
    let program = scratch("record.s", CRYPTO_PROGRAM);
    let bundle = std::env::temp_dir().join(format!(
        "regvault_cli_exit_codes_{}.bundle",
        std::process::id()
    ));
    let out = cli(&[
        "record",
        program.to_str().unwrap(),
        bundle.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let out = cli(&["replay", bundle.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("replay OK"));

    // Flip one byte: the bundle checksum must reject it, nonzero.
    let mut bytes = std::fs::read(&bundle).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    std::fs::write(&bundle, &bytes).unwrap();
    let out = cli(&["replay", bundle.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt bundle must fail: {out:?}");
}

#[test]
fn replay_rejects_garbage_input() {
    let garbage = scratch("garbage.bundle", "this is not a bundle");
    let out = cli(&["replay", garbage.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
}

#[test]
fn trace_emits_chrome_json_and_rejects_malformed_input() {
    let program = scratch("trace.s", CRYPTO_PROGRAM);
    let out = cli(&["trace", program.to_str().unwrap(), "--chrome"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"traceEvents\":["), "{stdout}");
    assert!(stdout.contains("\"name\":\"qarma\""), "{stdout}");

    let bad = scratch("trace_bad.s", "not assembly at all\n");
    let out = cli(&["trace", bad.to_str().unwrap()]);
    assert!(!out.status.success(), "malformed input must fail: {out:?}");

    let out = cli(&["trace", "--workload", "no-such-workload"]);
    assert!(!out.status.success(), "unknown workload must fail: {out:?}");
}

#[test]
fn metrics_json_reports_clb_counters() {
    let program = scratch("metrics.s", CRYPTO_PROGRAM);
    let out = cli(&["metrics", program.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"clb_hits\":"), "{stdout}");
    assert!(stdout.contains("\"qarma_ops_ksel_a\":"), "{stdout}");
    assert!(stdout.contains("\"clb_hit_rate\":"), "{stdout}");
}

#[test]
fn profile_attributes_by_function() {
    let program = scratch("profile.s", CRYPTO_PROGRAM);
    let out = cli(&["profile", program.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"name\":\"main\""), "{stdout}");
    assert!(stdout.contains("\"crypto_ops\":2"), "{stdout}");
}

#[test]
fn unknown_commands_exit_nonzero_with_usage() {
    let out = cli(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

/// Two encryptions under the same `(key, tweak)` pair: no error-severity
/// finding, but a tweak-diversity *warning* in whole-program mode.
const TWEAK_REUSE_PROGRAM: &str = "main:
  addi t6, sp, 8
  creak t5, t0[7:0], t6
  creak t4, a4[7:0], t6
  ebreak
";

#[test]
fn verify_workloads_corpus_gate_is_zero() {
    // The committed-baseline invocation CI runs (from the repo root).
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../verifier-baseline.txt");
    let out = cli(&[
        "verify",
        "--workloads",
        "--interprocedural",
        "--baseline",
        baseline,
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("verified 68 images: 0 violation(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("call graph:"), "{stdout}");
    assert!(stdout.contains("ratchet:"), "{stdout}");
}

#[test]
fn verify_sarif_emits_a_document_and_keeps_the_exit_contract() {
    let clean = scratch("sarif_clean.s", CLEAN_PROGRAM);
    let out = cli(&["verify", clean.to_str().unwrap(), "--sarif"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");

    let dirty = scratch("sarif_spill.s", SPILL_PROGRAM);
    let out = cli(&["verify", dirty.to_str().unwrap(), "--sarif"]);
    assert!(!out.status.success(), "findings must exit nonzero: {out:?}");
    // Failure output goes to stderr; the SARIF document still carries the
    // finding so CI can upload it.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("plain-spill"), "{stderr}");
}

#[test]
fn verify_ratchet_fails_on_new_findings_until_baselined() {
    let program = scratch("ratchet.s", TWEAK_REUSE_PROGRAM);
    let file = program.to_str().unwrap();

    // Warnings alone do not fail the gate...
    let out = cli(&["verify", file, "--interprocedural"]);
    assert!(out.status.success(), "{out:?}");

    // ...but against an empty baseline the ratchet flags them as new.
    let empty = scratch("ratchet_empty.txt", "# regvault verifier baseline v1\n");
    let out = cli(&[
        "verify",
        file,
        "--interprocedural",
        "--baseline",
        empty.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "new findings must fail: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("NEW FINDING"));

    // Recording the debt and re-checking against it passes again.
    let accepted = std::env::temp_dir().join(format!(
        "regvault_cli_exit_codes_{}_ratchet_accepted.txt",
        std::process::id()
    ));
    let out = cli(&[
        "verify",
        file,
        "--interprocedural",
        "--update-baseline",
        accepted.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let out = cli(&[
        "verify",
        file,
        "--interprocedural",
        "--baseline",
        accepted.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "baselined findings must pass: {out:?}"
    );

    // A truncated baseline must not silently accept everything.
    let malformed = scratch("ratchet_bad.txt", "img tweak-diversity main\n");
    let out = cli(&[
        "verify",
        file,
        "--interprocedural",
        "--baseline",
        malformed.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "malformed baseline must fail: {out:?}"
    );
}

#[test]
fn verify_rejects_contradictory_flag_combinations() {
    let out = cli(&["verify", "--workloads", "some.s"]);
    assert!(!out.status.success(), "{out:?}");
    let clean = scratch("flags_clean.s", CLEAN_PROGRAM);
    let out = cli(&["verify", clean.to_str().unwrap(), "--json", "--sarif"]);
    assert!(!out.status.success(), "{out:?}");
}
