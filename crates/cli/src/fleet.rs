//! The `fleet` subcommand: fork a fleet of machines from one warm
//! snapshot, drive them across a work-stealing pool (optionally under a
//! chaos kill schedule), and report serving/recovery accounting.

use std::fmt::Write as _;

use regvault_server::fleet::{run_fleet, FleetConfig, FleetReport};

use crate::CliError;

/// Parsed `fleet` arguments.
#[derive(Debug, Clone)]
pub struct FleetArgs {
    /// Scenario configuration.
    pub config: FleetConfig,
    /// Emit machine-readable JSON.
    pub json: bool,
    /// Smoke mode: a short chaos run that exits non-zero unless the
    /// accounting identity holds, every kill was recovered, and the warm
    /// image passed its restore-integrity checks.
    pub smoke: bool,
}

/// Parses `fleet` flags.
///
/// # Errors
///
/// Describes the offending flag or value.
pub fn parse_fleet_args(args: &[String]) -> Result<FleetArgs, CliError> {
    let mut config = FleetConfig::default();
    let mut json = false;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--instances" => {
                config.instances = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid instance count".to_string())?;
            }
            "--requests" => {
                config.requests_per_instance = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid request count".to_string())?;
            }
            "--rate" => {
                config.mean_interarrival = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid mean interarrival".to_string())?;
            }
            "--deadline" => {
                config.deadline = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid deadline".to_string())?;
            }
            "--seed" => {
                config.seed = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid seed".to_string())?;
            }
            "--workers" => {
                config.workers = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid worker count".to_string())?;
            }
            "--chaos" => {
                config.chaos_kill_interval = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid chaos kill interval".to_string())?;
            }
            "--cold" => config.micro_restore = false,
            other => return Err(format!("unknown fleet flag `{other}`")),
        }
    }
    if smoke {
        // Short but adversarial: a small chaotic fleet.
        config.instances = config.instances.min(8);
        config.requests_per_instance = config.requests_per_instance.min(16);
        if config.chaos_kill_interval == 0 {
            config.chaos_kill_interval = 6;
        }
    }
    Ok(FleetArgs {
        config,
        json,
        smoke,
    })
}

/// Renders a fleet report as JSON. The `scenario` object is deterministic
/// per seed; the `host` object carries wall-clock measurements.
#[must_use]
pub fn render_json(report: &FleetReport) -> String {
    let mut out = render_scenario_json(report);
    out.pop(); // trailing newline
    out.pop(); // closing brace
    let h = &report.host;
    let _ = writeln!(
        out,
        ",\"host\":{{\"boot_nanos\":{},\"fork_nanos_mean\":{:.0},\
         \"fork_speedup\":{:.1},\"run_nanos\":{},\"workers\":{},\
         \"steps_per_sec\":{:.0}}}}}",
        h.boot_nanos,
        h.fork_nanos_mean(),
        h.fork_speedup(),
        h.run_nanos,
        h.workers,
        report.steps_per_sec(),
    );
    out
}

/// Renders only the deterministic scenario half as JSON — byte-identical
/// across runs with the same seed and config, for seed-stability checks.
#[must_use]
pub fn render_scenario_json(report: &FleetReport) -> String {
    let s = &report.scenario;
    let q = |x: f64| s.latency.quantile(x).unwrap_or(0);
    let rq = |x: f64| s.recovery_latency.quantile(x).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"instances\":{},\"offered\":{},\"served\":{},\"failed\":{},\
         \"shed\":{},\"accounting_holds\":{},\
         \"kills\":{},\"micro_restores\":{},\"cold_boots\":{},\
         \"restore_mismatches\":{},\
         \"steps\":{},\"busy_cycles\":{},\
         \"latency\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{}}},\
         \"recovery\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}}},\
         \"warm_pages\":{},\"dirty_pages_mean\":{:.1},\"dirty_pages_max\":{}}}",
        s.instances,
        s.offered,
        s.served,
        s.failed,
        s.shed,
        s.accounting_holds(),
        s.kills,
        s.micro_restores,
        s.cold_boots,
        s.restore_mismatches,
        s.steps,
        s.busy_cycles,
        s.latency.count(),
        s.latency.mean(),
        q(0.5),
        q(0.9),
        q(0.99),
        s.recovery_latency.count(),
        s.recovery_latency.mean(),
        rq(0.5),
        rq(0.99),
        s.warm_pages,
        s.dirty_pages_mean(),
        s.dirty_pages_max,
    );
    out
}

/// Renders a fleet report for humans.
#[must_use]
pub fn render_human(report: &FleetReport) -> String {
    let s = &report.scenario;
    let h = &report.host;
    let q = |x: f64| s.latency.quantile(x).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} instances, {} offered = {} served + {} failed + {} shed ({})",
        s.instances,
        s.offered,
        s.served,
        s.failed,
        s.shed,
        if s.accounting_holds() {
            "accounting holds"
        } else {
            "ACCOUNTING VIOLATION"
        }
    );
    let _ = writeln!(
        out,
        "  fork      : {} warm pages shared; {:.1} dirty pages/instance \
         (max {}); fork {:.0} ns vs boot {} ns ({:.1}x cheaper)",
        s.warm_pages,
        s.dirty_pages_mean(),
        s.dirty_pages_max,
        h.fork_nanos_mean(),
        h.boot_nanos,
        h.fork_speedup(),
    );
    let _ = writeln!(
        out,
        "  serving   : {} steps across {} workers, {:.2} Msteps/s; \
         latency p50={} p90={} p99={} cycles",
        s.steps,
        h.workers,
        report.steps_per_sec() / 1e6,
        q(0.5),
        q(0.9),
        q(0.99),
    );
    if s.kills > 0 {
        let _ = writeln!(
            out,
            "  chaos     : {} kills -> {} micro-restores + {} cold boots \
             ({} integrity mismatches); recovery p50={} p99={} cycles",
            s.kills,
            s.micro_restores,
            s.cold_boots,
            s.restore_mismatches,
            s.recovery_latency.quantile(0.5).unwrap_or(0),
            s.recovery_latency.quantile(0.99).unwrap_or(0),
        );
    }
    out
}

/// Runs the fleet scenario.
///
/// # Errors
///
/// Returns flag-parse failures and — in `--smoke` mode — a non-zero exit
/// when the accounting identity is violated, a kill went unrecovered, or
/// the warm image failed a restore-integrity check.
pub fn cmd_fleet(args: &[String]) -> Result<String, CliError> {
    let args = parse_fleet_args(args)?;
    let report = run_fleet(&args.config);
    let rendered = if args.json {
        render_json(&report)
    } else {
        render_human(&report)
    };
    if args.smoke {
        let s = &report.scenario;
        if !s.accounting_holds() {
            return Err(format!(
                "{rendered}fleet --smoke: accounting identity violated\n"
            ));
        }
        if s.kills == 0 {
            return Err(format!("{rendered}fleet --smoke: chaos never fired\n"));
        }
        if s.micro_restores + s.cold_boots != s.kills {
            return Err(format!("{rendered}fleet --smoke: unrecovered kill\n"));
        }
        if s.restore_mismatches > 0 {
            return Err(format!(
                "{rendered}fleet --smoke: warm image failed integrity check\n"
            ));
        }
        if s.served == 0 {
            return Err(format!(
                "{rendered}fleet --smoke: nothing served through chaos\n"
            ));
        }
    }
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn smoke_run_passes_the_gate() {
        let out = cmd_fleet(&s(&["--smoke", "--seed", "11"])).expect("smoke passes");
        assert!(out.contains("accounting holds"), "{out}");
        assert!(out.contains("chaos"), "{out}");
    }

    #[test]
    fn json_output_is_machine_readable() {
        let out = cmd_fleet(&s(&[
            "--json",
            "--instances",
            "4",
            "--requests",
            "8",
            "--seed",
            "3",
        ]))
        .expect("fleet runs");
        assert!(out.contains("\"accounting_holds\":true"), "{out}");
        assert!(out.contains("\"fork_speedup\":"), "{out}");
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "balanced JSON: {out}"
        );
    }

    #[test]
    fn cold_mode_recovers_by_booting() {
        let out = cmd_fleet(&s(&[
            "--instances",
            "4",
            "--requests",
            "10",
            "--chaos",
            "4",
            "--cold",
            "--seed",
            "5",
        ]))
        .expect("cold fleet runs");
        assert!(out.contains("cold boots"), "{out}");
        assert!(out.contains("0 micro-restores"), "{out}");
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(cmd_fleet(&s(&["--bogus"])).is_err());
        assert!(cmd_fleet(&s(&["--instances"])).is_err());
        assert!(cmd_fleet(&s(&["--instances", "lots"])).is_err());
    }

    /// Seed stability: the deterministic scenario body is byte-identical
    /// across runs with the same seed — including across different worker
    /// counts — and changes with the seed.
    #[test]
    fn same_seed_renders_identical_scenario_json() {
        use regvault_server::fleet::{run_fleet, FleetConfig};
        let cfg = FleetConfig {
            instances: 5,
            requests_per_instance: 10,
            chaos_kill_interval: 4,
            seed: 0xABCD,
            ..FleetConfig::default()
        };
        let a = render_scenario_json(&run_fleet(&cfg));
        let b = render_scenario_json(&run_fleet(&FleetConfig { workers: 1, ..cfg }));
        assert_eq!(a, b, "scenario body must be seed-stable");
        let c = render_scenario_json(&run_fleet(&FleetConfig {
            seed: 0xABCE,
            ..cfg
        }));
        assert_ne!(a, c, "a different seed must actually change the run");
    }
}
