//! The observability subcommands: `trace`, `metrics` and `profile`.
//!
//! All three run a guest — either a bare-metal assembly file or a named
//! benchmark workload under the protected kernel — with a tracer and the
//! metrics registry active, then export what was observed:
//!
//! * `trace` — the structured event stream, as rendered text, JSON records,
//!   or Chrome `trace_event` JSON (loadable in Perfetto / `chrome://tracing`);
//! * `metrics` — every counter and histogram from the machine's registry
//!   (CLB hit/miss, per-ksel QARMA ops, scheduler counters, syscall-latency
//!   histograms), human-readable or JSON;
//! * `profile` — a per-function flat profile attributing retired
//!   instructions and crypto operations to the symbol table's function
//!   extents (recovered by `regvault_verifier::cfg`).

use std::fmt::Write as _;

use regvault_isa::asm;
use regvault_kernel::{Kernel, KernelConfig, ProtectionConfig};
use regvault_metrics::MetricsRegistry;
use regvault_sim::{
    ClbStats, MachineConfig, RingTracer, TraceEvent, TraceRecord, Tracer, TrapCause,
};
use regvault_verifier::cfg::{regions_from_symbols, FuncRegion};
use regvault_workloads::{
    lmbench::Lmbench, unixbench::UnixBench, Workload, STEP_BUDGET, TIMER_INTERVAL,
};

use crate::{boot_bare_machine, CliError};

/// Base address bare programs load at ([`crate::boot_bare_machine`]).
const BARE_CODE_BASE: u64 = 0x8000_0000;

/// What to run under observation.
#[derive(Debug, Clone)]
pub enum TraceSubject {
    /// A bare-metal assembly source (kernel privilege, keys installed).
    Bare(String),
    /// A named benchmark workload run under the full-protection kernel.
    Workload(String),
}

/// Output flavor for `trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One rendered line per record.
    Human,
    /// A JSON object with a `records` array.
    Json,
    /// Chrome `trace_event` JSON for Perfetto.
    Chrome,
}

/// Everything observable that a run produced.
struct RunArtifacts {
    tracer: Option<Box<dyn Tracer>>,
    metrics: MetricsRegistry,
    clb: ClbStats,
    outcome: String,
}

/// Resolves a workload name against the UnixBench and LMbench suites.
fn find_workload(name: &str) -> Result<(Box<dyn Workload>, String), CliError> {
    for item in UnixBench::ALL {
        if Workload::name(&item) == name {
            let source = item.source();
            return Ok((Box::new(item), source));
        }
    }
    for item in Lmbench::ALL {
        if Workload::name(&item) == name {
            let source = item.source();
            return Ok((Box::new(item), source));
        }
    }
    let mut known: Vec<&str> = UnixBench::ALL.iter().map(Workload::name).collect();
    known.extend(Lmbench::ALL.iter().map(Workload::name));
    Err(format!(
        "unknown workload `{name}` (expected one of: {})",
        known.join(", ")
    ))
}

/// Runs `subject` with `tracer` installed and collects the artifacts.
fn execute(subject: &TraceSubject, tracer: Box<dyn Tracer>) -> Result<RunArtifacts, CliError> {
    match subject {
        TraceSubject::Bare(source) => {
            let mut machine = boot_bare_machine(source, false)?;
            machine.install_tracer(tracer);
            let outcome = match machine.run_until_break(10_000_000) {
                Ok(()) => "break".to_owned(),
                Err(e) => e.to_string(),
            };
            Ok(RunArtifacts {
                tracer: machine.take_tracer(),
                metrics: machine.metrics_snapshot(),
                clb: machine.engine().clb().stats(),
                outcome,
            })
        }
        TraceSubject::Workload(name) => {
            let (workload, _source) = find_workload(name)?;
            let (image, entry) = workload.program();
            let mut kernel = Kernel::boot(KernelConfig {
                protection: ProtectionConfig::full(),
                machine: MachineConfig::default(),
                timer_interval: Some(TIMER_INTERVAL),
            })
            .map_err(|e| e.to_string())?;
            kernel.machine_mut().reset_stats();
            kernel.machine_mut().install_tracer(tracer);
            let outcome = match kernel.run_user(&image, entry, STEP_BUDGET) {
                Ok(value) => format!("break (a0 = {value})"),
                Err(e) => e.to_string(),
            };
            Ok(RunArtifacts {
                tracer: kernel.machine_mut().take_tracer(),
                metrics: kernel.machine().metrics_snapshot(),
                clb: kernel.machine().engine().clb().stats(),
                outcome,
            })
        }
    }
}

/// Minimal JSON string escaping (symbols and rendered instructions contain
/// no control characters, but be safe about quotes and backslashes).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an event's payload as a JSON object string.
fn args_json(event: &TraceEvent) -> String {
    match event {
        TraceEvent::InsnRetire { pc, insn } => {
            format!(
                "{{\"pc\":\"{pc:#x}\",\"insn\":\"{}\"}}",
                esc(&insn.to_string())
            )
        }
        TraceEvent::ClbHit { ksel, decrypt } | TraceEvent::ClbMiss { ksel, decrypt } => {
            format!(
                "{{\"ksel\":{ksel},\"dir\":\"{}\"}}",
                if *decrypt { "crd" } else { "cre" }
            )
        }
        TraceEvent::ClbEvict { ksel } | TraceEvent::ClbInvalidate { ksel } => {
            format!("{{\"ksel\":{ksel}}}")
        }
        TraceEvent::QarmaOp {
            ksel,
            tweak,
            decrypt,
        } => format!(
            "{{\"ksel\":{ksel},\"tweak\":\"{tweak:#x}\",\"dir\":\"{}\"}}",
            if *decrypt { "crd" } else { "cre" }
        ),
        TraceEvent::CipOpen { frame } | TraceEvent::CipClose { frame } => {
            format!("{{\"frame\":\"{frame:#x}\"}}")
        }
        TraceEvent::TrapEnter { cause } | TraceEvent::TrapExit { cause } => match cause {
            TrapCause::Syscall(num) => format!("{{\"cause\":\"syscall\",\"sysno\":{num}}}"),
            TrapCause::Timer => "{\"cause\":\"timer\"}".to_owned(),
            TrapCause::Exception(cause) => {
                format!(
                    "{{\"cause\":\"exception\",\"detail\":\"{}\"}}",
                    esc(&format!("{cause:?}"))
                )
            }
        },
        TraceEvent::Fault { kind, effect } => format!(
            "{{\"kind\":\"{}\",\"effect\":\"{}\"}}",
            esc(&format!("{kind:?}")),
            esc(&format!("{effect:?}"))
        ),
        TraceEvent::ContextSwitch { from, to } => {
            format!("{{\"from\":{from},\"to\":{to}}}")
        }
        TraceEvent::MemStore { addr, value } => {
            format!("{{\"addr\":\"{addr:#x}\",\"value\":\"{value:#x}\"}}")
        }
    }
}

/// Renders the retained records as Chrome `trace_event` JSON. Trap
/// entry/exit become `B`/`E` duration events (they nest properly in this
/// kernel); everything else becomes a thread-scoped instant event. The
/// timestamp axis is simulated cycles.
fn render_chrome(records: &[&TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = record.cycle;
        let args = args_json(&record.event);
        match &record.event {
            TraceEvent::TrapEnter { cause } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"trap\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{args}}}",
                    cause.label()
                );
            }
            TraceEvent::TrapExit { cause } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"trap\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{args}}}",
                    cause.label()
                );
            }
            event => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{args}}}",
                    event.kind()
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// `trace` subcommand: run under a [`RingTracer`] and export the stream.
///
/// # Errors
///
/// Assembler diagnostics and unknown workload names.
pub fn cmd_trace(
    subject: &TraceSubject,
    format: TraceFormat,
    limit: usize,
) -> Result<String, CliError> {
    let artifacts = execute(subject, Box::new(RingTracer::new(limit.max(1))))?;
    let tracer = artifacts.tracer.expect("tracer survives the run");
    let ring = tracer
        .into_any()
        .downcast::<RingTracer>()
        .expect("the installed tracer is a ring");
    let records = ring.records();
    match format {
        TraceFormat::Chrome => Ok(render_chrome(&records)),
        TraceFormat::Json => {
            let mut out = String::from("{\"records\":[");
            for (i, record) in records.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"cycle\":{},\"instret\":{},\"kind\":\"{}\",\"args\":{}}}",
                    record.cycle,
                    record.instret,
                    record.event.kind(),
                    args_json(&record.event)
                );
            }
            let _ = writeln!(
                out,
                "],\"emitted\":{},\"dropped\":{},\"outcome\":\"{}\"}}",
                ring.emitted(),
                ring.dropped_any(),
                esc(&artifacts.outcome)
            );
            Ok(out)
        }
        TraceFormat::Human => {
            let mut out = String::new();
            for record in &records {
                let _ = writeln!(out, "{}", record.render());
            }
            let _ = writeln!(
                out,
                "{} record(s) shown of {} emitted; outcome: {}",
                records.len(),
                ring.emitted(),
                artifacts.outcome
            );
            Ok(out)
        }
    }
}

/// `metrics` subcommand: run and export the machine's metrics registry.
///
/// # Errors
///
/// Assembler diagnostics and unknown workload names.
pub fn cmd_metrics(subject: &TraceSubject, json: bool) -> Result<String, CliError> {
    // A NullTracer keeps the run on the traced datapath without retaining
    // events; the metrics counters are maintained unconditionally anyway.
    let artifacts = execute(subject, Box::new(regvault_sim::NullTracer))?;
    let metrics = &artifacts.metrics;
    let clb = artifacts.clb;
    let hits = metrics.get("clb_hits").unwrap_or(0);
    let misses = metrics.get("clb_misses").unwrap_or(0);
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };

    if json {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in metrics.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{value}", esc(name));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, data) in metrics.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.2},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                esc(name),
                data.count(),
                data.sum(),
                data.mean(),
                data.min().unwrap_or(0),
                data.max().unwrap_or(0),
                data.quantile(0.50).unwrap_or(0),
                data.quantile(0.90).unwrap_or(0),
                data.quantile(0.99).unwrap_or(0),
            );
            // Raw log2 buckets as [lower_bound, count] pairs (empty buckets
            // elided), so downstream tooling can re-derive any quantile.
            let mut first_bucket = true;
            for (lo, n) in data.nonzero_buckets() {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{lo},{n}]");
            }
            out.push_str("]}");
        }
        let _ = writeln!(
            out,
            "}},\"clb_hit_rate\":{hit_rate:.6},\"clb\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{}}},\"outcome\":\"{}\"}}",
            clb.hits,
            clb.misses,
            clb.evictions,
            clb.invalidations,
            esc(&artifacts.outcome)
        );
        Ok(out)
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "counters:");
        let mut counters: Vec<(&str, u64)> = metrics.counters().collect();
        counters.sort_by(|a, b| a.0.cmp(b.0));
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        let _ = writeln!(out, "histograms:");
        for (name, data) in metrics.histograms() {
            let _ = writeln!(
                out,
                "  {name:<28} count={} mean={:.1} min={} p50={} p90={} p99={} max={}",
                data.count(),
                data.mean(),
                data.min().unwrap_or(0),
                data.quantile(0.50).unwrap_or(0),
                data.quantile(0.90).unwrap_or(0),
                data.quantile(0.99).unwrap_or(0),
                data.max().unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "CLB: {:.1}% hit rate ({hits} hits / {misses} misses), {} evictions",
            hit_rate * 100.0,
            clb.evictions
        );
        let _ = writeln!(out, "outcome: {}", artifacts.outcome);
        Ok(out)
    }
}

/// Per-function flat profiler: a [`Tracer`] that attributes retired
/// instructions and crypto operations to the function extent containing
/// the program counter (extents come from the assembler symbol table via
/// [`regions_from_symbols`]).
#[derive(Debug, Clone)]
pub struct ProfileTracer {
    code_base: u64,
    regions: Vec<FuncRegion>,
    steps: Vec<u64>,
    crypto: Vec<u64>,
    qarma: Vec<u64>,
    other_steps: u64,
    other_crypto: u64,
    other_qarma: u64,
    current: Option<usize>,
}

impl ProfileTracer {
    /// Builds a profiler over `regions` for an image loaded at `code_base`.
    #[must_use]
    pub fn new(code_base: u64, regions: Vec<FuncRegion>) -> Self {
        let n = regions.len();
        Self {
            code_base,
            regions,
            steps: vec![0; n],
            crypto: vec![0; n],
            qarma: vec![0; n],
            other_steps: 0,
            other_crypto: 0,
            other_qarma: 0,
            current: None,
        }
    }

    /// Index of the region containing byte offset `off`, if any.
    fn locate(&self, off: u64) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.start <= off);
        if idx == 0 {
            return None;
        }
        let candidate = idx - 1;
        (off < self.regions[candidate].end).then_some(candidate)
    }
}

impl Tracer for ProfileTracer {
    fn emit(&mut self, record: TraceRecord) {
        match record.event {
            TraceEvent::InsnRetire { pc, .. } => {
                self.current = self.locate(pc.wrapping_sub(self.code_base));
                match self.current {
                    Some(i) => self.steps[i] += 1,
                    None => self.other_steps += 1,
                }
            }
            // A hit or a miss is one crypto operation; a miss additionally
            // ran the QARMA core. Kernel-side crypto (CIP frames, protected
            // fields touched while servicing this function's trap) charges
            // the function that was executing.
            TraceEvent::ClbHit { .. } | TraceEvent::ClbMiss { .. } => match self.current {
                Some(i) => self.crypto[i] += 1,
                None => self.other_crypto += 1,
            },
            TraceEvent::QarmaOp { .. } => match self.current {
                Some(i) => self.qarma[i] += 1,
                None => self.other_qarma += 1,
            },
            _ => {}
        }
    }

    fn boxed_clone(&self) -> Box<dyn Tracer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// `profile` subcommand: per-function flat profile of a run.
///
/// # Errors
///
/// Assembler diagnostics and unknown workload names.
pub fn cmd_profile(subject: &TraceSubject, json: bool) -> Result<String, CliError> {
    // Pre-assemble once to build the symbol regions the profiler needs
    // before the run starts.
    let (symbols, image_len, code_base) = match subject {
        TraceSubject::Bare(source) => {
            let program = asm::assemble(source).map_err(|e| e.to_string())?;
            let symbols: Vec<(String, u64)> = program
                .symbols()
                .iter()
                .map(|(name, off)| (name.clone(), *off))
                .collect();
            (symbols, program.bytes().len() as u64, BARE_CODE_BASE)
        }
        TraceSubject::Workload(name) => {
            let (workload, source) = find_workload(name)?;
            let program = asm::assemble(&source).map_err(|e| e.to_string())?;
            let symbols: Vec<(String, u64)> = program
                .symbols()
                .iter()
                .map(|(sym, off)| (sym.clone(), *off))
                .collect();
            let (image, _) = workload.program();
            (
                symbols,
                image.len() as u64,
                regvault_kernel::layout::USER_CODE_BASE,
            )
        }
    };
    let regions = regions_from_symbols(
        symbols.iter().map(|(name, off)| (name, off)),
        image_len,
        &[],
    );
    let profiler = ProfileTracer::new(code_base, regions);
    let artifacts = execute(subject, Box::new(profiler))?;
    let profiler = artifacts
        .tracer
        .expect("tracer survives the run")
        .into_any()
        .downcast::<ProfileTracer>()
        .expect("the installed tracer is the profiler");

    let total_steps: u64 = profiler.steps.iter().sum::<u64>() + profiler.other_steps;
    if json {
        let mut out = String::from("{\"functions\":[");
        for (i, region) in profiler.regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"steps\":{},\"crypto_ops\":{},\"qarma_ops\":{}}}",
                esc(&region.name),
                profiler.steps[i],
                profiler.crypto[i],
                profiler.qarma[i]
            );
        }
        let _ = writeln!(
            out,
            "],\"other\":{{\"steps\":{},\"crypto_ops\":{},\"qarma_ops\":{}}},\"total_steps\":{total_steps},\"outcome\":\"{}\"}}",
            profiler.other_steps,
            profiler.other_crypto,
            profiler.other_qarma,
            esc(&artifacts.outcome)
        );
        Ok(out)
    } else {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>7} {:>10} {:>10}",
            "function", "steps", "%", "crypto", "qarma"
        );
        let mut order: Vec<usize> = (0..profiler.regions.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(profiler.steps[i]));
        for i in order {
            let pct = if total_steps == 0 {
                0.0
            } else {
                profiler.steps[i] as f64 / total_steps as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>6.1}% {:>10} {:>10}",
                profiler.regions[i].name,
                profiler.steps[i],
                pct,
                profiler.crypto[i],
                profiler.qarma[i]
            );
        }
        if profiler.other_steps + profiler.other_crypto + profiler.other_qarma > 0 {
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>7} {:>10} {:>10}",
                "(outside image)",
                profiler.other_steps,
                "",
                profiler.other_crypto,
                profiler.other_qarma
            );
        }
        let _ = writeln!(
            out,
            "total: {total_steps} steps; outcome: {}",
            artifacts.outcome
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CRYPTO_PROGRAM: &str = "main:
         li   t1, 0x9000
         li   a0, 0xbeef
         jal  ra, helper
         ebreak
helper:
         creak a0, a0[3:0], t1
         crdak a0, a0, t1, [3:0]
         ret";

    #[test]
    fn trace_human_renders_crypto_events() {
        let subject = TraceSubject::Bare(CRYPTO_PROGRAM.to_owned());
        let out = cmd_trace(&subject, TraceFormat::Human, 4096).unwrap();
        assert!(out.contains("clb_miss"), "{out}");
        assert!(out.contains("qarma"), "{out}");
        assert!(out.contains("outcome: break"), "{out}");
    }

    #[test]
    fn trace_chrome_is_structurally_valid_json() {
        let subject = TraceSubject::Bare(CRYPTO_PROGRAM.to_owned());
        let out = cmd_trace(&subject, TraceFormat::Chrome, 4096).unwrap();
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        assert!(out.contains("\"ph\":\"i\""), "{out}");
        // Balanced braces/brackets — no parser available, but the writer is
        // purely concatenative so this catches structural slips.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes, "{out}");
    }

    #[test]
    fn trace_json_counts_records() {
        let subject = TraceSubject::Bare(CRYPTO_PROGRAM.to_owned());
        let out = cmd_trace(&subject, TraceFormat::Json, 4096).unwrap();
        assert!(out.contains("\"emitted\":"), "{out}");
        assert!(out.contains("\"kind\":\"insn\""), "{out}");
    }

    #[test]
    fn metrics_match_clb_stats() {
        let subject = TraceSubject::Bare(CRYPTO_PROGRAM.to_owned());
        let out = cmd_metrics(&subject, true).unwrap();
        // The registry's counters and the CLB's own stats are reported side
        // by side; extract both and cross-check.
        let grab = |key: &str| -> u64 {
            let at = out.find(key).unwrap_or_else(|| panic!("{key} in {out}"));
            let rest = &out[at + key.len()..];
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert_eq!(grab("\"clb_hits\":"), grab("\"hits\":"));
        assert_eq!(grab("\"clb_misses\":"), grab("\"misses\":"));
    }

    #[test]
    fn metrics_json_reports_quantiles_and_buckets() {
        let subject = TraceSubject::Workload("syscall".to_owned());
        let out = cmd_metrics(&subject, true).unwrap();
        // Kernel-registered histograms (syscall_cycles) must carry computed
        // quantiles alongside the raw log2 buckets.
        assert!(out.contains("\"syscall_cycles\":{"), "{out}");
        assert!(out.contains("\"p50\":"), "{out}");
        assert!(out.contains("\"p90\":"), "{out}");
        assert!(out.contains("\"p99\":"), "{out}");
        assert!(out.contains("\"buckets\":[["), "{out}");
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes, "{out}");
    }

    #[test]
    fn profile_attributes_crypto_to_helper() {
        let subject = TraceSubject::Bare(CRYPTO_PROGRAM.to_owned());
        let out = cmd_profile(&subject, false).unwrap();
        let helper_line = out
            .lines()
            .find(|l| l.starts_with("helper"))
            .unwrap_or_else(|| panic!("helper row in {out}"));
        // helper executes both crypto instructions.
        assert!(helper_line.contains('2'), "{helper_line}");
        assert!(out.contains("main"), "{out}");
    }

    #[test]
    fn unknown_workload_is_rejected() {
        let subject = TraceSubject::Workload("no-such-bench".to_owned());
        assert!(cmd_trace(&subject, TraceFormat::Human, 16).is_err());
        assert!(cmd_metrics(&subject, false).is_err());
        assert!(cmd_profile(&subject, false).is_err());
    }
}
