//! The `serve` subcommand: run the supervised multi-tenant server scenario
//! and report sustained throughput, latency quantiles, and recovery
//! accounting.

use std::fmt::Write as _;

use regvault_server::{ServeConfig, ServeReport, Supervisor};

use crate::{parse_config, CliError};

/// Parsed `serve` arguments.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Scenario configuration.
    pub config: ServeConfig,
    /// Emit machine-readable JSON.
    pub json: bool,
    /// Smoke mode: a short faulted run that exits non-zero unless the
    /// accounting identity holds and the run completed.
    pub smoke: bool,
}

/// Parses `serve` flags.
///
/// # Errors
///
/// Describes the offending flag or value.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut config = ServeConfig::default();
    let mut json = false;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--tenants" => {
                config.tenants = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid tenant count".to_string())?;
            }
            "--requests" => {
                config.requests = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid request count".to_string())?;
            }
            "--rate" => {
                config.mean_interarrival = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid mean interarrival".to_string())?;
            }
            "--seed" => {
                config.seed = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid seed".to_string())?;
            }
            "--faults" => {
                config.fault_interval = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid fault interval".to_string())?;
            }
            "--queue-cap" => {
                config.queue_cap = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid queue cap".to_string())?;
            }
            "--no-micro-reboot" => config.micro_reboot = false,
            "--deadline-factor" => {
                config.deadline_factor = value_of(flag)?
                    .parse()
                    .map_err(|_| "invalid deadline factor".to_string())?;
            }
            "--config" => {
                config.protection = parse_config(value_of(flag)?)?;
            }
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    if smoke {
        // Short but adversarial: live faults on, small request budget.
        config.requests = config.requests.min(150);
        if config.fault_interval == 0 {
            config.fault_interval = 50_000;
        }
    }
    Ok(ServeArgs {
        config,
        json,
        smoke,
    })
}

/// Renders a serve report as JSON (same hand-rolled shape as the rest of
/// the CLI: no serde in the container).
#[must_use]
pub fn render_json(report: &ServeReport) -> String {
    let q = |x: f64| report.latency.quantile(x).unwrap_or(0);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"offered\":{},\"served\":{},\"failed\":{},\"shed\":{},\
         \"shed_deadline\":{},\
         \"accounting_holds\":{},\"rps_per_mcycle\":{:.3},\
         \"faults_injected\":{},\"recoveries\":{},\"respawns\":{},\
         \"respawns_denied\":{},\"frontend_respawns\":{},\
         \"cold_restarts\":{},\"micro_reboots\":{},\
         \"micro_reboot_mismatches\":{},\
         \"breaker_opens\":{},\"terminal_tenants\":{},\
         \"cycles\":{},\"aborted\":{},\
         \"latency\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{}}},\
         \"tenants\":[",
        report.offered,
        report.served,
        report.failed,
        report.shed,
        report.shed_deadline,
        report.accounting_holds(),
        report.rps_per_mcycle(),
        report.faults_injected,
        report.recoveries,
        report.respawns,
        report.respawns_denied,
        report.frontend_respawns,
        report.cold_restarts,
        report.micro_reboots,
        report.micro_reboot_mismatches,
        report.breaker_opens,
        report.terminal_tenants,
        report.cycles,
        report.aborted,
        report.latency.count(),
        report.latency.mean(),
        q(0.5),
        q(0.9),
        q(0.99),
    );
    for (i, t) in report.tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"slot\":{},\"state\":\"{}\",\"served\":{},\"failed\":{},\
             \"shed\":{},\"respawns\":{},\"respawns_denied\":{},\
             \"breaker_opens\":{}}}",
            t.slot,
            t.state,
            t.served,
            t.failed,
            t.shed,
            t.respawns,
            t.respawns_denied,
            t.breaker_opens,
        );
    }
    out.push_str("]}\n");
    out
}

/// Renders a serve report for humans.
#[must_use]
pub fn render_human(report: &ServeReport) -> String {
    let q = |x: f64| report.latency.quantile(x).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} offered = {} served + {} failed + {} shed ({})",
        report.offered,
        report.served,
        report.failed,
        report.shed,
        if report.accounting_holds() {
            "accounting holds"
        } else {
            "ACCOUNTING VIOLATION"
        }
    );
    let _ = writeln!(
        out,
        "  throughput: {:.2} served/Mcycle over {} cycles",
        report.rps_per_mcycle(),
        report.cycles
    );
    let _ = writeln!(
        out,
        "  latency   : p50={} p90={} p99={} cycles (n={})",
        q(0.5),
        q(0.9),
        q(0.99),
        report.latency.count()
    );
    let _ = writeln!(
        out,
        "  faults    : {} injected, {} fail-overs, {} respawns \
         ({} denied), {} frontend respawns, {} micro reboots, {} cold restarts",
        report.faults_injected,
        report.recoveries,
        report.respawns,
        report.respawns_denied,
        report.frontend_respawns,
        report.micro_reboots,
        report.cold_restarts
    );
    if report.shed_deadline > 0 {
        let _ = writeln!(
            out,
            "  deadline  : {} stale request(s) shed at dequeue",
            report.shed_deadline
        );
    }
    let _ = writeln!(
        out,
        "  breakers  : {} opens, {} terminal tenant(s)",
        report.breaker_opens, report.terminal_tenants
    );
    for t in &report.tenants {
        let _ = writeln!(
            out,
            "  tenant {}  : {:<22} served={} failed={} shed={} respawns={}",
            t.slot, t.state, t.served, t.failed, t.shed, t.respawns
        );
    }
    if report.aborted {
        let _ = writeln!(out, "  ABORTED: run stopped at its safety guard");
    }
    out
}

/// Runs the serve scenario.
///
/// # Errors
///
/// Returns flag-parse failures, kernel boot failures, and — in `--smoke`
/// mode — a non-zero exit when the run aborted or the accounting identity
/// is violated.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let args = parse_serve_args(args)?;
    let report = Supervisor::new(args.config)
        .map_err(|e| format!("serve: kernel boot failed: {e}"))?
        .run();
    let rendered = if args.json {
        render_json(&report)
    } else {
        render_human(&report)
    };
    if args.smoke {
        if report.aborted {
            return Err(format!("{rendered}serve --smoke: run aborted\n"));
        }
        if !report.accounting_holds() {
            return Err(format!(
                "{rendered}serve --smoke: accounting identity violated\n"
            ));
        }
        // Smoke mode always arms the injector; a zero count means it
        // silently failed to fire.
        if report.faults_injected == 0 {
            return Err(format!(
                "{rendered}serve --smoke: fault injector never fired\n"
            ));
        }
    }
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn smoke_run_passes_the_gate() {
        let out = cmd_serve(&s(&["--smoke", "--seed", "9"])).expect("smoke passes");
        assert!(out.contains("accounting holds"), "{out}");
        assert!(out.contains("faults"), "{out}");
    }

    #[test]
    fn json_output_is_machine_readable() {
        let out = cmd_serve(&s(&[
            "--json",
            "--requests",
            "60",
            "--faults",
            "60000",
            "--seed",
            "4",
        ]))
        .expect("serve runs");
        assert!(out.contains("\"accounting_holds\":true"), "{out}");
        assert!(out.contains("\"p99\":"), "{out}");
        assert!(out.contains("\"tenants\":["), "{out}");
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "balanced JSON: {out}"
        );
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(cmd_serve(&s(&["--bogus"])).is_err());
        assert!(cmd_serve(&s(&["--tenants"])).is_err());
        assert!(cmd_serve(&s(&["--tenants", "lots"])).is_err());
        assert!(cmd_serve(&s(&["--config", "yolo"])).is_err());
    }

    /// Seed stability: the serve scenario runs entirely in virtual time,
    /// so the full JSON body (latency quantiles included) is byte-identical
    /// for the same seed and differs for another.
    #[test]
    fn same_seed_renders_identical_json() {
        let args = |seed: &str| {
            s(&[
                "--json",
                "--requests",
                "80",
                "--faults",
                "40000",
                "--seed",
                seed,
            ])
        };
        let a = cmd_serve(&args("21")).expect("serve runs");
        let b = cmd_serve(&args("21")).expect("serve runs");
        assert_eq!(a, b, "serve JSON must be seed-stable");
        let c = cmd_serve(&args("22")).expect("serve runs");
        assert_ne!(a, c, "a different seed must actually change the run");
    }

    #[test]
    fn unprotected_config_is_accepted() {
        let out = cmd_serve(&s(&["--config", "base", "--requests", "40", "--seed", "2"]))
            .expect("base config runs");
        assert!(out.contains("accounting holds"), "{out}");
    }
}
