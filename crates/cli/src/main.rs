//! The `regvault-cli` binary. All logic lives in [`regvault_cli`].

use std::fs;
use std::process::ExitCode;

use regvault_cli::{
    cmd_asm, cmd_disasm, cmd_hwcost, cmd_pentest, cmd_run, cmd_verify_source,
    cmd_verify_workloads, usage,
};

fn read_source(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn dispatch(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, file] if cmd == "asm" => cmd_asm(&read_source(file)?),
        [cmd, file] if cmd == "disasm" => cmd_disasm(&read_source(file)?),
        [cmd, file] if cmd == "run" => cmd_run(&read_source(file)?, 10_000_000),
        [cmd, file, steps] if cmd == "run" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_run(&read_source(file)?, steps)
        }
        [cmd] if cmd == "pentest" => cmd_pentest("full"),
        [cmd, config] if cmd == "pentest" => cmd_pentest(config),
        [cmd] if cmd == "hwcost" => cmd_hwcost("8"),
        [cmd, entries] if cmd == "hwcost" => cmd_hwcost(entries),
        [cmd, flag] if cmd == "verify" && flag == "--workloads" => cmd_verify_workloads(false),
        [cmd, flag, json] if cmd == "verify" && flag == "--workloads" && json == "--json" => {
            cmd_verify_workloads(true)
        }
        [cmd, file] if cmd == "verify" => cmd_verify_source(&read_source(file)?, false),
        [cmd, file, json] if cmd == "verify" && json == "--json" => {
            cmd_verify_source(&read_source(file)?, true)
        }
        _ => Err(usage().to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
