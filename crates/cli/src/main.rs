//! The `regvault-cli` binary. All logic lives in [`regvault_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match regvault_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
