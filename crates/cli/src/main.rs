//! The `regvault-cli` binary. All logic lives in [`regvault_cli`].

use std::fs;
use std::process::ExitCode;

use regvault_cli::{
    cmd_asm, cmd_disasm, cmd_divergence, cmd_hwcost, cmd_pentest, cmd_record, cmd_replay,
    cmd_run, cmd_verify_source, cmd_verify_workloads, parse_flip, usage,
};

fn read_source(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// `record <file.s> <out.bundle> [--steps N] [--flip I:ADDR:BIT]...`
fn dispatch_record(args: &[String]) -> Result<String, String> {
    let [file, out_path, flags @ ..] = args else {
        return Err(usage().to_owned());
    };
    let mut steps = 10_000_000u64;
    let mut faults = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("`{flag}` needs a value"))?;
        match flag.as_str() {
            "--steps" => {
                steps = value
                    .parse()
                    .map_err(|_| format!("invalid step budget `{value}`"))?;
            }
            "--flip" => faults.push(parse_flip(value)?),
            other => return Err(format!("unknown record flag `{other}`")),
        }
    }
    let (report, bytes) = cmd_record(&read_source(file)?, steps, &faults)?;
    fs::write(out_path, bytes).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    Ok(format!("{report}bundle written to {out_path}\n"))
}

fn dispatch(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, file] if cmd == "asm" => cmd_asm(&read_source(file)?),
        [cmd, file] if cmd == "disasm" => cmd_disasm(&read_source(file)?),
        [cmd, file] if cmd == "run" => cmd_run(&read_source(file)?, 10_000_000),
        [cmd, file, steps] if cmd == "run" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_run(&read_source(file)?, steps)
        }
        [cmd] if cmd == "pentest" => cmd_pentest("full"),
        [cmd, config] if cmd == "pentest" => cmd_pentest(config),
        [cmd] if cmd == "hwcost" => cmd_hwcost("8"),
        [cmd, entries] if cmd == "hwcost" => cmd_hwcost(entries),
        [cmd, flag] if cmd == "verify" && flag == "--workloads" => cmd_verify_workloads(false),
        [cmd, flag, json] if cmd == "verify" && flag == "--workloads" && json == "--json" => {
            cmd_verify_workloads(true)
        }
        [cmd, file] if cmd == "verify" => cmd_verify_source(&read_source(file)?, false),
        [cmd, file, json] if cmd == "verify" && json == "--json" => {
            cmd_verify_source(&read_source(file)?, true)
        }
        [cmd, rest @ ..] if cmd == "record" => dispatch_record(rest),
        [cmd, bundle] if cmd == "replay" => {
            let bytes =
                fs::read(bundle).map_err(|e| format!("cannot read `{bundle}`: {e}"))?;
            cmd_replay(&bytes)
        }
        [cmd, file] if cmd == "divergence" => {
            cmd_divergence(&read_source(file)?, 1_000_000, 256)
        }
        [cmd, file, steps] if cmd == "divergence" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_divergence(&read_source(file)?, steps, 256)
        }
        [cmd, file, steps, interval] if cmd == "divergence" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            let interval = interval
                .parse()
                .map_err(|_| format!("invalid check interval `{interval}`"))?;
            cmd_divergence(&read_source(file)?, steps, interval)
        }
        _ => Err(usage().to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
