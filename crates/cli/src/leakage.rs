//! The `leakage` subcommand: run the ciphertext side-channel campaign
//! over the workload corpus (plus the supervised serve scenario) and
//! report dictionary collisions with the nonce-diversified rekey
//! mitigation off vs on.

use std::fmt::Write as _;

use regvault_attacks::leakage::{
    cip_frame_windows, measure_scenario, trap_storm_scenario, GuestScenario, LeakageReport,
    ScenarioLeakage,
};
use regvault_attacks::oracle::{CollisionReport, MemOracle};
use regvault_server::{ServeConfig, Supervisor};
use regvault_workloads::{lmbench::Lmbench, spec::Spec, unixbench::UnixBench, Workload};

use crate::CliError;

/// Default campaign seed (shared with the bench bin so the committed
/// `BENCH_leakage.json` reproduces byte-for-byte).
pub const DEFAULT_SEED: u64 = 0x5EC7_0C11;

/// Parsed `leakage` arguments.
#[derive(Debug, Clone)]
pub struct LeakageArgs {
    /// Campaign seed.
    pub seed: u64,
    /// Emit machine-readable JSON.
    pub json: bool,
    /// Smoke mode: a trimmed corpus, exiting non-zero unless the
    /// unmitigated runs leak and the mitigation cuts collisions >= 10x.
    pub smoke: bool,
}

/// Parses `leakage` flags.
///
/// # Errors
///
/// Describes the offending flag or value.
pub fn parse_leakage_args(args: &[String]) -> Result<LeakageArgs, CliError> {
    let mut parsed = LeakageArgs {
        seed: DEFAULT_SEED,
        json: false,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => parsed.json = true,
            "--smoke" => parsed.smoke = true,
            "--seed" => {
                let value = it.next().ok_or("`--seed` needs a value")?;
                parsed.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            other => return Err(format!("unknown leakage flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn workload_scenario(workload: &dyn Workload) -> GuestScenario {
    let (image, entry) = workload.program();
    GuestScenario::new(workload.name(), image, entry)
}

/// The guest corpus: the synthetic trap storm plus (full mode) every
/// UnixBench/LMbench/SPEC workload.
#[must_use]
pub fn corpus(smoke: bool) -> Vec<GuestScenario> {
    let mut scenarios = vec![trap_storm_scenario()];
    if smoke {
        scenarios.push(workload_scenario(&UnixBench::Syscall));
        scenarios.push(workload_scenario(&UnixBench::Context1));
    } else {
        for w in UnixBench::ALL {
            scenarios.push(workload_scenario(&w));
        }
        for w in Lmbench::ALL {
            scenarios.push(workload_scenario(&w));
        }
        for w in Spec::ALL {
            scenarios.push(workload_scenario(&w));
        }
    }
    scenarios
}

/// Runs the supervised serve scenario with the oracle installed, one arm
/// per mitigation setting. Fault injection stays off: a cold restart
/// boots a fresh kernel and would silently drop the oracle mid-run.
///
/// # Errors
///
/// Describes a kernel boot/run failure.
pub fn serve_scenario(seed: u64, smoke: bool) -> Result<ScenarioLeakage, CliError> {
    let arm = |epoch_rekey: bool| -> Result<(CollisionReport, u64), CliError> {
        let cfg = ServeConfig {
            requests: if smoke { 60 } else { 200 },
            fault_interval: 0,
            seed,
            epoch_rekey,
            ..ServeConfig::default()
        };
        let mut supervisor = Supervisor::new(cfg).map_err(|e| format!("serve boot: {e:?}"))?;
        supervisor
            .kernel_mut()
            .machine_mut()
            .install_tracer(Box::new(MemOracle::watching(cip_frame_windows())));
        let report = supervisor.run_instrumented();
        if report.aborted {
            return Err("serve leakage scenario aborted".to_owned());
        }
        let rekeys = supervisor
            .kernel_mut()
            .machine()
            .metrics()
            .get("epoch_rekeys")
            .unwrap_or(0);
        let oracle = supervisor
            .kernel_mut()
            .machine_mut()
            .take_tracer()
            .ok_or("serve run lost the oracle (unexpected cold restart?)")?
            .into_any()
            .downcast::<MemOracle>()
            .map_err(|_| "tracer was not the oracle".to_owned())?;
        Ok((oracle.report(), rekeys))
    };
    let (off, _) = arm(false)?;
    let (on, epoch_rekeys) = arm(true)?;
    Ok(ScenarioLeakage {
        name: "serve".to_owned(),
        off,
        on,
        epoch_rekeys,
    })
}

/// Runs the whole campaign (guest corpus + serve scenario).
///
/// # Errors
///
/// Describes the first scenario failure.
pub fn run_campaign(seed: u64, smoke: bool) -> Result<LeakageReport, CliError> {
    let mut scenarios = Vec::new();
    for scenario in corpus(smoke) {
        scenarios.push(
            measure_scenario(&scenario, seed)
                .map_err(|e| format!("leakage scenario `{}`: {e:?}", scenario.name))?,
        );
    }
    scenarios.push(serve_scenario(seed, smoke)?);
    Ok(LeakageReport { scenarios })
}

fn render_report_json(report: &CollisionReport) -> String {
    format!(
        "{{\"observations\":{},\"distinct_pairs\":{},\"collisions\":{},\
         \"colliding_pairs\":{},\"rate\":{:.6}}}",
        report.observations,
        report.distinct_pairs,
        report.collisions,
        report.colliding_pairs,
        report.collision_rate()
    )
}

/// Renders the campaign as JSON (hand-rolled, byte-stable per seed).
#[must_use]
pub fn render_json(report: &LeakageReport, seed: u64) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"seed\":{seed},\"scenarios\":[");
    for (i, row) in report.scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"off\":{},\"on\":{},\"epoch_rekeys\":{},\
             \"reduction\":{:.2}}}",
            row.name,
            render_report_json(&row.off),
            render_report_json(&row.on),
            row.epoch_rekeys,
            row.reduction()
        );
    }
    let _ = writeln!(
        out,
        "],\"total_off_collisions\":{},\"total_on_collisions\":{},\
         \"overall_reduction\":{:.2}}}",
        report.total_off_collisions(),
        report.total_on_collisions(),
        report.overall_reduction()
    );
    out
}

fn render_human(report: &LeakageReport, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ciphertext-leakage campaign (seed {seed:#x}, oracle on the interrupt-frame windows)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scenario", "obs", "coll (off)", "coll (on)", "rekeys", "reduction"
    );
    for row in &report.scenarios {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>9.1}x",
            row.name,
            row.off.observations,
            row.off.collisions,
            row.on.collisions,
            row.epoch_rekeys,
            row.reduction()
        );
    }
    let _ = writeln!(
        out,
        "total: {} collisions unmitigated, {} mitigated ({:.1}x reduction)",
        report.total_off_collisions(),
        report.total_on_collisions(),
        report.overall_reduction()
    );
    out
}

/// `leakage [--seed S] [--json] [--smoke]`.
///
/// # Errors
///
/// Flag errors, scenario failures, and (smoke mode) a failed leakage
/// gate: the unmitigated corpus must leak and the mitigation must cut
/// collisions at least 10x.
pub fn cmd_leakage(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_leakage_args(args)?;
    let report = run_campaign(parsed.seed, parsed.smoke)?;
    if parsed.smoke {
        if report.total_off_collisions() == 0 {
            return Err("leakage smoke: unmitigated corpus shows no collisions — \
                 the oracle is not observing the side channel"
                .to_owned());
        }
        if report.overall_reduction() < 10.0 {
            return Err(format!(
                "leakage smoke: mitigation reduction {:.1}x is below the 10x floor \
                 (off={} on={})",
                report.overall_reduction(),
                report.total_off_collisions(),
                report.total_on_collisions()
            ));
        }
    }
    if parsed.json {
        Ok(render_json(&report, parsed.seed))
    } else {
        Ok(render_human(&report, parsed.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_passes_its_own_gate() {
        let out = cmd_leakage(&["--smoke".to_owned()]).unwrap();
        assert!(out.contains("trap_storm"));
        assert!(out.contains("serve"));
    }

    #[test]
    fn json_output_is_byte_stable_per_seed() {
        let args = ["--smoke".to_owned(), "--json".to_owned()];
        let a = cmd_leakage(&args).unwrap();
        let b = cmd_leakage(&args).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"seed\":"));
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(cmd_leakage(&["--bogus".to_owned()]).is_err());
    }
}
