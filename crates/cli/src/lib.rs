//! Library backing the `regvault-cli` binary.
//!
//! Each subcommand is a function from parsed arguments to an output string,
//! so the whole surface is unit-testable without spawning processes:
//!
//! * `asm <file.s>` — assemble to a hex word listing;
//! * `disasm <file.s|->` — assemble then disassemble (round-trip view);
//! * `run <file.s>` — execute a bare-metal guest program on the simulated
//!   RegVault machine (keys `a`–`g` pre-loaded) and dump the registers;
//! * `pentest [config]` — run the Table 4 suite against a configuration;
//! * `hwcost [entries]` — print the Table 3 area model for a CLB size;
//! * `verify <file.s>` / `verify --workloads` — run the binary-level
//!   protection verifier over an assembled program or the whole benchmark
//!   corpus (`--json` for machine-readable reports);
//! * `record <file.s> <out.bundle>` — run a program while recording every
//!   nondeterministic input into a self-contained repro bundle;
//! * `replay <bundle>` — re-execute a bundle and check it reproduces
//!   bit-for-bit (same architectural digest, same outcome);
//! * `divergence <file.s>` — co-run the optimized and reference datapaths
//!   in lockstep and localize the first divergent instruction, if any;
//! * `serve` — run the supervised multi-tenant server scenario (open-loop
//!   load over kernel IPC under live fault injection) and report
//!   throughput, latency quantiles, and recovery/shed accounting;
//! * `fleet` — fork a fleet of machines from one warm snapshot (CoW page
//!   sharing), drive them across a work-stealing pool under an optional
//!   chaos kill schedule, and report fork cost, serving throughput, and
//!   micro-restore vs cold-boot recovery accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
pub mod leakage;
mod observe;
mod serve;

pub use fleet::{cmd_fleet, parse_fleet_args, FleetArgs};
pub use observe::{cmd_metrics, cmd_profile, cmd_trace, ProfileTracer, TraceFormat, TraceSubject};
pub use serve::{cmd_serve, parse_serve_args, ServeArgs};

use std::fmt::Write as _;

use regvault_attacks::run_all;
use regvault_compiler::{compile, verify as compiler_verify, CompileConfig};
use regvault_core::hwcost;
use regvault_isa::{asm, disasm, KeyReg, Reg};
use regvault_kernel::ProtectionConfig;
use regvault_sim::{
    run_lockstep, run_tiered_lockstep, FaultKind, FaultPlan, Machine, MachineConfig, ReproBundle,
};
use regvault_verifier::baseline::Baseline;
use regvault_verifier::callgraph::CallGraphStats;
use regvault_verifier::{
    sarif_report, verify as verifier_verify, ProtectionManifest, Report, Severity, VerifyOptions,
    ViolationKind,
};
use regvault_workloads::{lmbench::Lmbench, spec::Spec, unixbench::UnixBench, Workload};

/// Error string type used by the CLI (messages go straight to stderr).
pub type CliError = String;

/// Assembles `source`, returning an `offset: word` listing.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input.
pub fn cmd_asm(source: &str) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, word) in program.words().iter().enumerate() {
        let _ = writeln!(out, "{:#06x}: {word:08x}", i * 4);
    }
    for (symbol, offset) in program.symbols() {
        let _ = writeln!(out, "symbol {symbol} = {offset:#x}");
    }
    Ok(out)
}

/// Assembles then disassembles `source` — shows what the hardware decodes.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input.
pub fn cmd_disasm(source: &str) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for line in disasm::disassemble(program.bytes()) {
        let _ = writeln!(out, "{}", line.render_annotated());
    }
    let (crypto, total) = disasm::crypto_density(program.bytes());
    let _ = writeln!(out, "; {crypto}/{total} instructions are cre/crd");
    Ok(out)
}

/// Runs a bare-metal program (kernel privilege, keys installed) and dumps
/// the final register file and statistics.
///
/// # Errors
///
/// Returns assembler or simulator diagnostics.
pub fn cmd_run(source: &str, max_steps: u64) -> Result<String, CliError> {
    let mut machine = boot_bare_machine(source, false)?;
    machine
        .run_until_break(max_steps)
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "halted after {} instructions, {} cycles",
        machine.stats().instret,
        machine.stats().cycles
    );
    for chunk in Reg::ALL.chunks(4) {
        for reg in chunk {
            let _ = write!(
                out,
                "{:>4} = {:#018x}  ",
                reg.name(),
                machine.hart().reg(*reg)
            );
        }
        let _ = writeln!(out);
    }
    let clb = machine.engine().clb().stats();
    let _ = writeln!(
        out,
        "crypto: {} cre / {} crd, CLB {:.1}% hits",
        machine.stats().encrypts,
        machine.stats().decrypts,
        clb.hit_ratio() * 100.0
    );
    Ok(out)
}

/// Boots the standard bare-metal machine every execution subcommand uses:
/// keys `a`–`g` installed, program at `0x8000_0000`, a mapped stack region,
/// kernel privilege. `reference` selects the reference datapath.
pub(crate) fn boot_bare_machine(source: &str, reference: bool) -> Result<Machine, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut machine = Machine::new(MachineConfig {
        reference_datapath: reference,
        ..MachineConfig::default()
    });
    for (i, key) in [
        KeyReg::A,
        KeyReg::B,
        KeyReg::C,
        KeyReg::D,
        KeyReg::E,
        KeyReg::F,
        KeyReg::G,
    ]
    .iter()
    .enumerate()
    {
        machine
            .write_key_register(*key, 0x1000 + i as u64, 0x2000 + i as u64)
            .expect("general key");
    }
    machine.load_program(0x8000_0000, program.bytes());
    machine.memory_mut().map_region(0x7000_0000, 0x10000);
    machine.hart_mut().set_reg(Reg::Sp, 0x7000_F000);
    machine.hart_mut().set_pc(0x8000_0000);
    Ok(machine)
}

/// Parses one `--flip INSTRET:ADDR:BIT` specification (addr may be hex).
///
/// # Errors
///
/// Describes the expected shape on malformed input.
pub fn parse_flip(spec: &str) -> Result<(u64, FaultKind), CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let err = || format!("invalid flip `{spec}` (expected INSTRET:ADDR:BIT)");
    let [instret, addr, bit] = parts[..] else {
        return Err(err());
    };
    let parse_u64 = |s: &str| -> Result<u64, CliError> {
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err())
        } else {
            s.parse().map_err(|_| err())
        }
    };
    Ok((
        parse_u64(instret)?,
        FaultKind::MemBitFlip {
            addr: parse_u64(addr)?,
            bit: (parse_u64(bit)? % 64) as u8,
        },
    ))
}

/// Runs `source` bare-metal while recording every nondeterministic input,
/// returning `(report, serialized repro bundle)`. `faults` are injected via
/// a scheduled [`FaultPlan`]; the bundle embeds the pre-run snapshot, the
/// event log, and the final architectural digest the replay must reach.
///
/// # Errors
///
/// Returns assembler diagnostics; simulator errors become part of the
/// recorded outcome rather than failing the recording.
pub fn cmd_record(
    source: &str,
    max_steps: u64,
    faults: &[(u64, FaultKind)],
) -> Result<(String, Vec<u8>), CliError> {
    let mut machine = boot_bare_machine(source, false)?;
    let start = machine.snapshot();
    machine.start_recording();
    if !faults.is_empty() {
        let mut plan = FaultPlan::new();
        for &(instret, kind) in faults {
            plan = plan.at(instret, kind);
        }
        machine.set_fault_plan(plan);
    }
    let outcome = match machine.run_until_break(max_steps) {
        Ok(()) => "break".to_owned(),
        Err(e) => e.to_string(),
    };
    let log = machine.stop_recording().expect("recording was started");
    let digest = machine.arch_digest();
    let bundle = ReproBundle {
        meta: vec![
            ("harness".to_owned(), "cli-bare-metal".to_owned()),
            ("steps".to_owned(), machine.stats().instret.to_string()),
        ],
        snapshot: Some(start),
        log,
        expected_digest: digest,
        steps: max_steps,
        outcome: outcome.clone(),
    };
    let report = format!(
        "recorded {} fault event(s) over {} instructions\n\
         outcome: {outcome}\n\
         final digest: {digest:#018x}\n",
        bundle.log.len(),
        machine.stats().instret,
    );
    Ok((report, bundle.to_bytes()))
}

/// Replays a repro bundle and checks it reproduces bit-for-bit.
///
/// # Errors
///
/// Rejects malformed bundles (bad magic/version/checksum), bundles without
/// an embedded snapshot, and — the interesting case — replays whose final
/// architectural digest or outcome differs from the recording.
pub fn cmd_replay(bundle_bytes: &[u8]) -> Result<String, CliError> {
    let bundle = ReproBundle::from_bytes(bundle_bytes).map_err(|e| e.to_string())?;
    let snapshot = bundle.snapshot.as_ref().ok_or_else(|| {
        "bundle carries no snapshot; replay it with its original harness \
         (fault_campaign --replay)"
            .to_owned()
    })?;
    let mut machine = Machine::from_snapshot(snapshot).map_err(|e| e.to_string())?;
    if !bundle.log.is_empty() {
        machine.set_fault_plan(bundle.log.to_plan());
    }
    let outcome = match machine.run_until_break(bundle.steps) {
        Ok(()) => "break".to_owned(),
        Err(e) => e.to_string(),
    };
    let digest = machine.arch_digest();
    if digest != bundle.expected_digest || outcome != bundle.outcome {
        return Err(format!(
            "REPLAY MISMATCH\n\
             outcome: recorded `{}`, replayed `{outcome}`\n\
             digest : recorded {:#018x}, replayed {digest:#018x}\n",
            bundle.outcome, bundle.expected_digest
        ));
    }
    Ok(format!(
        "replay OK: {} event(s), outcome `{outcome}`, digest {digest:#018x} (bit-for-bit)\n",
        bundle.log.len()
    ))
}

/// Co-runs the optimized and reference datapaths over `source` in lockstep.
///
/// # Errors
///
/// Returns assembler diagnostics, or — the interesting case — a report
/// naming the exact first divergent instruction and the state component
/// that differed.
pub fn cmd_divergence(source: &str, max_steps: u64, interval: u64) -> Result<String, CliError> {
    let mut fast = boot_bare_machine(source, false)?;
    let mut reference = boot_bare_machine(source, true)?;
    let outcome = run_lockstep(&mut fast, &mut reference, max_steps, interval);
    match outcome.divergence {
        None => Ok(format!(
            "lockstep OK: {} instructions, datapaths architecturally identical \
             (digest {:#018x})\n",
            outcome.steps,
            fast.arch_digest()
        )),
        Some(divergence) => Err(format!(
            "DIVERGENCE at instruction {}: {}\n",
            divergence.step, divergence.detail
        )),
    }
}

/// Co-runs the superblock translation tier against the single-step
/// interpreter over every raw UnixBench/LMbench guest, in lockstep.
///
/// There is no kernel underneath a bare lockstep pair, so `ecall` stops —
/// which would truncate the syscall-heavy guests after a handful of
/// instructions — are serviced by a stub that returns 0 identically on
/// both machines and resumes, keeping the loops hot until the step budget.
/// Real terminal events (`ebreak`, exceptions) end the sweep for that
/// guest.
///
/// # Errors
///
/// Reports the first diverging workload with the exact instruction (or the
/// superblock's entry pc and architectural step range) and the state
/// component that differed.
pub fn cmd_divergence_tiers(max_steps: u64) -> Result<String, CliError> {
    const ECALL_WORD: u32 = 0x0000_0073;
    let mut corpus: Vec<(String, String)> = Vec::new();
    for item in UnixBench::ALL {
        corpus.push((Workload::name(&item).to_owned(), item.source()));
    }
    for item in Lmbench::ALL {
        corpus.push((Workload::name(&item).to_owned(), item.source()));
    }

    let mut out = String::new();
    let mut total_steps = 0u64;
    let mut total_hits = 0u64;
    let count = corpus.len();
    for (name, source) in corpus {
        let mut tiered = boot_bare_machine(&source, false)?;
        let mut interp = boot_bare_machine(&source, false)?;
        interp.set_superblock_tier(false);
        let mut steps = 0u64;
        let mut syscalls = 0u64;
        while steps < max_steps {
            let outcome = run_tiered_lockstep(&mut tiered, &mut interp, max_steps - steps, 256);
            steps += outcome.steps;
            if let Some(divergence) = outcome.divergence {
                return Err(format!(
                    "{name}: TIER DIVERGENCE at instruction {}: {}\n",
                    steps - outcome.steps + divergence.step,
                    divergence.detail
                ));
            }
            // An `ecall` leaves pc pointing at the instruction on both
            // machines; anything else that stopped us early is terminal.
            let pc = tiered.hart().pc();
            if steps >= max_steps || tiered.memory().read_u32(pc) != Ok(ECALL_WORD) {
                break;
            }
            syscalls += 1;
            for machine in [&mut tiered, &mut interp] {
                machine.hart_mut().set_reg(Reg::A0, 0);
                machine.advance_pc();
            }
        }
        let stats = tiered.superblock_stats();
        let _ = writeln!(
            out,
            "{name:<28} {:>9} insns  {:>8} superblock entries  {:>9} tier insns  \
             {:>5} side exits  {syscalls} syscalls stubbed",
            steps, stats.hits, stats.insns, stats.side_exits
        );
        total_steps += steps;
        total_hits += stats.hits;
    }
    let _ = writeln!(
        out,
        "tier lockstep OK: {count} workloads, {total_steps} instructions, \
         {total_hits} superblock entries, tier architecturally identical to \
         the interpreter"
    );
    Ok(out)
}

/// Parses a configuration label (`base|ra|fp|non-control|full`).
///
/// # Errors
///
/// Lists the accepted labels on a bad value.
pub fn parse_config(label: &str) -> Result<ProtectionConfig, CliError> {
    Ok(match label {
        "base" | "off" | "original" => ProtectionConfig::off(),
        "ra" => ProtectionConfig::ra_only(),
        "fp" => ProtectionConfig::fp_only(),
        "non-control" | "nc" => ProtectionConfig::non_control(),
        "full" => ProtectionConfig::full(),
        other => {
            return Err(format!(
                "unknown config `{other}` (expected base|ra|fp|non-control|full)"
            ))
        }
    })
}

/// Runs the Table 4 suite against one configuration.
///
/// # Errors
///
/// Propagates configuration-label parse errors.
pub fn cmd_pentest(label: &str) -> Result<String, CliError> {
    let config = parse_config(label)?;
    let mut out = String::new();
    let _ = writeln!(out, "penetration tests against {}:", config.label());
    for result in run_all(config) {
        let verdict = if result.outcome.defeated() {
            "defeated"
        } else {
            "SUCCEEDED"
        };
        let _ = writeln!(
            out,
            "  {:<38} {:<10} {}",
            result.attack.name(),
            verdict,
            result.detail
        );
    }
    Ok(out)
}

/// Prints the hardware area model for a CLB size.
///
/// # Errors
///
/// Rejects non-numeric entry counts.
pub fn cmd_hwcost(entries: &str) -> Result<String, CliError> {
    let entries: usize = entries
        .parse()
        .map_err(|_| format!("invalid CLB entry count `{entries}`"))?;
    let report = hwcost::soc_report(entries);
    let mut out = String::new();
    let _ = writeln!(out, "SoC with a {entries}-entry CLB:");
    let _ = writeln!(
        out,
        "  crypto-engine: {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.crypto_engine_luts,
        report.crypto_engine_lut_pct(),
        report.crypto_engine_ffs,
        report.crypto_engine_ff_pct()
    );
    let _ = writeln!(
        out,
        "  CLB          : {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.clb_luts,
        report.clb_lut_pct(),
        report.clb_ffs,
        report.clb_ff_pct()
    );
    let _ = writeln!(
        out,
        "  FPU (compare): {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.fpu_luts,
        report.fpu_lut_pct(),
        report.fpu_ffs,
        report.fpu_ff_pct()
    );
    Ok(out)
}

/// Parsed arguments of the `verify` subcommand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyArgs {
    /// Verify the whole benchmark corpus instead of a single file.
    pub workloads: bool,
    /// Assembly file to verify (when not `--workloads`).
    pub file: Option<String>,
    /// Emit the machine-readable JSON report.
    pub json: bool,
    /// Emit a SARIF 2.1.0-style document instead of human/JSON output.
    pub sarif: bool,
    /// Whole-program mode: call-graph recovery, interprocedural taint
    /// summaries, and the tweak-diversity / raw-key-flow / spill-gadget
    /// lints.
    pub interprocedural: bool,
    /// Baseline file to ratchet against: exit nonzero on any finding whose
    /// `(image, kind, fingerprint)` is not in it.
    pub baseline: Option<String>,
    /// Write the observed findings to this path as a fresh baseline.
    pub update_baseline: Option<String>,
    /// Key-storage data symbols (single-file mode): loads from them are
    /// tracked by the raw-key-flow lint.
    pub key_symbols: Vec<String>,
}

/// Parses `verify` subcommand arguments.
///
/// # Errors
///
/// Rejects unknown flags, missing flag values, and contradictory
/// combinations (no input, both a file and `--workloads`, `--json` with
/// `--sarif`).
pub fn parse_verify_args(args: &[String]) -> Result<VerifyArgs, CliError> {
    let mut parsed = VerifyArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workloads" => parsed.workloads = true,
            "--json" => parsed.json = true,
            "--sarif" => parsed.sarif = true,
            "--interprocedural" => parsed.interprocedural = true,
            "--baseline" => {
                let value = it.next().ok_or("`--baseline` needs a path")?;
                parsed.baseline = Some(value.clone());
            }
            "--update-baseline" => {
                let value = it.next().ok_or("`--update-baseline` needs a path")?;
                parsed.update_baseline = Some(value.clone());
            }
            "--key-symbol" => {
                let value = it.next().ok_or("`--key-symbol` needs a symbol name")?;
                parsed.key_symbols.push(value.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown verify flag `{other}`"));
            }
            file => {
                if parsed.file.is_some() {
                    return Err("verify takes at most one input file".to_owned());
                }
                parsed.file = Some(file.to_owned());
            }
        }
    }
    if parsed.workloads == parsed.file.is_some() {
        return Err(usage().to_owned());
    }
    if parsed.json && parsed.sarif {
        return Err("choose one of --json / --sarif".to_owned());
    }
    Ok(parsed)
}

/// Aggregated whole-program analysis summary: call-graph coverage plus a
/// per-lint findings table with severities and the analysis wall time.
fn analysis_summary(reports: &[&Report], elapsed: std::time::Duration) -> String {
    let mut graph = CallGraphStats::default();
    for r in reports {
        if let Some(g) = r.graph {
            graph.functions += g.functions;
            graph.edges += g.edges;
            graph.direct_calls += g.direct_calls;
            graph.resolved_indirect += g.resolved_indirect;
            graph.unresolved_indirect += g.unresolved_indirect;
            graph.tail_calls += g.tail_calls;
        }
    }
    let count = |kind: ViolationKind| -> usize {
        reports
            .iter()
            .flat_map(|r| &r.violations)
            .filter(|v| v.kind == kind)
            .count()
    };
    let errors: usize = reports
        .iter()
        .map(|r| r.count_by_severity(Severity::Error))
        .sum();
    let warnings: usize = reports
        .iter()
        .map(|r| r.count_by_severity(Severity::Warning))
        .sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "call graph: {} function(s), {} edge(s); {} direct, {} resolved indirect, \
         {} unresolved indirect, {} tail call(s)",
        graph.functions,
        graph.edges,
        graph.direct_calls,
        graph.resolved_indirect,
        graph.unresolved_indirect,
        graph.tail_calls
    );
    let _ = writeln!(
        out,
        "lint findings ({errors} error(s), {warnings} warning(s), analyzed in {:.1} ms):",
        elapsed.as_secs_f64() * 1e3
    );
    for kind in [
        ViolationKind::TweakDiversity,
        ViolationKind::RawKeyFlow,
        ViolationKind::SpillGadget,
    ] {
        let _ = writeln!(
            out,
            "  {:<26} {:<8} {}",
            kind.id(),
            kind.severity().id(),
            count(kind)
        );
    }
    out
}

/// Applies the baseline ratchet over labeled reports: `--update-baseline`
/// rewrites the file from the observed findings; `--baseline` checks against
/// it. Returns `(summary text, ratchet failed)`.
fn apply_ratchet(
    args: &VerifyArgs,
    runs: &[(String, &Report)],
) -> Result<(String, bool), CliError> {
    if let Some(path) = &args.update_baseline {
        let baseline = Baseline::from_reports(runs);
        std::fs::write(path, baseline.render())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        return Ok((
            format!(
                "baseline updated: {} entr(ies) written to {path}\n",
                baseline.entries.len()
            ),
            false,
        ));
    }
    let Some(path) = &args.baseline else {
        return Ok((String::new(), false));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let baseline = Baseline::parse(&text)?;
    let (new, resolved) = baseline.check(runs);
    let mut out = String::new();
    for finding in &new {
        let _ = writeln!(
            out,
            "NEW FINDING [{}] {} in `{}` ({}): {}",
            finding.kind, finding.image, finding.function, finding.fingerprint, finding.detail
        );
    }
    let _ = writeln!(
        out,
        "ratchet: {} baseline entr(ies), {} new finding(s), {} resolved",
        baseline.entries.len(),
        new.len(),
        resolved
    );
    Ok((out, !new.is_empty()))
}

/// Verifies a hand-written assembly program against the RegVault dataflow
/// invariants. Regions that fail to decode are skipped as data (hand-written
/// images may interleave `.dword` pools with code).
///
/// Returns `Ok(report)` when the image has no error-severity findings and
/// `Err(report)` otherwise (or when the baseline ratchet fails), so callers
/// can exit non-zero. Interprocedural lint warnings render but do not fail.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input, or the rendered
/// verification report when the program violates an invariant.
pub fn cmd_verify_source(source: &str, args: &VerifyArgs) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let manifest = ProtectionManifest {
        key_symbols: args.key_symbols.clone(),
        ..ProtectionManifest::default()
    };
    let options = VerifyOptions {
        undecodable_is_data: true,
        interprocedural: args.interprocedural,
        ..VerifyOptions::default()
    };
    let started = std::time::Instant::now();
    let report = verifier_verify(
        program.bytes(),
        program.symbols().iter(),
        &manifest,
        &options,
    );
    let elapsed = started.elapsed();
    let runs = vec![("<input>".to_owned(), &report)];
    let (ratchet_text, ratchet_failed) = apply_ratchet(args, &runs)?;
    let mut rendered = if args.sarif {
        sarif_report(&runs)
    } else if args.json {
        report.render_json()
    } else {
        let mut text = report.render_human();
        if args.interprocedural {
            text.push_str(&analysis_summary(&[&report], elapsed));
        }
        text.push_str(&ratchet_text);
        text
    };
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    if report.has_errors() || ratchet_failed {
        Err(rendered)
    } else {
        Ok(rendered)
    }
}

/// Verifies the whole benchmark corpus: every SPEC-shaped module compiled
/// under each protection configuration (checked against the compiler's own
/// manifest), plus the raw UnixBench/LMbench guest programs (dataflow
/// invariants only).
///
/// Returns `Err` with the summary when any image has an error-severity
/// finding, or when the `--baseline` ratchet sees a finding not in the
/// committed baseline. Interprocedural lint warnings render (and feed the
/// ratchet) but do not fail the run by themselves.
///
/// # Errors
///
/// Propagates compile errors and reports verification/ratchet failures.
pub fn cmd_verify_workloads(args: &VerifyArgs) -> Result<String, CliError> {
    let configs: [(&str, CompileConfig); 5] = [
        ("base", CompileConfig::none()),
        ("ra", CompileConfig::ra_only()),
        ("fp", CompileConfig::fp_only()),
        ("non-control", CompileConfig::non_control()),
        ("full", CompileConfig::full()),
    ];

    let started = std::time::Instant::now();
    // (name, config label, report)
    let mut rows: Vec<(String, &str, Report)> = Vec::new();

    for item in Spec::ALL {
        let module = item.module();
        for (label, config) in &configs {
            let mut config = *config;
            // We produce (and render) the report ourselves instead of
            // letting the in-compile gate abort on the first failure.
            config.verify_output = false;
            config.verify_interprocedural = args.interprocedural;
            let compiled = compile(&module, &config).map_err(|e| e.to_string())?;
            let report = compiler_verify::report_for_source(&compiled, &module, &config)
                .map_err(|e| e.to_string())?;
            rows.push((item.name().to_owned(), label, report));
        }
    }

    let raw_options = VerifyOptions {
        undecodable_is_data: true,
        interprocedural: args.interprocedural,
        ..VerifyOptions::default()
    };
    let mut raw_guest = |name: &str, source: String| -> Result<(), CliError> {
        let program = asm::assemble(&source).map_err(|e| format!("{name}: {e}"))?;
        let report = verifier_verify(
            program.bytes(),
            program.symbols().iter(),
            &ProtectionManifest::default(),
            &raw_options,
        );
        rows.push((name.to_owned(), "raw", report));
        Ok(())
    };
    for item in UnixBench::ALL {
        raw_guest(Workload::name(&item), item.source())?;
    }
    for item in Lmbench::ALL {
        raw_guest(Workload::name(&item), item.source())?;
    }
    let elapsed = started.elapsed();

    let runs: Vec<(String, &Report)> = rows
        .iter()
        .map(|(name, label, report)| (format!("{name}@{label}"), report))
        .collect();
    let (ratchet_text, ratchet_failed) = apply_ratchet(args, &runs)?;

    let total_violations: usize = rows.iter().map(|(_, _, r)| r.violations.len()).sum();
    let errors: usize = rows
        .iter()
        .map(|(_, _, r)| r.count_by_severity(Severity::Error))
        .sum();
    let mut out = String::new();
    if args.sarif {
        let _ = writeln!(out, "{}", sarif_report(&runs));
    } else if args.json {
        let _ = write!(out, "{{\"clean\":{},\"images\":[", total_violations == 0);
        for (i, (name, label, report)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"config\":\"{label}\",\"report\":{}}}",
                report.render_json()
            );
        }
        let _ = writeln!(out, "]}}");
    } else {
        for (name, label, report) in &rows {
            let verdict = if report.has_errors() { "FAIL" } else { "OK" };
            let _ = writeln!(
                out,
                "  {name:<12} {label:<12} {verdict:<5} {} insns, {} crypto ops, {} violation(s)",
                report.instructions(),
                report.crypto_ops(),
                report.violations.len()
            );
            for v in &report.violations {
                let _ = writeln!(out, "    {v}");
            }
        }
        if args.interprocedural {
            let reports: Vec<&Report> = rows.iter().map(|(_, _, r)| r).collect();
            out.push_str(&analysis_summary(&reports, elapsed));
        }
        out.push_str(&ratchet_text);
        let _ = writeln!(
            out,
            "verified {} images: {total_violations} violation(s)",
            rows.len()
        );
    }
    if errors == 0 && !ratchet_failed {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Usage text.
#[must_use]
pub fn usage() -> &'static str {
    "regvault-cli — the RegVault reproduction toolbox

USAGE:
    regvault-cli asm     <file.s>          assemble, print words + symbols
    regvault-cli disasm  <file.s>          assemble + disassemble round trip
    regvault-cli run     <file.s> [steps]  execute on the simulated machine
    regvault-cli pentest [config]          run Table 4 (default: full)
    regvault-cli hwcost  [entries]         Table 3 area model (default: 8)
    regvault-cli verify  <file.s> [--json|--sarif] [--interprocedural]
                         [--key-symbol NAME]...
                                           check RegVault invariants over a program
                                           (--interprocedural adds call-graph
                                           summaries + whole-program lints)
    regvault-cli verify  --workloads [--json|--sarif] [--interprocedural]
                         [--baseline FILE] [--update-baseline FILE]
                                           verify every benchmark image; with
                                           --baseline, fail on any finding not
                                           in the committed baseline (ratchet)
    regvault-cli record  <file.s> <out.bundle> [--steps N] [--flip I:ADDR:BIT]...
                                           run + record a repro bundle
    regvault-cli replay  <bundle>          re-run a bundle, check bit-for-bit
    regvault-cli divergence <file.s> [steps] [interval]
                                           lockstep optimized vs reference datapath
    regvault-cli divergence --tiers [steps]
                                           lockstep superblock tier vs interpreter
                                           over every UnixBench/LMbench guest
    regvault-cli trace   <file.s> [--json|--chrome] [--limit N]
    regvault-cli trace   --workload <name> [--json|--chrome] [--limit N]
                                           structured event trace (--chrome loads
                                           in Perfetto / chrome://tracing)
    regvault-cli metrics <file.s> [--json]
    regvault-cli metrics --workload <name> [--json]
                                           counters + histograms of a run
    regvault-cli profile <file.s> [--json]
    regvault-cli profile --workload <name> [--json]
                                           per-function steps + crypto profile
    regvault-cli serve   [--tenants N] [--requests N] [--rate CYCLES]
                         [--faults CYCLES] [--seed S] [--queue-cap N]
                         [--config LABEL] [--json] [--smoke]
                                           supervised multi-tenant server under
                                           live fault injection (--smoke gates
                                           on the accounting identity)
    regvault-cli fleet   [--instances N] [--requests N] [--rate CYCLES]
                         [--deadline CYCLES] [--chaos K] [--cold]
                         [--workers N] [--seed S] [--json] [--smoke]
                                           snapshot-forked machine fleet with
                                           micro-reboot recovery under a chaos
                                           kill schedule (--smoke gates on the
                                           accounting identity and recovery)
    regvault-cli leakage [--seed S] [--json] [--smoke]
                                           ciphertext side-channel campaign:
                                           dictionary collisions over the
                                           workload corpus with the epoch-rekey
                                           mitigation off vs on (--smoke trims
                                           the corpus and gates on a 10x
                                           collision reduction)
"
}

/// Reads an assembly source file with a friendly diagnostic.
///
/// # Errors
///
/// Describes the path on I/O failure.
pub fn read_source(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// `record <file.s> <out.bundle> [--steps N] [--flip I:ADDR:BIT]...`
fn dispatch_record(args: &[String]) -> Result<String, CliError> {
    let [file, out_path, flags @ ..] = args else {
        return Err(usage().to_owned());
    };
    let mut steps = 10_000_000u64;
    let mut faults = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("`{flag}` needs a value"))?;
        match flag.as_str() {
            "--steps" => {
                steps = value
                    .parse()
                    .map_err(|_| format!("invalid step budget `{value}`"))?;
            }
            "--flip" => faults.push(parse_flip(value)?),
            other => return Err(format!("unknown record flag `{other}`")),
        }
    }
    let (report, bytes) = cmd_record(&read_source(file)?, steps, &faults)?;
    std::fs::write(out_path, bytes).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    Ok(format!("{report}bundle written to {out_path}\n"))
}

/// `trace|metrics|profile` argument parsing: a file or `--workload <name>`,
/// then output flags.
fn dispatch_observe(cmd: &str, args: &[String]) -> Result<String, CliError> {
    let (subject, flags) = match args {
        [flag, name, rest @ ..] if flag == "--workload" => {
            (TraceSubject::Workload(name.clone()), rest)
        }
        [file, rest @ ..] => (TraceSubject::Bare(read_source(file)?), rest),
        [] => return Err(usage().to_owned()),
    };
    let mut format = TraceFormat::Human;
    let mut json = false;
    let mut limit = 65_536usize;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                format = TraceFormat::Json;
                json = true;
            }
            "--chrome" => format = TraceFormat::Chrome,
            "--limit" => {
                let value = it.next().ok_or("`--limit` needs a value")?;
                limit = value
                    .parse()
                    .map_err(|_| format!("invalid trace limit `{value}`"))?;
            }
            other => return Err(format!("unknown {cmd} flag `{other}`")),
        }
    }
    match cmd {
        "trace" => cmd_trace(&subject, format, limit),
        "metrics" => cmd_metrics(&subject, json),
        "profile" => cmd_profile(&subject, json),
        _ => unreachable!("dispatch_observe called for {cmd}"),
    }
}

/// Full argument dispatch for the `regvault-cli` binary: `Ok` text goes to
/// stdout (exit 0), `Err` text to stderr (exit 1).
///
/// # Errors
///
/// Every subcommand's failure mode, plus the usage text for unknown
/// commands or malformed argument lists.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args {
        [cmd, file] if cmd == "asm" => cmd_asm(&read_source(file)?),
        [cmd, file] if cmd == "disasm" => cmd_disasm(&read_source(file)?),
        [cmd, file] if cmd == "run" => cmd_run(&read_source(file)?, 10_000_000),
        [cmd, file, steps] if cmd == "run" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_run(&read_source(file)?, steps)
        }
        [cmd] if cmd == "pentest" => cmd_pentest("full"),
        [cmd, config] if cmd == "pentest" => cmd_pentest(config),
        [cmd] if cmd == "hwcost" => cmd_hwcost("8"),
        [cmd, entries] if cmd == "hwcost" => cmd_hwcost(entries),
        [cmd, rest @ ..] if cmd == "verify" => {
            let parsed = parse_verify_args(rest)?;
            if parsed.workloads {
                cmd_verify_workloads(&parsed)
            } else {
                let file = parsed.file.clone().expect("parse enforces an input");
                cmd_verify_source(&read_source(&file)?, &parsed)
            }
        }
        [cmd, rest @ ..] if cmd == "record" => dispatch_record(rest),
        [cmd, bundle] if cmd == "replay" => {
            let bytes =
                std::fs::read(bundle).map_err(|e| format!("cannot read `{bundle}`: {e}"))?;
            cmd_replay(&bytes)
        }
        [cmd, flag] if cmd == "divergence" && flag == "--tiers" => cmd_divergence_tiers(500_000),
        [cmd, flag, steps] if cmd == "divergence" && flag == "--tiers" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_divergence_tiers(steps)
        }
        [cmd, file] if cmd == "divergence" => cmd_divergence(&read_source(file)?, 1_000_000, 256),
        [cmd, file, steps] if cmd == "divergence" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            cmd_divergence(&read_source(file)?, steps, 256)
        }
        [cmd, file, steps, interval] if cmd == "divergence" => {
            let steps = steps
                .parse()
                .map_err(|_| format!("invalid step budget `{steps}`"))?;
            let interval = interval
                .parse()
                .map_err(|_| format!("invalid check interval `{interval}`"))?;
            cmd_divergence(&read_source(file)?, steps, interval)
        }
        [cmd, rest @ ..] if cmd == "trace" || cmd == "metrics" || cmd == "profile" => {
            dispatch_observe(cmd, rest)
        }
        [cmd, rest @ ..] if cmd == "serve" => cmd_serve(rest),
        [cmd, rest @ ..] if cmd == "fleet" => cmd_fleet(rest),
        [cmd, rest @ ..] if cmd == "leakage" => leakage::cmd_leakage(rest),
        _ => Err(usage().to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_lists_words_and_symbols() {
        let out = cmd_asm("start:\n  li a0, 1\n  ebreak").unwrap();
        assert!(out.contains("symbol start = 0x0"));
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn disasm_round_trips() {
        let out = cmd_disasm("creak a0, a0[7:0], t1\nebreak").unwrap();
        assert!(out.contains("creak a0, a0[7:0], t1"));
        assert!(out.contains("1/2 instructions are cre/crd"));
    }

    #[test]
    fn run_reports_registers() {
        let out = cmd_run("li a0, 42\nebreak", 1000).unwrap();
        assert!(out.contains("a0 = 0x000000000000002a"));
    }

    #[test]
    fn pentest_full_defeats_everything() {
        let out = cmd_pentest("full").unwrap();
        assert!(!out.contains("SUCCEEDED"));
        assert_eq!(out.matches("defeated").count(), 8);
    }

    #[test]
    fn pentest_base_loses_everything() {
        let out = cmd_pentest("base").unwrap();
        assert_eq!(out.matches("SUCCEEDED").count(), 8);
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(cmd_asm("frobnicate").is_err());
        assert!(parse_config("yolo").is_err());
        assert!(cmd_hwcost("many").is_err());
    }

    #[test]
    fn hwcost_renders_percentages() {
        let out = cmd_hwcost("8").unwrap();
        assert!(out.contains("crypto-engine"));
        assert!(out.contains("FPU"));
    }

    #[test]
    fn verify_accepts_a_clean_program() {
        let out = cmd_verify_source("main:\n  li a0, 1\n  ebreak", &VerifyArgs::default()).unwrap();
        assert!(out.starts_with("OK"), "{out}");
    }

    #[test]
    fn verify_flags_an_unwrapped_secret_spill() {
        // A decrypted value stored to the stack unencrypted.
        let report = cmd_verify_source(
            "main:
              addi sp, sp, -16
              crdak a0, a0, t1, [7:0]
              sd a0, 0(sp)
              ebreak",
            &VerifyArgs::default(),
        )
        .unwrap_err();
        assert!(report.contains("plain-spill"), "{report}");
        assert!(report.contains("sd a0"), "{report}");
    }

    #[test]
    fn verify_emits_json() {
        let args = VerifyArgs {
            json: true,
            ..VerifyArgs::default()
        };
        let out = cmd_verify_source("main:\n  ebreak", &args).unwrap();
        assert!(out.contains("\"clean\":true"), "{out}");
    }

    #[test]
    fn verify_args_parse_and_reject_contradictions() {
        let to_vec =
            |args: &[&str]| -> Vec<String> { args.iter().map(|s| (*s).to_owned()).collect() };
        let parsed = parse_verify_args(&to_vec(&[
            "--workloads",
            "--interprocedural",
            "--sarif",
            "--baseline",
            "b.txt",
        ]))
        .unwrap();
        assert!(parsed.workloads && parsed.interprocedural && parsed.sarif);
        assert_eq!(parsed.baseline.as_deref(), Some("b.txt"));
        let parsed = parse_verify_args(&to_vec(&["prog.s", "--key-symbol", "keyblob"])).unwrap();
        assert_eq!(parsed.file.as_deref(), Some("prog.s"));
        assert_eq!(parsed.key_symbols, vec!["keyblob".to_owned()]);
        assert!(parse_verify_args(&to_vec(&[])).is_err());
        assert!(parse_verify_args(&to_vec(&["a.s", "--workloads"])).is_err());
        assert!(parse_verify_args(&to_vec(&["a.s", "--json", "--sarif"])).is_err());
        assert!(parse_verify_args(&to_vec(&["a.s", "--frobnicate"])).is_err());
    }

    #[test]
    fn verify_interprocedural_reports_graph_and_lint_table() {
        // Warning-only program: a (key, tweak) pair reused across two
        // encryptions of different values, never stored.
        let args = VerifyArgs {
            interprocedural: true,
            ..VerifyArgs::default()
        };
        let out = cmd_verify_source(
            "main:
              li t1, 0x9000
              creak t3, a0[7:0], t1
              creak t4, a1[7:0], t1
              call helper
              ebreak
             helper:
              ret",
            &args,
        )
        .unwrap();
        assert!(out.contains("call graph:"), "{out}");
        assert!(
            out.contains("tweak-diversity            warning  1"),
            "{out}"
        );
        assert!(out.contains("raw-key-flow"), "{out}");
        assert!(out.contains("unprotected-spill-gadget"), "{out}");
    }

    #[test]
    fn verify_sarif_renders_a_document() {
        let args = VerifyArgs {
            sarif: true,
            interprocedural: true,
            ..VerifyArgs::default()
        };
        let out = cmd_verify_source("main:\n  ebreak", &args).unwrap();
        assert!(out.contains("\"version\":\"2.1.0\""), "{out}");
        assert!(out.contains("regvault-verifier"), "{out}");
    }

    /// A crypto round-trip program for record/replay/divergence tests.
    const CRYPTO_PROGRAM: &str = "li   t1, 0x9000
         li   s0, 0x9000
         li   a0, 0xbeef
         creak a0, a0[3:0], t1
         sd   a0, 0(s0)
         ld   a1, 0(s0)
         crdak a1, a1, t1, [3:0]
         ebreak";

    #[test]
    fn record_then_replay_is_bit_for_bit() {
        let flip = parse_flip("5:0x9000:3").unwrap();
        let (report, bytes) = cmd_record(CRYPTO_PROGRAM, 10_000, &[flip]).unwrap();
        assert!(report.contains("recorded 1 fault event(s)"), "{report}");
        let replay = cmd_replay(&bytes).unwrap();
        assert!(replay.contains("replay OK"), "{replay}");
        assert!(replay.contains("bit-for-bit"), "{replay}");
    }

    #[test]
    fn replay_rejects_corruption_and_garbage() {
        let (_, mut bytes) = cmd_record(CRYPTO_PROGRAM, 10_000, &[]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        let err = cmd_replay(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        assert!(cmd_replay(b"not a bundle").is_err());
    }

    #[test]
    fn flip_parser_accepts_hex_and_rejects_noise() {
        let (instret, kind) = parse_flip("100:0x9000:63").unwrap();
        assert_eq!(instret, 100);
        assert_eq!(
            kind,
            regvault_sim::FaultKind::MemBitFlip {
                addr: 0x9000,
                bit: 63
            }
        );
        assert!(parse_flip("100:0x9000").is_err());
        assert!(parse_flip("a:b:c").is_err());
    }

    #[test]
    fn divergence_clean_program_agrees() {
        let out = cmd_divergence(CRYPTO_PROGRAM, 10_000, 64).unwrap();
        assert!(out.contains("lockstep OK"), "{out}");
    }

    #[test]
    fn divergence_tiers_corpus_agrees() {
        // A tight budget keeps the 18-guest sweep fast in debug CI runs;
        // the compute loops still run hot enough to enter superblocks.
        let out = cmd_divergence_tiers(20_000).unwrap();
        assert!(out.contains("tier lockstep OK"), "{out}");
        assert!(out.contains("18 workloads"), "{out}");
    }

    #[test]
    fn verify_workloads_corpus_is_clean() {
        let out = cmd_verify_workloads(&VerifyArgs {
            workloads: true,
            ..VerifyArgs::default()
        })
        .unwrap();
        assert!(!out.contains("FAIL"), "{out}");
        // 10 SPEC programs x 5 configs + 8 UnixBench + 10 LMbench guests.
        assert!(out.contains("verified 68 images: 0 violation(s)"), "{out}");
    }
}
