//! Library backing the `regvault-cli` binary.
//!
//! Each subcommand is a function from parsed arguments to an output string,
//! so the whole surface is unit-testable without spawning processes:
//!
//! * `asm <file.s>` — assemble to a hex word listing;
//! * `disasm <file.s|->` — assemble then disassemble (round-trip view);
//! * `run <file.s>` — execute a bare-metal guest program on the simulated
//!   RegVault machine (keys `a`–`g` pre-loaded) and dump the registers;
//! * `pentest [config]` — run the Table 4 suite against a configuration;
//! * `hwcost [entries]` — print the Table 3 area model for a CLB size;
//! * `verify <file.s>` / `verify --workloads` — run the binary-level
//!   protection verifier over an assembled program or the whole benchmark
//!   corpus (`--json` for machine-readable reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use regvault_attacks::run_all;
use regvault_compiler::{compile, verify as compiler_verify, CompileConfig};
use regvault_core::hwcost;
use regvault_isa::{asm, disasm, KeyReg, Reg};
use regvault_kernel::ProtectionConfig;
use regvault_sim::{Machine, MachineConfig};
use regvault_verifier::{verify as verifier_verify, ProtectionManifest, VerifyOptions};
use regvault_workloads::{lmbench::Lmbench, spec::Spec, unixbench::UnixBench, Workload};

/// Error string type used by the CLI (messages go straight to stderr).
pub type CliError = String;

/// Assembles `source`, returning an `offset: word` listing.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input.
pub fn cmd_asm(source: &str) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, word) in program.words().iter().enumerate() {
        let _ = writeln!(out, "{:#06x}: {word:08x}", i * 4);
    }
    for (symbol, offset) in program.symbols() {
        let _ = writeln!(out, "symbol {symbol} = {offset:#x}");
    }
    Ok(out)
}

/// Assembles then disassembles `source` — shows what the hardware decodes.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input.
pub fn cmd_disasm(source: &str) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for line in disasm::disassemble(program.bytes()) {
        let _ = writeln!(out, "{}", line.render_annotated());
    }
    let (crypto, total) = disasm::crypto_density(program.bytes());
    let _ = writeln!(out, "; {crypto}/{total} instructions are cre/crd");
    Ok(out)
}

/// Runs a bare-metal program (kernel privilege, keys installed) and dumps
/// the final register file and statistics.
///
/// # Errors
///
/// Returns assembler or simulator diagnostics.
pub fn cmd_run(source: &str, max_steps: u64) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let mut machine = Machine::new(MachineConfig::default());
    for (i, key) in [
        KeyReg::A,
        KeyReg::B,
        KeyReg::C,
        KeyReg::D,
        KeyReg::E,
        KeyReg::F,
        KeyReg::G,
    ]
    .iter()
    .enumerate()
    {
        machine
            .write_key_register(*key, 0x1000 + i as u64, 0x2000 + i as u64)
            .expect("general key");
    }
    machine.load_program(0x8000_0000, program.bytes());
    machine.memory_mut().map_region(0x7000_0000, 0x10000);
    machine.hart_mut().set_reg(Reg::Sp, 0x7000_F000);
    machine.hart_mut().set_pc(0x8000_0000);
    machine
        .run_until_break(max_steps)
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "halted after {} instructions, {} cycles", machine.stats().instret, machine.stats().cycles);
    for chunk in Reg::ALL.chunks(4) {
        for reg in chunk {
            let _ = write!(out, "{:>4} = {:#018x}  ", reg.name(), machine.hart().reg(*reg));
        }
        let _ = writeln!(out);
    }
    let clb = machine.engine().clb().stats();
    let _ = writeln!(
        out,
        "crypto: {} cre / {} crd, CLB {:.1}% hits",
        machine.stats().encrypts,
        machine.stats().decrypts,
        clb.hit_ratio() * 100.0
    );
    Ok(out)
}

/// Parses a configuration label (`base|ra|fp|non-control|full`).
///
/// # Errors
///
/// Lists the accepted labels on a bad value.
pub fn parse_config(label: &str) -> Result<ProtectionConfig, CliError> {
    Ok(match label {
        "base" | "off" | "original" => ProtectionConfig::off(),
        "ra" => ProtectionConfig::ra_only(),
        "fp" => ProtectionConfig::fp_only(),
        "non-control" | "nc" => ProtectionConfig::non_control(),
        "full" => ProtectionConfig::full(),
        other => {
            return Err(format!(
                "unknown config `{other}` (expected base|ra|fp|non-control|full)"
            ))
        }
    })
}

/// Runs the Table 4 suite against one configuration.
///
/// # Errors
///
/// Propagates configuration-label parse errors.
pub fn cmd_pentest(label: &str) -> Result<String, CliError> {
    let config = parse_config(label)?;
    let mut out = String::new();
    let _ = writeln!(out, "penetration tests against {}:", config.label());
    for result in run_all(config) {
        let verdict = if result.outcome.defeated() {
            "defeated"
        } else {
            "SUCCEEDED"
        };
        let _ = writeln!(
            out,
            "  {:<38} {:<10} {}",
            result.attack.name(),
            verdict,
            result.detail
        );
    }
    Ok(out)
}

/// Prints the hardware area model for a CLB size.
///
/// # Errors
///
/// Rejects non-numeric entry counts.
pub fn cmd_hwcost(entries: &str) -> Result<String, CliError> {
    let entries: usize = entries
        .parse()
        .map_err(|_| format!("invalid CLB entry count `{entries}`"))?;
    let report = hwcost::soc_report(entries);
    let mut out = String::new();
    let _ = writeln!(out, "SoC with a {entries}-entry CLB:");
    let _ = writeln!(
        out,
        "  crypto-engine: {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.crypto_engine_luts,
        report.crypto_engine_lut_pct(),
        report.crypto_engine_ffs,
        report.crypto_engine_ff_pct()
    );
    let _ = writeln!(
        out,
        "  CLB          : {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.clb_luts,
        report.clb_lut_pct(),
        report.clb_ffs,
        report.clb_ff_pct()
    );
    let _ = writeln!(
        out,
        "  FPU (compare): {} LUTs ({:.2}%), {} FFs ({:.2}%)",
        report.fpu_luts,
        report.fpu_lut_pct(),
        report.fpu_ffs,
        report.fpu_ff_pct()
    );
    Ok(out)
}

/// Verifies a hand-written assembly program against the RegVault dataflow
/// invariants. Regions that fail to decode are skipped as data (hand-written
/// images may interleave `.dword` pools with code).
///
/// Returns `Ok(report)` when the image is clean and `Err(report)` when the
/// verifier found violations, so callers can exit non-zero.
///
/// # Errors
///
/// Returns the assembler diagnostic on malformed input, or the rendered
/// verification report when the program violates an invariant.
pub fn cmd_verify_source(source: &str, json: bool) -> Result<String, CliError> {
    let program = asm::assemble(source).map_err(|e| e.to_string())?;
    let options = VerifyOptions {
        undecodable_is_data: true,
        ..VerifyOptions::default()
    };
    let report = verifier_verify(
        program.bytes(),
        program.symbols().iter(),
        &ProtectionManifest::default(),
        &options,
    );
    let mut rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// Verifies the whole benchmark corpus: every SPEC-shaped module compiled
/// under each protection configuration (checked against the compiler's own
/// manifest), plus the raw UnixBench/LMbench guest programs (dataflow
/// invariants only).
///
/// Returns `Err` with the summary when any image fails verification.
///
/// # Errors
///
/// Propagates compile errors and reports verification failures.
pub fn cmd_verify_workloads(json: bool) -> Result<String, CliError> {
    let configs: [(&str, CompileConfig); 5] = [
        ("base", CompileConfig::none()),
        ("ra", CompileConfig::ra_only()),
        ("fp", CompileConfig::fp_only()),
        ("non-control", CompileConfig::non_control()),
        ("full", CompileConfig::full()),
    ];

    // (name, config label, report)
    let mut rows: Vec<(String, &str, regvault_verifier::Report)> = Vec::new();

    for item in Spec::ALL {
        let module = item.module();
        for (label, config) in &configs {
            let mut config = *config;
            // We produce (and render) the report ourselves instead of
            // letting the in-compile gate abort on the first failure.
            config.verify_output = false;
            let compiled = compile(&module, &config).map_err(|e| e.to_string())?;
            let report = compiler_verify::report_for_source(&compiled, &module, &config)
                .map_err(|e| e.to_string())?;
            rows.push((item.name().to_owned(), label, report));
        }
    }

    let raw_options = VerifyOptions {
        undecodable_is_data: true,
        ..VerifyOptions::default()
    };
    let mut raw_guest = |name: &str, source: String| -> Result<(), CliError> {
        let program = asm::assemble(&source).map_err(|e| format!("{name}: {e}"))?;
        let report = verifier_verify(
            program.bytes(),
            program.symbols().iter(),
            &ProtectionManifest::default(),
            &raw_options,
        );
        rows.push((name.to_owned(), "raw", report));
        Ok(())
    };
    for item in UnixBench::ALL {
        raw_guest(Workload::name(&item), item.source())?;
    }
    for item in Lmbench::ALL {
        raw_guest(Workload::name(&item), item.source())?;
    }

    let total_violations: usize = rows.iter().map(|(_, _, r)| r.violations.len()).sum();
    let mut out = String::new();
    if json {
        let _ = write!(out, "{{\"clean\":{},\"images\":[", total_violations == 0);
        for (i, (name, label, report)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"config\":\"{label}\",\"report\":{}}}",
                report.render_json()
            );
        }
        let _ = writeln!(out, "]}}");
    } else {
        for (name, label, report) in &rows {
            let verdict = if report.is_clean() { "OK" } else { "FAIL" };
            let _ = writeln!(
                out,
                "  {name:<12} {label:<12} {verdict:<5} {} insns, {} crypto ops, {} violation(s)",
                report.instructions(),
                report.crypto_ops(),
                report.violations.len()
            );
            for v in &report.violations {
                let _ = writeln!(out, "    {v}");
            }
        }
        let _ = writeln!(
            out,
            "verified {} images: {total_violations} violation(s)",
            rows.len()
        );
    }
    if total_violations == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Usage text.
#[must_use]
pub fn usage() -> &'static str {
    "regvault-cli — the RegVault reproduction toolbox

USAGE:
    regvault-cli asm     <file.s>          assemble, print words + symbols
    regvault-cli disasm  <file.s>          assemble + disassemble round trip
    regvault-cli run     <file.s> [steps]  execute on the simulated machine
    regvault-cli pentest [config]          run Table 4 (default: full)
    regvault-cli hwcost  [entries]         Table 3 area model (default: 8)
    regvault-cli verify  <file.s> [--json] check RegVault invariants over a program
    regvault-cli verify  --workloads [--json]
                                           verify every benchmark image
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_lists_words_and_symbols() {
        let out = cmd_asm("start:\n  li a0, 1\n  ebreak").unwrap();
        assert!(out.contains("symbol start = 0x0"));
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn disasm_round_trips() {
        let out = cmd_disasm("creak a0, a0[7:0], t1\nebreak").unwrap();
        assert!(out.contains("creak a0, a0[7:0], t1"));
        assert!(out.contains("1/2 instructions are cre/crd"));
    }

    #[test]
    fn run_reports_registers() {
        let out = cmd_run("li a0, 42\nebreak", 1000).unwrap();
        assert!(out.contains("a0 = 0x000000000000002a"));
    }

    #[test]
    fn pentest_full_defeats_everything() {
        let out = cmd_pentest("full").unwrap();
        assert!(!out.contains("SUCCEEDED"));
        assert_eq!(out.matches("defeated").count(), 8);
    }

    #[test]
    fn pentest_base_loses_everything() {
        let out = cmd_pentest("base").unwrap();
        assert_eq!(out.matches("SUCCEEDED").count(), 8);
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(cmd_asm("frobnicate").is_err());
        assert!(parse_config("yolo").is_err());
        assert!(cmd_hwcost("many").is_err());
    }

    #[test]
    fn hwcost_renders_percentages() {
        let out = cmd_hwcost("8").unwrap();
        assert!(out.contains("crypto-engine"));
        assert!(out.contains("FPU"));
    }

    #[test]
    fn verify_accepts_a_clean_program() {
        let out = cmd_verify_source("main:\n  li a0, 1\n  ebreak", false).unwrap();
        assert!(out.starts_with("OK"), "{out}");
    }

    #[test]
    fn verify_flags_an_unwrapped_secret_spill() {
        // A decrypted value stored to the stack unencrypted.
        let report = cmd_verify_source(
            "main:
              addi sp, sp, -16
              crdak a0, a0, t1, [7:0]
              sd a0, 0(sp)
              ebreak",
            false,
        )
        .unwrap_err();
        assert!(report.contains("plain-spill"), "{report}");
        assert!(report.contains("sd a0"), "{report}");
    }

    #[test]
    fn verify_emits_json() {
        let out = cmd_verify_source("main:\n  ebreak", true).unwrap();
        assert!(out.contains("\"clean\":true"), "{out}");
    }

    #[test]
    fn verify_workloads_corpus_is_clean() {
        let out = cmd_verify_workloads(false).unwrap();
        assert!(!out.contains("FAIL"), "{out}");
        // 10 SPEC programs x 5 configs + 8 UnixBench + 10 LMbench guests.
        assert!(out.contains("verified 68 images: 0 violation(s)"), "{out}");
    }
}
