//! Typed counter/histogram metrics registry.
//!
//! The observability substrate of the reproduction: components register
//! named metrics once (at construction time) and receive copyable integer
//! [`Counter`]/[`Histogram`] handles; the hot path then updates metrics by
//! handle — a bounds-checked array index plus an integer add, no hashing,
//! no locking, no allocation. This crate sits at the bottom of the
//! dependency graph (it depends on nothing) so the simulator, the kernel
//! and the benches can all thread the same registry type through their hot
//! loops; `regvault-core` re-exports it as `regvault_core::metrics`.
//!
//! Handles are only meaningful for the registry that created them; indexing
//! a registry with a foreign handle panics (debug) or reads the wrong slot
//! (never unsafe — the crate forbids `unsafe` code).
//!
//! # Examples
//!
//! ```
//! use regvault_metrics::MetricsRegistry;
//!
//! let mut registry = MetricsRegistry::new();
//! let hits = registry.counter("clb_hits");
//! let latency = registry.histogram("syscall_cycles");
//! registry.inc(hits);
//! registry.add(hits, 2);
//! registry.observe(latency, 180);
//! assert_eq!(registry.counter_value(hits), 3);
//! assert_eq!(registry.get("clb_hits"), Some(3));
//! assert_eq!(registry.histogram_data(latency).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Handle to a named monotonic counter inside a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Counter(u32);

/// Handle to a named histogram inside a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Histogram(u32);

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `2^63`.
pub const BUCKETS: usize = 65;

/// Accumulated distribution data behind a [`Histogram`] handle.
///
/// Values are bucketed by order of magnitude (`bucket 0` holds zeros,
/// `bucket k` holds values in `[2^(k-1), 2^k)`), which is exact enough for
/// latency-shaped data while keeping `observe` branch-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index for `value`: 0 for zero, `floor(log2(value)) + 1` otherwise.
#[must_use]
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl HistogramData {
    /// Records one observation directly. Standalone use (e.g. per-worker
    /// histograms merged later) — inside a [`MetricsRegistry`], prefer
    /// [`MetricsRegistry::observe`].
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The log2 bucket array (see [`bucket_index`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets,
    /// or `None` when the histogram is empty.
    ///
    /// The estimate interpolates linearly *within* the bucket holding the
    /// target rank (bucket `k` spans `[2^(k-1), 2^k)`), then clamps to the
    /// recorded `min`/`max` so single-bucket histograms report exact
    /// extrema instead of a bucket midpoint. Error is bounded by the bucket
    /// width — at most a factor of two, which is adequate for the
    /// latency-shaped p50/p99 reporting this registry feeds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count),
        // floored at 1 so q = 0.0 selects the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let value = if i == 0 {
                    0
                } else {
                    // Position of the target rank inside this bucket,
                    // in (0.0, 1.0].
                    let into = (rank - seen) as f64 / n as f64;
                    let lo = (1u64 << (i - 1)) as f64;
                    (lo + lo * into) as u64
                };
                return Some(value.clamp(self.min, self.max));
            }
            seen += n;
        }
        self.max()
    }

    /// Folds another histogram's observations into this one, as if every
    /// value recorded into `other` had been recorded here. Order-free and
    /// associative, so per-worker histograms merged in any grouping yield
    /// the same result — the fleet bench relies on this to aggregate
    /// per-instance latency distributions deterministically.
    pub fn merge(&mut self, other: &HistogramData) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// `(lower_bound, count)` for each non-empty bucket, in order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
    }
}

/// Registry of named counters and histograms.
///
/// Registration (by name, idempotent) happens off the hot path and returns
/// a handle; updates go through the handle. The registry is plain owned
/// data (`Clone` + `Default`), so embedding it in a cloneable machine model
/// costs nothing beyond its arrays.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramData)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) the counter `name` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct counters — far beyond any sane use.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return Counter(u32::try_from(i).expect("counter index fits u32"));
        }
        let index = u32::try_from(self.counters.len()).expect("counter count fits u32");
        self.counters.push((name.to_owned(), 0));
        Counter(index)
    }

    /// Registers (or looks up) the histogram `name` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct histograms.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return Histogram(u32::try_from(i).expect("histogram index fits u32"));
        }
        let index = u32::try_from(self.histograms.len()).expect("histogram count fits u32");
        self.histograms
            .push((name.to_owned(), HistogramData::default()));
        Histogram(index)
    }

    /// Adds 1 to a counter (the hot-path operation: one indexed add).
    #[inline]
    pub fn inc(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counters[counter.0 as usize].1 += n;
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, histogram: Histogram, value: u64) {
        self.histograms[histogram.0 as usize].1.record(value);
    }

    /// Current value of `counter`.
    #[must_use]
    pub fn counter_value(&self, counter: Counter) -> u64 {
        self.counters[counter.0 as usize].1
    }

    /// Current value of the counter named `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Accumulated data behind `histogram`.
    #[must_use]
    pub fn histogram_data(&self, histogram: Histogram) -> &HistogramData {
        &self.histograms[histogram.0 as usize].1
    }

    /// All counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramData)> {
        self.histograms.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Zeroes every counter and histogram, keeping all registrations (and
    /// therefore every outstanding handle) valid.
    pub fn reset_values(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
        for (_, d) in &mut self.histograms {
            *d = HistogramData::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert_ne!(a, b);
        assert_eq!(r.counter("a"), a);
        assert_eq!(r.counters().count(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("ops");
        r.inc(c);
        r.add(c, 41);
        assert_eq!(r.counter_value(c), 42);
        assert_eq!(r.get("ops"), Some(42));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [0, 1, 2, 3, 1000] {
            r.observe(h, v);
        }
        let d = r.histogram_data(h);
        assert_eq!(d.count(), 5);
        assert_eq!(d.sum(), 1006);
        assert_eq!(d.min(), Some(0));
        assert_eq!(d.max(), Some(1000));
        let buckets: Vec<(u64, u64)> = d.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
    }

    #[test]
    fn quantiles_from_log2_buckets() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat");
        assert_eq!(r.histogram_data(h).quantile(0.5), None, "empty");

        // A single value: every quantile is that value (clamped to extrema).
        r.observe(h, 700);
        let d = r.histogram_data(h);
        assert_eq!(d.quantile(0.0), Some(700));
        assert_eq!(d.quantile(0.5), Some(700));
        assert_eq!(d.quantile(1.0), Some(700));

        // A spread: quantiles are monotone, bracketed by min/max, and the
        // p50 lands within a factor of two of the true median.
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in 1..=1000u64 {
            r.observe(h, v);
        }
        let d = r.histogram_data(h);
        let p50 = d.quantile(0.5).unwrap();
        let p90 = d.quantile(0.9).unwrap();
        let p99 = d.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!(p99 <= 1000);
        assert_eq!(d.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut r = MetricsRegistry::new();
        let all = r.histogram("all");
        let a = r.histogram("a");
        let b = r.histogram("b");
        for v in [0u64, 1, 5, 900, 7] {
            r.observe(all, v);
        }
        for v in [0u64, 1, 5] {
            r.observe(a, v);
        }
        for v in [900u64, 7] {
            r.observe(b, v);
        }
        let mut merged = r.histogram_data(a).clone();
        merged.merge(r.histogram_data(b));
        assert_eq!(&merged, r.histogram_data(all));

        // Merging an empty histogram is a no-op (min stays untouched).
        merged.merge(&HistogramData::default());
        assert_eq!(&merged, r.histogram_data(all));
        let mut empty = HistogramData::default();
        empty.merge(r.histogram_data(all));
        assert_eq!(&empty, r.histogram_data(all));
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("empty");
        let d = r.histogram_data(h);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        r.add(c, 7);
        r.observe(h, 7);
        r.reset_values();
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.histogram_data(h).count(), 0);
        r.inc(c); // handle still valid after reset
        assert_eq!(r.counter_value(c), 1);
    }

    #[test]
    fn clone_is_independent() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.inc(c);
        let mut fork = r.clone();
        fork.inc(c);
        assert_eq!(r.counter_value(c), 1);
        assert_eq!(fork.counter_value(c), 2);
    }
}
