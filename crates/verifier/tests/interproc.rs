//! Whole-program verification integration tests: cases the per-function
//! pass provably cannot see, the seeded-mutation ↔ lint matrix, and the
//! CIP chain checker across basic-block boundaries.

use regvault_isa::asm::assemble;
use regvault_isa::{KeyReg, Reg};
use regvault_verifier::baseline::Baseline;
use regvault_verifier::mutate::{self, Mutation};
use regvault_verifier::{
    cip, verify, FnExpect, ProtectionManifest, Report, Severity, VerifyOptions, ViolationKind,
};

/// The three whole-program lint kinds, in registration order.
const LINT_KINDS: [ViolationKind; 3] = [
    ViolationKind::TweakDiversity,
    ViolationKind::RawKeyFlow,
    ViolationKind::SpillGadget,
];

fn interproc() -> VerifyOptions {
    VerifyOptions {
        interprocedural: true,
        ..VerifyOptions::default()
    }
}

fn run(src: &str, manifest: &ProtectionManifest, options: &VerifyOptions) -> Report {
    let program = assemble(src).unwrap();
    verify(program.bytes(), program.symbols().iter(), manifest, options)
}

/// A caller that spills `a0` right after a call into a callee that decrypts
/// and returns plaintext. Each function is locally clean — the leak only
/// exists once the callee's summary flows back to the call site.
const CALLEE_RETURN_LEAK: &str = "caller:
    addi sp, sp, -16
    call get_secret
    sd a0, 0(sp)
    addi sp, sp, 16
    ret
    get_secret:
    ld a0, 0(a1)
    crdak a0, a0, a1, [7:0]
    ret";

#[test]
fn callee_return_leak_needs_the_whole_program_pass() {
    let manifest = ProtectionManifest::default();

    // The per-function pass cannot know what `get_secret` returns: the
    // conservative clobber model makes `a0` opaque, so the spill is clean.
    let intra = run(CALLEE_RETURN_LEAK, &manifest, &VerifyOptions::default());
    assert!(intra.is_clean(), "{}", intra.render_human());

    // The interprocedural pass applies `get_secret`'s returns_plain summary
    // at the call site and catches the spill in the *caller*.
    let whole = run(CALLEE_RETURN_LEAK, &manifest, &interproc());
    assert!(whole.has_errors(), "{}", whole.render_human());
    let spill = whole
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::PlainSpill)
        .expect("the a0 spill must be flagged");
    assert_eq!(spill.function, "caller");
    assert_eq!(spill.insn, "sd a0, 0(sp)");

    let graph = whole.graph.expect("interprocedural mode reports the graph");
    assert_eq!(graph.functions, 2);
    assert!(graph.direct_calls >= 1, "{graph:?}");
}

/// A minimal protected function with one `cre` and one `crd` site — the
/// substrate the whole-program mutations are seeded into.
const PROTECTED: &str = "main:
    addi sp, sp, -16
    creak ra, ra[7:0], sp
    sd ra, 0(sp)
    addi a0, zero, 7
    ld ra, 0(sp)
    crdak ra, ra, sp, [7:0]
    addi sp, sp, 16
    ret";

fn protected_manifest() -> ProtectionManifest {
    let mut manifest = ProtectionManifest::default();
    manifest.functions.insert(
        "main".into(),
        FnExpect {
            entry_sensitive: vec![Reg::Ra],
            min_cre: 1,
            min_crd: 1,
        },
    );
    // Key storage only exists after the LeakKeyToGpr mutation appends it;
    // declaring an absent symbol is harmless for the other runs.
    manifest.key_symbols.push(mutate::KEY_SYMBOL.into());
    manifest
}

/// Applies `mutation` at its applicable crypto site and verifies the result
/// in whole-program mode.
fn mutated_report(mutation: Mutation, on_cre: bool) -> Report {
    let sites = mutate::crypto_sites(PROTECTED);
    let site = sites
        .iter()
        .find(|s| s.is_cre == on_cre)
        .expect("the substrate has both site flavors");
    let mutated = mutate::apply(PROTECTED, site.line, mutation).expect("mutation applies");
    run(&mutated, &protected_manifest(), &interproc())
}

#[test]
fn each_seeded_mutation_is_caught_by_exactly_its_lint() {
    // The substrate itself is clean in whole-program mode.
    let base = run(PROTECTED, &protected_manifest(), &interproc());
    assert!(base.is_clean(), "{}", base.render_human());

    let matrix = [
        (Mutation::ReuseTweak, true, ViolationKind::TweakDiversity),
        (Mutation::LeakKeyToGpr, true, ViolationKind::RawKeyFlow),
        (
            Mutation::PlainSpillInCallee,
            false,
            ViolationKind::SpillGadget,
        ),
    ];
    for (mutation, on_cre, expected) in matrix {
        let report = mutated_report(mutation, on_cre);
        for kind in LINT_KINDS {
            let found = report.violations.iter().any(|v| v.kind == kind);
            assert_eq!(
                found,
                kind == expected,
                "{mutation:?}: lint {} should fire iff it is {} — {}",
                kind.id(),
                expected.id(),
                report.render_human()
            );
        }
        // Severity contract: the diversity/key-flow lints warn (baselined
        // debt), the composed spill gadget is a hard error.
        let gate_fails = report.has_errors();
        assert_eq!(
            gate_fails,
            expected.severity() == Severity::Error,
            "{mutation:?}: gate outcome must follow the lint's severity"
        );
    }
}

#[test]
fn ratchet_flags_every_seeded_mutation_as_new() {
    // Baseline captured from the clean substrate (empty — it is clean).
    let base = run(PROTECTED, &protected_manifest(), &interproc());
    let baseline = Baseline::from_reports(&[("img".to_owned(), &base)]);
    assert!(baseline.entries.is_empty());

    for (mutation, on_cre) in [
        (Mutation::ReuseTweak, true),
        (Mutation::LeakKeyToGpr, true),
        (Mutation::PlainSpillInCallee, false),
    ] {
        let report = mutated_report(mutation, on_cre);
        let (new, resolved) = baseline.check(&[("img".to_owned(), &report)]);
        assert!(
            !new.is_empty(),
            "{mutation:?} must register as ratchet regression"
        );
        assert_eq!(resolved, 0);
    }
}

#[test]
fn cip_chain_is_checked_across_basic_block_boundaries() {
    // Split the reference CIP save stub mid-chain with a (never-taken)
    // branch: the chain now spans two basic blocks, and the checker must
    // still see it whole through the linearized block order.
    let stub = cip::save_stub_asm("cip_save", KeyReg::C);
    let mut lines: Vec<&str> = stub.lines().collect();
    // Line 0 is the label; odd lines are `cre`, even lines `sd` — insert
    // between two (cre, sd) pairs.
    assert!(
        lines[20].starts_with("sd "),
        "stub layout changed: {}",
        lines[20]
    );
    lines.insert(21, ".Lcip_split:");
    lines.insert(21, "bne zero, zero, .Lcip_split");
    let split = lines.join("\n");

    let program = assemble(&split).unwrap();
    let options = VerifyOptions {
        cip_stubs: vec!["cip_save".into()],
        ..VerifyOptions::default()
    };
    let report = verify(
        program.bytes(),
        program.symbols().iter(),
        &ProtectionManifest::default(),
        &options,
    );
    assert!(report.is_clean(), "{}", report.render_human());

    // The same split stub with one swapped tweak must still be flagged —
    // the block boundary does not hide chain breaks.
    let sites = mutate::crypto_sites(&split);
    let broken = mutate::apply(&split, sites[14].line, Mutation::SwapTweak).unwrap();
    let program = assemble(&broken).unwrap();
    let report = verify(
        program.bytes(),
        program.symbols().iter(),
        &ProtectionManifest::default(),
        &options,
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::MalformedCipChain));
}
