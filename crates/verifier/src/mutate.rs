//! Mutation helpers for the negative-test harness.
//!
//! The verifier is only trustworthy if it *fails* on broken output, so these
//! helpers take the compiler's assembly text and surgically remove or bend
//! one protection site — drop a `cre`/`crd`, replace an encrypt with a plain
//! move ("forgot to encrypt"), or swap a tweak register — producing a
//! program that assembles fine but violates exactly one invariant.

/// A single protection-site mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete the crypto instruction outright.
    Strip,
    /// Replace `cre.. rd, rs[..], rt` / `crd.. rd, rs, rt, [..]` with
    /// `mv rd, rs` — the classic "instrumentation forgot the crypto" bug:
    /// the value flows on, but in plaintext (or still in ciphertext).
    ToMove,
    /// Replace the tweak register operand with `t2` (or `t3` if the site
    /// already uses `t2`), breaking the storage-address tweak discipline.
    SwapTweak,
}

/// One crypto instruction found in an assembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CryptoSite {
    /// Zero-based line index into the assembly text.
    pub line: usize,
    /// `true` for `cre`, `false` for `crd`.
    pub is_cre: bool,
    /// The trimmed instruction text.
    pub text: String,
}

fn crypto_mnemonic(trimmed: &str) -> Option<bool> {
    // Mnemonics are `cre{k}k` / `crd{k}k` with a single-letter key.
    let mnemonic = trimmed.split_whitespace().next()?;
    if mnemonic.len() == 5 && mnemonic.ends_with('k') {
        if let Some(rest) = mnemonic.strip_prefix("cre") {
            return rest.chars().next().map(|_| true);
        }
        if let Some(rest) = mnemonic.strip_prefix("crd") {
            return rest.chars().next().map(|_| false);
        }
    }
    None
}

/// Lists every `cre`/`crd` instruction line in `asm`.
#[must_use]
pub fn crypto_sites(asm: &str) -> Vec<CryptoSite> {
    asm.lines()
        .enumerate()
        .filter_map(|(line, raw)| {
            let trimmed = raw.trim();
            crypto_mnemonic(trimmed).map(|is_cre| CryptoSite {
                line,
                is_cre,
                text: trimmed.to_owned(),
            })
        })
        .collect()
}

/// Splits a crypto line into `(mnemonic, rd, rs, rt)` operand names,
/// tolerating both the `cre` (`rd, rs[e:s], rt`) and `crd`
/// (`rd, rs, rt, [e:s]`) operand shapes.
fn split_site(text: &str) -> Option<(bool, String, String, String)> {
    let is_cre = crypto_mnemonic(text)?;
    let ops = text.split_whitespace().skip(1).collect::<Vec<_>>().join(" ");
    let parts: Vec<&str> = ops.split(',').map(str::trim).collect();
    if is_cre {
        // rd, rs[e:s], rt
        if parts.len() != 3 {
            return None;
        }
        let rs = parts[1].split('[').next()?.trim();
        Some((true, parts[0].into(), rs.into(), parts[2].into()))
    } else {
        // rd, rs, rt, [e:s]
        if parts.len() != 4 {
            return None;
        }
        Some((false, parts[0].into(), parts[1].into(), parts[2].into()))
    }
}

/// Applies `mutation` to the crypto instruction at line `line` of `asm`.
///
/// Returns the mutated assembly, or `None` if the line is not a crypto
/// instruction (or the mutation cannot apply).
#[must_use]
pub fn apply(asm: &str, line: usize, mutation: Mutation) -> Option<String> {
    let lines: Vec<&str> = asm.lines().collect();
    let target = lines.get(line)?.trim();
    let (_, rd, rs, rt) = split_site(target)?;
    let replacement = match mutation {
        Mutation::Strip => None,
        Mutation::ToMove => Some(format!("mv {rd}, {rs}")),
        Mutation::SwapTweak => {
            let swapped = if rt == "t2" { "t3" } else { "t2" };
            Some(target.replacen(&format!(", {rt}"), &format!(", {swapped}"), 1))
        }
    };
    let mut out = Vec::with_capacity(lines.len());
    for (i, &text) in lines.iter().enumerate() {
        if i == line {
            if let Some(ref repl) = replacement {
                // Preserve the original indentation.
                let indent: String = text.chars().take_while(|c| c.is_whitespace()).collect();
                out.push(format!("{indent}{repl}"));
            }
        } else {
            out.push(text.to_owned());
        }
    }
    Some(out.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASM: &str = "main:
    addi t6, sp, 8
    creek t5, t0[7:0], t6
    sd t5, 0(t6)
    ld t0, 8(sp)
    crdek t0, t0, t6, [7:0]
    ret";

    #[test]
    fn finds_both_crypto_sites() {
        let sites = crypto_sites(ASM);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].is_cre);
        assert!(!sites[1].is_cre);
        assert_eq!(sites[0].line, 2);
    }

    #[test]
    fn strip_removes_the_line() {
        let mutated = apply(ASM, 2, Mutation::Strip).unwrap();
        assert!(!mutated.contains("creek"));
        assert!(mutated.contains("crdek"));
    }

    #[test]
    fn to_move_preserves_dataflow_shape() {
        let mutated = apply(ASM, 2, Mutation::ToMove).unwrap();
        assert!(mutated.contains("mv t5, t0"));
        let mutated = apply(ASM, 5, Mutation::ToMove).unwrap();
        assert!(mutated.contains("mv t0, t0"));
    }

    #[test]
    fn swap_tweak_changes_only_the_tweak() {
        let mutated = apply(ASM, 2, Mutation::SwapTweak).unwrap();
        assert!(mutated.contains("creek t5, t0[7:0], t2"));
        let mutated = apply(ASM, 5, Mutation::SwapTweak).unwrap();
        assert!(mutated.contains("crdek t0, t0, t2, [7:0]"));
    }

    #[test]
    fn non_crypto_lines_are_rejected() {
        assert!(apply(ASM, 0, Mutation::Strip).is_none());
        assert!(apply(ASM, 3, Mutation::ToMove).is_none());
    }
}
