//! Mutation helpers for the negative-test harness.
//!
//! The verifier is only trustworthy if it *fails* on broken output, so these
//! helpers take the compiler's assembly text and surgically remove or bend
//! one protection site — drop a `cre`/`crd`, replace an encrypt with a plain
//! move ("forgot to encrypt"), or swap a tweak register — producing a
//! program that assembles fine but violates exactly one invariant.
//!
//! The second group of mutations seeds *whole-program* hazards that only the
//! interprocedural [`lints`](crate::lints) catch: a reused `(key, tweak)`
//! pair ([`Mutation::ReuseTweak`]), a raw key load from [`KEY_SYMBOL`]
//! ([`Mutation::LeakKeyToGpr`]), and a cross-call spill gadget through
//! [`SPILL_HELPER`] ([`Mutation::PlainSpillInCallee`]).

/// The key-storage data symbol [`Mutation::LeakKeyToGpr`] loads from; the
/// manifest must list it in `key_symbols` for the lint to see the taint.
pub const KEY_SYMBOL: &str = "keyblob";

/// The callee appended by [`Mutation::PlainSpillInCallee`]: locally clean
/// (it only saves/restores its own view of `s1`), but a spill gadget for any
/// caller holding plaintext in `s1`.
pub const SPILL_HELPER: &str = "spill_helper";

/// A single protection-site mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete the crypto instruction outright.
    Strip,
    /// Replace `cre.. rd, rs[..], rt` / `crd.. rd, rs, rt, [..]` with
    /// `mv rd, rs` — the classic "instrumentation forgot the crypto" bug:
    /// the value flows on, but in plaintext (or still in ciphertext).
    ToMove,
    /// Replace the tweak register operand with `t2` (or `t3` if the site
    /// already uses `t2`), breaking the storage-address tweak discipline.
    SwapTweak,
    /// After a `cre`, insert a second encryption of a different value under
    /// the *same* `(key, tweak)` pair (`cre`-only). The result is never
    /// stored, so no intraprocedural invariant breaks — only the
    /// tweak-diversity lint sees the ciphertext-dictionary precondition.
    ReuseTweak,
    /// After the site, load raw key material from [`KEY_SYMBOL`] into a
    /// scratch register. The value is never stored or spilled — only the
    /// raw-key-flow lint objects.
    LeakKeyToGpr,
    /// After a `crd` (`crd`-only), move the decrypted plaintext into `s1`
    /// and call [`SPILL_HELPER`], which is appended to the program and
    /// saves `s1` raw. Each function is locally clean — only the
    /// whole-program spill-gadget lint composes them into a violation.
    PlainSpillInCallee,
}

/// One crypto instruction found in an assembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CryptoSite {
    /// Zero-based line index into the assembly text.
    pub line: usize,
    /// `true` for `cre`, `false` for `crd`.
    pub is_cre: bool,
    /// The trimmed instruction text.
    pub text: String,
}

fn crypto_mnemonic(trimmed: &str) -> Option<bool> {
    // Mnemonics are `cre{k}k` / `crd{k}k` with a single-letter key.
    let mnemonic = trimmed.split_whitespace().next()?;
    if mnemonic.len() == 5 && mnemonic.ends_with('k') {
        if let Some(rest) = mnemonic.strip_prefix("cre") {
            return rest.chars().next().map(|_| true);
        }
        if let Some(rest) = mnemonic.strip_prefix("crd") {
            return rest.chars().next().map(|_| false);
        }
    }
    None
}

/// Lists every `cre`/`crd` instruction line in `asm`.
#[must_use]
pub fn crypto_sites(asm: &str) -> Vec<CryptoSite> {
    asm.lines()
        .enumerate()
        .filter_map(|(line, raw)| {
            let trimmed = raw.trim();
            crypto_mnemonic(trimmed).map(|is_cre| CryptoSite {
                line,
                is_cre,
                text: trimmed.to_owned(),
            })
        })
        .collect()
}

/// Splits a crypto line into `(mnemonic, rd, rs, rt)` operand names,
/// tolerating both the `cre` (`rd, rs[e:s], rt`) and `crd`
/// (`rd, rs, rt, [e:s]`) operand shapes.
fn split_site(text: &str) -> Option<(bool, String, String, String)> {
    let is_cre = crypto_mnemonic(text)?;
    let ops = text
        .split_whitespace()
        .skip(1)
        .collect::<Vec<_>>()
        .join(" ");
    let parts: Vec<&str> = ops.split(',').map(str::trim).collect();
    if is_cre {
        // rd, rs[e:s], rt
        if parts.len() != 3 {
            return None;
        }
        let rs = parts[1].split('[').next()?.trim();
        Some((true, parts[0].into(), rs.into(), parts[2].into()))
    } else {
        // rd, rs, rt, [e:s]
        if parts.len() != 4 {
            return None;
        }
        Some((false, parts[0].into(), parts[1].into(), parts[2].into()))
    }
}

/// How a mutation edits the listing.
enum Action {
    /// Replace the target line (`None` deletes it).
    Replace(Option<String>),
    /// Keep the target line and insert these after it.
    InsertAfter(Vec<String>),
}

/// Applies `mutation` to the crypto instruction at line `line` of `asm`.
///
/// Returns the mutated assembly, or `None` if the line is not a crypto
/// instruction (or the mutation cannot apply — e.g. [`Mutation::ReuseTweak`]
/// on a `crd` site).
#[must_use]
pub fn apply(asm: &str, line: usize, mutation: Mutation) -> Option<String> {
    let lines: Vec<&str> = asm.lines().collect();
    let target = lines.get(line)?.trim();
    let (is_cre, rd, rs, rt) = split_site(target)?;
    // Whole functions/data appended after the listing.
    let mut append: Vec<String> = Vec::new();
    let action = match mutation {
        Mutation::Strip => Action::Replace(None),
        Mutation::ToMove => Action::Replace(Some(format!("mv {rd}, {rs}"))),
        Mutation::SwapTweak => {
            let swapped = if rt == "t2" { "t3" } else { "t2" };
            Action::Replace(Some(target.replacen(
                &format!(", {rt}"),
                &format!(", {swapped}"),
                1,
            )))
        }
        Mutation::ReuseTweak => {
            if !is_cre {
                return None;
            }
            let mnemonic = target.split_whitespace().next()?;
            let range = &target[target.find('[')?..=target.find(']')?];
            // Same key, same tweak register, unrelated plaintext (a4).
            Action::InsertAfter(vec![format!("{mnemonic} t4, a4{range}, {rt}")])
        }
        Mutation::LeakKeyToGpr => {
            let declared = lines
                .iter()
                .any(|l| l.trim().starts_with(&format!("{KEY_SYMBOL}:")));
            if !declared {
                append.push(format!("{KEY_SYMBOL}: .dword 0x0f1e2d3c4b5a6978"));
            }
            Action::InsertAfter(vec![
                format!("la t4, {KEY_SYMBOL}"),
                "ld t4, 0(t4)".to_owned(),
            ])
        }
        Mutation::PlainSpillInCallee => {
            if is_cre {
                return None;
            }
            append.extend([
                format!("{SPILL_HELPER}:"),
                "addi sp, sp, -16".to_owned(),
                "sd s1, 0(sp)".to_owned(),
                "ld s1, 0(sp)".to_owned(),
                "addi sp, sp, 16".to_owned(),
                "ret".to_owned(),
            ]);
            Action::InsertAfter(vec![format!("mv s1, {rd}"), format!("call {SPILL_HELPER}")])
        }
    };
    let mut out = Vec::with_capacity(lines.len() + append.len() + 2);
    for (i, &text) in lines.iter().enumerate() {
        // Preserve the original indentation for replacements/insertions.
        let indent: String = text.chars().take_while(|c| c.is_whitespace()).collect();
        if i == line {
            match &action {
                Action::Replace(None) => {}
                Action::Replace(Some(repl)) => out.push(format!("{indent}{repl}")),
                Action::InsertAfter(extra) => {
                    out.push(text.to_owned());
                    for insn in extra {
                        out.push(format!("{indent}{insn}"));
                    }
                }
            }
        } else {
            out.push(text.to_owned());
        }
    }
    out.extend(append);
    Some(out.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASM: &str = "main:
    addi t6, sp, 8
    creek t5, t0[7:0], t6
    sd t5, 0(t6)
    ld t0, 8(sp)
    crdek t0, t0, t6, [7:0]
    ret";

    #[test]
    fn finds_both_crypto_sites() {
        let sites = crypto_sites(ASM);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].is_cre);
        assert!(!sites[1].is_cre);
        assert_eq!(sites[0].line, 2);
    }

    #[test]
    fn strip_removes_the_line() {
        let mutated = apply(ASM, 2, Mutation::Strip).unwrap();
        assert!(!mutated.contains("creek"));
        assert!(mutated.contains("crdek"));
    }

    #[test]
    fn to_move_preserves_dataflow_shape() {
        let mutated = apply(ASM, 2, Mutation::ToMove).unwrap();
        assert!(mutated.contains("mv t5, t0"));
        let mutated = apply(ASM, 5, Mutation::ToMove).unwrap();
        assert!(mutated.contains("mv t0, t0"));
    }

    #[test]
    fn swap_tweak_changes_only_the_tweak() {
        let mutated = apply(ASM, 2, Mutation::SwapTweak).unwrap();
        assert!(mutated.contains("creek t5, t0[7:0], t2"));
        let mutated = apply(ASM, 5, Mutation::SwapTweak).unwrap();
        assert!(mutated.contains("crdek t0, t0, t2, [7:0]"));
    }

    #[test]
    fn non_crypto_lines_are_rejected() {
        assert!(apply(ASM, 0, Mutation::Strip).is_none());
        assert!(apply(ASM, 3, Mutation::ToMove).is_none());
    }

    #[test]
    fn reuse_tweak_duplicates_the_pair_on_cre_only() {
        let mutated = apply(ASM, 2, Mutation::ReuseTweak).unwrap();
        assert!(mutated.contains("creek t5, t0[7:0], t6"));
        assert!(mutated.contains("creek t4, a4[7:0], t6"));
        // crd sites have no tweak pair to reuse.
        assert!(apply(ASM, 5, Mutation::ReuseTweak).is_none());
    }

    #[test]
    fn leak_key_declares_storage_exactly_once() {
        let mutated = apply(ASM, 2, Mutation::LeakKeyToGpr).unwrap();
        assert!(mutated.contains("la t4, keyblob"));
        assert!(mutated.contains("ld t4, 0(t4)"));
        assert_eq!(mutated.matches("keyblob:").count(), 1);
        // Already-declared storage is not duplicated.
        let again = apply(&mutated, 2, Mutation::LeakKeyToGpr).unwrap();
        assert_eq!(again.matches("keyblob:").count(), 1);
    }

    #[test]
    fn plain_spill_in_callee_builds_the_gadget_on_crd_only() {
        let mutated = apply(ASM, 5, Mutation::PlainSpillInCallee).unwrap();
        assert!(mutated.contains("mv s1, t0"));
        assert!(mutated.contains("call spill_helper"));
        assert!(mutated.contains("spill_helper:"));
        assert!(apply(ASM, 2, Mutation::PlainSpillInCallee).is_none());
    }
}
