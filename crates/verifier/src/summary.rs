//! Per-function taint summaries for interprocedural analysis.
//!
//! A [`FnSummary`] condenses what one function does to sensitive data into a
//! few monotone bit-facts: does it return decrypted plaintext (or raw key
//! material) in `a0`, does a plaintext argument leak to memory inside it, and
//! which callee-saved registers does it (transitively) save to memory without
//! a wrapping `cre`. Summaries are computed to a fixpoint over the call
//! graph — each function is analyzed with the *current* summaries applied at
//! its resolved call sites, so facts flow bottom-up through arbitrarily deep
//! (even recursive) call chains. All fields only ever grow, which guarantees
//! termination.
//!
//! Summary semantics are *may*: a set bit means "some path may do this".
//! The interprocedural pass consumes them at call sites (see
//! [`crate::taint::CallEnv`]) and the lint passes read them directly.

use std::collections::{BTreeMap, BTreeSet};

use regvault_isa::abi::ARG_REGS;

use crate::cfg::{Cfg, FuncRegion};
use crate::diag::ViolationKind;
use crate::taint::{analyze_full, callee_saved_bit, CallEnv, Event, RawViolation, TaintOptions};

/// The interprocedural taint summary of one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// `a0` may hold sensitive plaintext at some return, regardless of
    /// argument taint (e.g. the function decrypts and returns).
    pub returns_plain: bool,
    /// `a0` may hold raw key material at some return.
    pub returns_key: bool,
    /// Bit `i`: if argument `a<i>` is plaintext, `a0` may be plaintext at
    /// some return (argument-to-return flow).
    pub arg_returns_plain: u8,
    /// Bit `i`: a plaintext argument `a<i>` may reach memory unencrypted
    /// inside this function (or a callee it forwards the value to).
    pub arg_spills: u8,
    /// Bit per [`regvault_isa::abi::CALLEE_SAVED`] index: the function (or a
    /// callee it passes the register through to) saves that register's entry
    /// value to memory without a wrapping `cre`.
    pub plain_saves: u16,
}

impl FnSummary {
    /// Monotone merge: the union of two summaries' facts.
    #[must_use]
    pub fn union(self, other: FnSummary) -> FnSummary {
        FnSummary {
            returns_plain: self.returns_plain || other.returns_plain,
            returns_key: self.returns_key || other.returns_key,
            arg_returns_plain: self.arg_returns_plain | other.arg_returns_plain,
            arg_spills: self.arg_spills | other.arg_spills,
            plain_saves: self.plain_saves | other.plain_saves,
        }
    }

    /// `true` when the summary records no facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == FnSummary::default()
    }
}

/// Leak-class violations used to detect argument spills: only kinds that
/// mean "plaintext reached memory" participate, so tweak/key-discipline
/// noise cannot masquerade as an argument leak.
fn leak_set(violations: &[RawViolation]) -> BTreeSet<(ViolationKind, u64, String)> {
    violations
        .iter()
        .filter(|v| {
            matches!(
                v.kind,
                ViolationKind::PlainSpill | ViolationKind::PlainStore
            )
        })
        .map(|v| (v.kind, v.offset, v.detail.clone()))
        .collect()
}

/// Whether a run's events show `a0` plaintext escaping through a return,
/// either directly or through a resolved tail call.
fn run_returns_plain(
    events: &[Event],
    targets: &BTreeMap<u64, String>,
    summaries: &BTreeMap<String, FnSummary>,
) -> bool {
    events.iter().any(|e| match *e {
        Event::Ret { a0_plain, .. } => a0_plain,
        Event::Call {
            offset,
            tail: true,
            plain_args,
            ..
        } => targets
            .get(&offset)
            .and_then(|n| summaries.get(n))
            .is_some_and(|s| s.returns_plain || s.arg_returns_plain & plain_args != 0),
        _ => false,
    })
}

/// Like [`run_returns_plain`] but for raw key material.
fn run_returns_key(
    events: &[Event],
    targets: &BTreeMap<u64, String>,
    summaries: &BTreeMap<String, FnSummary>,
) -> bool {
    events.iter().any(|e| match *e {
        Event::Ret { a0_key, .. } => a0_key,
        Event::Call {
            offset, tail: true, ..
        } => targets
            .get(&offset)
            .and_then(|n| summaries.get(n))
            .is_some_and(|s| s.returns_key),
        _ => false,
    })
}

/// Computes one function's summary given the current summaries of everyone
/// else (and itself, for recursion).
fn summarize_one(
    cfg: &Cfg,
    options: TaintOptions,
    targets: &BTreeMap<u64, String>,
    key_regions: &[(u64, u64)],
    summaries: &BTreeMap<String, FnSummary>,
) -> FnSummary {
    let env = CallEnv { targets, summaries };
    // Reference run with no seeded arguments: whatever leaks here leaks for
    // every caller, and is not attributable to any specific argument.
    let base = analyze_full(cfg, &[], options, key_regions, Some(&env));
    let base_leaks = leak_set(&base.violations);
    let mut summary = FnSummary {
        returns_plain: run_returns_plain(&base.events, targets, summaries),
        returns_key: run_returns_key(&base.events, targets, summaries),
        ..FnSummary::default()
    };
    // Raw callee-saved saves: direct, plus transitive through calls that
    // forward the caller's still-live register into a saving callee.
    for event in &base.events {
        match *event {
            Event::PlainSave { reg, .. } => {
                if let Some(bit) = callee_saved_bit(reg) {
                    summary.plain_saves |= bit;
                }
            }
            Event::Call {
                offset,
                entry_callee_saved,
                ..
            } => {
                if let Some(callee) = targets.get(&offset) {
                    if let Some(s) = summaries.get(callee) {
                        summary.plain_saves |= entry_callee_saved & s.plain_saves;
                    }
                }
            }
            _ => {}
        }
    }
    // Per-argument probe runs: seed exactly one argument register Plain and
    // diff the leak set against the reference run.
    for (i, &arg) in ARG_REGS.iter().enumerate() {
        let run = analyze_full(cfg, &[arg], options, key_regions, Some(&env));
        if leak_set(&run.violations)
            .difference(&base_leaks)
            .next()
            .is_some()
        {
            summary.arg_spills |= 1 << i;
        }
        if run_returns_plain(&run.events, targets, summaries) {
            summary.arg_returns_plain |= 1 << i;
        }
    }
    // An argless run that already returns plaintext makes the per-argument
    // return bits vacuous; keep them anyway (they are a superset and the
    // call-site check ORs them with returns_plain).
    summary
}

/// Computes summaries for all functions to a fixpoint over the call graph.
///
/// `funcs` pairs each function region with its CFG and the taint options it
/// is verified under (CIP stubs run without tweak discipline); `targets`
/// maps resolved call-site offsets to callee symbols (see
/// [`crate::callgraph`]).
#[must_use]
pub fn compute(
    funcs: &[(FuncRegion, Cfg, TaintOptions)],
    targets: &BTreeMap<u64, String>,
    key_regions: &[(u64, u64)],
) -> BTreeMap<String, FnSummary> {
    let mut summaries: BTreeMap<String, FnSummary> = funcs
        .iter()
        .map(|(region, _, _)| (region.name.clone(), FnSummary::default()))
        .collect();
    // Facts only grow, so the fixpoint needs at most one round per edge in
    // the longest acyclic summary-dependency chain; funcs.len() + 1 rounds
    // is a safe upper bound, and the loop exits early once stable.
    for _ in 0..=funcs.len() {
        let mut changed = false;
        for (region, cfg, options) in funcs {
            let new = summarize_one(cfg, *options, targets, key_regions, &summaries);
            let current = summaries.get(&region.name).copied().unwrap_or_default();
            let merged = current.union(new);
            if merged != current {
                summaries.insert(region.name.clone(), merged);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, regions_from_symbols};
    use regvault_isa::asm::assemble;

    /// Assembles `src`, builds per-function CFGs, resolves direct calls by
    /// symbol, and computes summaries.
    fn summaries_of(src: &str) -> BTreeMap<String, FnSummary> {
        let program = assemble(src).unwrap();
        let regions =
            regions_from_symbols(program.symbols().iter(), program.bytes().len() as u64, &[]);
        let funcs: Vec<(FuncRegion, Cfg, TaintOptions)> = regions
            .iter()
            .map(|r| {
                (
                    r.clone(),
                    build(program.bytes(), r).unwrap(),
                    TaintOptions::default(),
                )
            })
            .collect();
        let graph = crate::callgraph::build(&funcs, &[]);
        compute(&funcs, &graph.targets, &[])
    }

    #[test]
    fn decrypting_return_is_summarized() {
        let s = summaries_of(
            "get_secret:
             ld a0, 0(a1)
             crdak a0, a0, a1, [7:0]
             ret",
        );
        assert!(s["get_secret"].returns_plain);
        assert_eq!(s["get_secret"].arg_spills, 0);
    }

    #[test]
    fn argument_spill_is_attributed_to_the_right_argument() {
        let s = summaries_of(
            "sink:
             addi sp, sp, -16
             sd a1, 0(sp)
             addi sp, sp, 16
             ret",
        );
        assert_eq!(s["sink"].arg_spills, 0b10, "{:?}", s["sink"]);
        assert!(!s["sink"].returns_plain);
    }

    #[test]
    fn raw_callee_saved_save_is_recorded_and_propagates_up() {
        // helper saves s1 raw; wrapper forwards its own (untouched) s1 into
        // helper, so the fact propagates transitively.
        let s = summaries_of(
            "wrapper:
             addi sp, sp, -16
             sd ra, 8(sp)
             call helper
             ld ra, 8(sp)
             addi sp, sp, 16
             ret
             helper:
             addi sp, sp, -16
             sd s1, 0(sp)
             ld s1, 0(sp)
             addi sp, sp, 16
             ret",
        );
        let s1_bit = callee_saved_bit(regvault_isa::Reg::S1).unwrap();
        assert_eq!(
            s["helper"].plain_saves & s1_bit,
            s1_bit,
            "{:?}",
            s["helper"]
        );
        assert_eq!(
            s["wrapper"].plain_saves & s1_bit,
            s1_bit,
            "{:?}",
            s["wrapper"]
        );
    }

    #[test]
    fn argument_to_return_flow_is_summarized() {
        let s = summaries_of(
            "ident:
             mv a0, a0
             ret",
        );
        assert_eq!(s["ident"].arg_returns_plain & 1, 1, "{:?}", s["ident"]);
        assert!(!s["ident"].returns_plain);
    }

    #[test]
    fn transitive_return_through_a_wrapper_call_chain() {
        // outer tail-calls inner which decrypts and returns: outer must
        // summarize returns_plain through the tail edge.
        let s = summaries_of(
            "outer:
             j inner
             inner:
             crdak a0, a0, a1, [7:0]
             ret",
        );
        assert!(s["inner"].returns_plain);
        assert!(s["outer"].returns_plain, "{:?}", s["outer"]);
    }
}
