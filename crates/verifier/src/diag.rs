//! Structured verifier diagnostics.
//!
//! Every invariant violation carries the function it was found in, the byte
//! offset of the offending instruction inside the image, its disassembly, a
//! human-oriented detail string, and a small disassembly context window, so a
//! report is actionable without re-running the disassembler by hand.

use std::collections::BTreeMap;
use std::fmt;

/// The RegVault invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// Sensitive plaintext stored to a stack slot without a wrapping `cre`.
    PlainSpill,
    /// Sensitive plaintext stored to non-stack memory (strict mode only).
    PlainStore,
    /// Sensitive plaintext live in a callee-saved register across a call.
    SensitiveAcrossCall,
    /// Ciphertext stored to (or decrypted with) an address other than its
    /// encryption tweak.
    TweakMismatch,
    /// `crd` uses a different key register than the `cre` that produced the
    /// ciphertext.
    KeyMismatch,
    /// Fewer `cre`/`crd` instructions in the binary than the compiler's
    /// protection manifest requires.
    CryptoDropped,
    /// A chain-encrypted interrupt frame save that breaks the CIP discipline
    /// (wrong tweak chaining, non-contiguous slots, missing trailing zero).
    MalformedCipChain,
    /// A word inside a function extent that does not decode.
    Undecodable,
}

impl ViolationKind {
    /// Stable lowercase identifier used in JSON output.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ViolationKind::PlainSpill => "plain-spill",
            ViolationKind::PlainStore => "plain-store",
            ViolationKind::SensitiveAcrossCall => "sensitive-across-call",
            ViolationKind::TweakMismatch => "tweak-mismatch",
            ViolationKind::KeyMismatch => "key-mismatch",
            ViolationKind::CryptoDropped => "crypto-dropped",
            ViolationKind::MalformedCipChain => "malformed-cip-chain",
            ViolationKind::Undecodable => "undecodable",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One invariant violation, anchored to an instruction in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant was broken.
    pub kind: ViolationKind,
    /// The function the instruction belongs to.
    pub function: String,
    /// Byte offset of the offending instruction within the image.
    pub offset: u64,
    /// Disassembly of the offending instruction.
    pub insn: String,
    /// Human-oriented explanation.
    pub detail: String,
    /// Disassembly context window around the offending instruction.
    pub context: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {:#06x} in `{}`: {}",
            self.kind, self.insn, self.offset, self.function, self.detail
        )
    }
}

/// Per-function statistics gathered while verifying.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnStats {
    /// Instructions decoded inside the function extent.
    pub instructions: usize,
    /// `cre` instructions found.
    pub cre: usize,
    /// `crd` instructions found.
    pub crd: usize,
}

/// The result of verifying one image.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All violations, ordered by (function, offset, kind).
    pub violations: Vec<Violation>,
    /// Per-function statistics, in symbol order.
    pub stats: BTreeMap<String, FnStats>,
    /// Symbol regions skipped because they did not decode as code (only
    /// when the caller opted into treating undecodable regions as data).
    pub skipped_data: Vec<String>,
}

impl Report {
    /// `true` when no invariant violations were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total instructions across all verified functions.
    #[must_use]
    pub fn instructions(&self) -> usize {
        self.stats.values().map(|s| s.instructions).sum()
    }

    /// Total `cre`/`crd` instructions across all verified functions.
    #[must_use]
    pub fn crypto_ops(&self) -> usize {
        self.stats.values().map(|s| s.cre + s.crd).sum()
    }

    /// Renders the report for humans: a verdict line, statistics, and one
    /// block per violation with its disassembly context.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "OK: {} function(s), {} instruction(s), {} crypto op(s), 0 violations\n",
                self.stats.len(),
                self.instructions(),
                self.crypto_ops()
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {} violation(s) across {} function(s)\n",
                self.violations.len(),
                self.stats.len()
            ));
            for v in &self.violations {
                out.push('\n');
                out.push_str(&v.to_string());
                out.push('\n');
                for line in &v.context {
                    let marker = if line.starts_with(&format!("{:#06x}:", v.offset)) {
                        "  > "
                    } else {
                        "    "
                    };
                    out.push_str(marker);
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        for name in &self.skipped_data {
            out.push_str(&format!("note: `{name}` skipped (data, not code)\n"));
        }
        out
    }

    /// Renders the report as a single JSON object.
    ///
    /// Schema: `{"clean": bool, "functions": N, "instructions": N,
    /// "crypto_ops": N, "violations": [{"kind", "function", "offset",
    /// "insn", "detail"}], "skipped_data": [..]}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"clean\":{},", self.is_clean()));
        out.push_str(&format!("\"functions\":{},", self.stats.len()));
        out.push_str(&format!("\"instructions\":{},", self.instructions()));
        out.push_str(&format!("\"crypto_ops\":{},", self.crypto_ops()));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"function\":{},\"offset\":{},\"insn\":{},\"detail\":{}}}",
                json_str(v.kind.id()),
                json_str(&v.function),
                v.offset,
                json_str(&v.insn),
                json_str(&v.detail)
            ));
        }
        out.push_str("],\"skipped_data\":[");
        for (i, name) in self.skipped_data.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(name));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_violation() -> Violation {
        Violation {
            kind: ViolationKind::PlainSpill,
            function: "main".into(),
            offset: 0x40,
            insn: "sd t0, 0(t6)".into(),
            detail: "sensitive plaintext in t0 stored to stack".into(),
            context: vec!["0x0040: 005b3023  sd t0, 0(t6)".into()],
        }
    }

    #[test]
    fn clean_report_renders_ok() {
        let mut report = Report::default();
        report.stats.insert(
            "main".into(),
            FnStats {
                instructions: 7,
                cre: 1,
                crd: 1,
            },
        );
        assert!(report.is_clean());
        assert!(report.render_human().starts_with("OK:"));
        assert!(report.render_json().contains("\"clean\":true"));
    }

    #[test]
    fn violation_renders_with_address_and_kind() {
        let mut report = Report::default();
        report.violations.push(sample_violation());
        let human = report.render_human();
        assert!(human.starts_with("FAIL:"));
        assert!(human.contains("0x0040"));
        assert!(human.contains("plain-spill"));
        let json = report.render_json();
        assert!(json.contains("\"kind\":\"plain-spill\""));
        assert!(json.contains("\"offset\":64"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
