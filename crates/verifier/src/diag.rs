//! Structured verifier diagnostics.
//!
//! Every invariant violation carries the function it was found in, the byte
//! offset of the offending instruction inside the image, its disassembly, a
//! human-oriented detail string, and a small disassembly context window, so a
//! report is actionable without re-running the disassembler by hand.
//!
//! Diagnostics are deterministic: [`Report::finalize`] sorts, deduplicates
//! per `(kind, fingerprint)`, and assigns each violation a stable
//! fingerprint — a hash over `(kind, function, instruction, detail,
//! occurrence index)` that deliberately excludes byte offsets, so unrelated
//! code motion does not churn a committed baseline. The SARIF-style
//! renderer ([`sarif_report`]) and the baseline ratchet
//! ([`crate::baseline`]) build on those fingerprints.

use std::collections::BTreeMap;
use std::fmt;

use crate::callgraph::CallGraphStats;

/// The RegVault invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// Sensitive plaintext stored to a stack slot without a wrapping `cre`.
    PlainSpill,
    /// Sensitive plaintext stored to non-stack memory (strict mode only).
    PlainStore,
    /// Sensitive plaintext live in a callee-saved register across a call.
    SensitiveAcrossCall,
    /// Ciphertext stored to (or decrypted with) an address other than its
    /// encryption tweak.
    TweakMismatch,
    /// `crd` uses a different key register than the `cre` that produced the
    /// ciphertext.
    KeyMismatch,
    /// Fewer `cre`/`crd` instructions in the binary than the compiler's
    /// protection manifest requires.
    CryptoDropped,
    /// A chain-encrypted interrupt frame save that breaks the CIP discipline
    /// (wrong tweak chaining, non-contiguous slots, missing trailing zero).
    MalformedCipChain,
    /// A word inside a function extent that does not decode.
    Undecodable,
    /// A `(key, tweak)` pair that can repeat across distinct plaintexts —
    /// the ciphertext-dictionary precondition (CipherGuard).
    TweakDiversity,
    /// Raw key material reaching a general-purpose register or memory
    /// unencrypted (KeyVisor invariant).
    RawKeyFlow,
    /// Sensitive plaintext in a callee-saved register live across a call
    /// into a function that saves that register unencrypted.
    SpillGadget,
}

/// How serious a finding is: errors break the protection invariants
/// outright, warnings flag side-channel risk or policy debt to be ratcheted
/// down over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Side-channel risk / policy debt; baselined and ratcheted.
    Warning,
    /// A broken protection invariant; fails the compiler gate.
    Error,
}

impl Severity {
    /// Stable lowercase identifier (matches SARIF `level` values).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl ViolationKind {
    /// Every kind, in report order.
    pub const ALL: [ViolationKind; 11] = [
        ViolationKind::PlainSpill,
        ViolationKind::PlainStore,
        ViolationKind::SensitiveAcrossCall,
        ViolationKind::TweakMismatch,
        ViolationKind::KeyMismatch,
        ViolationKind::CryptoDropped,
        ViolationKind::MalformedCipChain,
        ViolationKind::Undecodable,
        ViolationKind::TweakDiversity,
        ViolationKind::RawKeyFlow,
        ViolationKind::SpillGadget,
    ];

    /// Stable lowercase identifier used in JSON output.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ViolationKind::PlainSpill => "plain-spill",
            ViolationKind::PlainStore => "plain-store",
            ViolationKind::SensitiveAcrossCall => "sensitive-across-call",
            ViolationKind::TweakMismatch => "tweak-mismatch",
            ViolationKind::KeyMismatch => "key-mismatch",
            ViolationKind::CryptoDropped => "crypto-dropped",
            ViolationKind::MalformedCipChain => "malformed-cip-chain",
            ViolationKind::Undecodable => "undecodable",
            ViolationKind::TweakDiversity => "tweak-diversity",
            ViolationKind::RawKeyFlow => "raw-key-flow",
            ViolationKind::SpillGadget => "unprotected-spill-gadget",
        }
    }

    /// The severity class of this kind.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            ViolationKind::TweakDiversity | ViolationKind::RawKeyFlow => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One invariant violation, anchored to an instruction in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant was broken.
    pub kind: ViolationKind,
    /// The function the instruction belongs to.
    pub function: String,
    /// Byte offset of the offending instruction within the image.
    pub offset: u64,
    /// Disassembly of the offending instruction.
    pub insn: String,
    /// Human-oriented explanation.
    pub detail: String,
    /// Disassembly context window around the offending instruction.
    pub context: Vec<String>,
    /// Stable fingerprint (filled by [`Report::finalize`]): a hash of
    /// `(kind, function, insn, detail, occurrence)` — offsets excluded so
    /// code motion does not churn baselines.
    pub fingerprint: String,
}

impl Violation {
    /// The severity of this violation (derived from its kind).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {:#06x} in `{}`: {}",
            self.kind, self.insn, self.offset, self.function, self.detail
        )
    }
}

/// 64-bit FNV-1a over the fingerprint inputs, rendered as 16 hex digits.
fn fingerprint_of(
    kind: ViolationKind,
    function: &str,
    insn: &str,
    detail: &str,
    occurrence: u64,
) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0xff; // field separator
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(kind.id().as_bytes());
    eat(function.as_bytes());
    eat(insn.as_bytes());
    eat(detail.as_bytes());
    eat(&occurrence.to_le_bytes());
    format!("{hash:016x}")
}

/// Per-function statistics gathered while verifying.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnStats {
    /// Instructions decoded inside the function extent.
    pub instructions: usize,
    /// `cre` instructions found.
    pub cre: usize,
    /// `crd` instructions found.
    pub crd: usize,
}

/// The result of verifying one image.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All violations, ordered by (function, offset, kind).
    pub violations: Vec<Violation>,
    /// Per-function statistics, in symbol order.
    pub stats: BTreeMap<String, FnStats>,
    /// Symbol regions skipped because they did not decode as code (only
    /// when the caller opted into treating undecodable regions as data).
    pub skipped_data: Vec<String>,
    /// Call-graph coverage statistics (interprocedural mode only).
    pub graph: Option<CallGraphStats>,
}

impl Report {
    /// `true` when no invariant violations were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when at least one violation is [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.violations
            .iter()
            .any(|v| v.severity() == Severity::Error)
    }

    /// Violations of a given severity.
    #[must_use]
    pub fn count_by_severity(&self, severity: Severity) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity() == severity)
            .count()
    }

    /// Total instructions across all verified functions.
    #[must_use]
    pub fn instructions(&self) -> usize {
        self.stats.values().map(|s| s.instructions).sum()
    }

    /// Total `cre`/`crd` instructions across all verified functions.
    #[must_use]
    pub fn crypto_ops(&self) -> usize {
        self.stats.values().map(|s| s.cre + s.crd).sum()
    }

    /// Sorts violations deterministically, deduplicates per
    /// `(kind, fingerprint)`, and assigns stable fingerprints.
    ///
    /// Idempotent; [`crate::verify`] calls it before returning, so reports
    /// are byte-stable across runs and usable as baselines.
    pub fn finalize(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.function, a.offset, a.kind, &a.detail).cmp(&(
                &b.function,
                b.offset,
                b.kind,
                &b.detail,
            ))
        });
        self.violations.dedup_by(|a, b| {
            a.kind == b.kind
                && a.function == b.function
                && a.offset == b.offset
                && a.detail == b.detail
        });
        let mut seen: BTreeMap<(ViolationKind, String, String, String), u64> = BTreeMap::new();
        for v in &mut self.violations {
            let key = (v.kind, v.function.clone(), v.insn.clone(), v.detail.clone());
            let occurrence = seen.entry(key).or_insert(0);
            v.fingerprint = fingerprint_of(v.kind, &v.function, &v.insn, &v.detail, *occurrence);
            *occurrence += 1;
        }
        self.skipped_data.sort();
        self.skipped_data.dedup();
    }

    /// Renders the report for humans: a verdict line, statistics, and one
    /// block per violation with its disassembly context.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "OK: {} function(s), {} instruction(s), {} crypto op(s), 0 violations\n",
                self.stats.len(),
                self.instructions(),
                self.crypto_ops()
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {} violation(s) across {} function(s)\n",
                self.violations.len(),
                self.stats.len()
            ));
            for v in &self.violations {
                out.push('\n');
                out.push_str(&v.to_string());
                out.push('\n');
                for line in &v.context {
                    let marker = if line.starts_with(&format!("{:#06x}:", v.offset)) {
                        "  > "
                    } else {
                        "    "
                    };
                    out.push_str(marker);
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        for name in &self.skipped_data {
            out.push_str(&format!("note: `{name}` skipped (data, not code)\n"));
        }
        out
    }

    /// Renders the report as a single JSON object.
    ///
    /// Schema: `{"clean": bool, "functions": N, "instructions": N,
    /// "crypto_ops": N, "errors": N, "warnings": N, "violations": [{"kind",
    /// "severity", "function", "offset", "insn", "detail", "fingerprint"}],
    /// "skipped_data": [..], "callgraph": {..}?}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"clean\":{},", self.is_clean()));
        out.push_str(&format!("\"functions\":{},", self.stats.len()));
        out.push_str(&format!("\"instructions\":{},", self.instructions()));
        out.push_str(&format!("\"crypto_ops\":{},", self.crypto_ops()));
        out.push_str(&format!(
            "\"errors\":{},",
            self.count_by_severity(Severity::Error)
        ));
        out.push_str(&format!(
            "\"warnings\":{},",
            self.count_by_severity(Severity::Warning)
        ));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"severity\":{},\"function\":{},\"offset\":{},\"insn\":{},\"detail\":{},\"fingerprint\":{}}}",
                json_str(v.kind.id()),
                json_str(v.severity().id()),
                json_str(&v.function),
                v.offset,
                json_str(&v.insn),
                json_str(&v.detail),
                json_str(&v.fingerprint)
            ));
        }
        out.push_str("],\"skipped_data\":[");
        for (i, name) in self.skipped_data.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(name));
        }
        out.push(']');
        if let Some(g) = self.graph {
            out.push_str(&format!(
                ",\"callgraph\":{{\"functions\":{},\"edges\":{},\"direct_calls\":{},\"resolved_indirect\":{},\"unresolved_indirect\":{},\"tail_calls\":{}}}",
                g.functions, g.edges, g.direct_calls, g.resolved_indirect, g.unresolved_indirect, g.tail_calls
            ));
        }
        out.push('}');
        out
    }
}

/// Renders one or more labeled reports as a SARIF 2.1.0-style document.
///
/// `runs` pairs an artifact label (e.g. `dhry2@full` or a file name) with
/// its report; all results land in a single SARIF run so the document is one
/// ratchetable unit. Fingerprints are emitted as the `regvault/v1` partial
/// fingerprint, which is what the baseline matches on.
#[must_use]
pub fn sarif_report(runs: &[(String, &Report)]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"regvault-verifier\",\"version\":",
    );
    out.push_str(&json_str(env!("CARGO_PKG_VERSION")));
    out.push_str(",\"rules\":[");
    for (i, kind) in ViolationKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"defaultConfiguration\":{{\"level\":{}}}}}",
            json_str(kind.id()),
            json_str(kind.severity().id())
        ));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for (label, report) in runs {
        for v in &report.violations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"byteOffset\":{}}}}},\"logicalLocations\":[{{\"name\":{}}}]}}],\"partialFingerprints\":{{\"regvault/v1\":{}}}}}",
                json_str(v.kind.id()),
                json_str(v.severity().id()),
                json_str(&format!("{} — {}", v.insn, v.detail)),
                json_str(label),
                v.offset,
                json_str(&v.function),
                json_str(&v.fingerprint)
            ));
        }
    }
    out.push_str("]}]}");
    out
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_violation() -> Violation {
        Violation {
            kind: ViolationKind::PlainSpill,
            function: "main".into(),
            offset: 0x40,
            insn: "sd t0, 0(t6)".into(),
            detail: "sensitive plaintext in t0 stored to stack".into(),
            context: vec!["0x0040: 005b3023  sd t0, 0(t6)".into()],
            fingerprint: String::new(),
        }
    }

    #[test]
    fn clean_report_renders_ok() {
        let mut report = Report::default();
        report.stats.insert(
            "main".into(),
            FnStats {
                instructions: 7,
                cre: 1,
                crd: 1,
            },
        );
        assert!(report.is_clean());
        assert!(!report.has_errors());
        assert!(report.render_human().starts_with("OK:"));
        assert!(report.render_json().contains("\"clean\":true"));
    }

    #[test]
    fn violation_renders_with_address_and_kind() {
        let mut report = Report::default();
        report.violations.push(sample_violation());
        report.finalize();
        let human = report.render_human();
        assert!(human.starts_with("FAIL:"));
        assert!(human.contains("0x0040"));
        assert!(human.contains("plain-spill"));
        let json = report.render_json();
        assert!(json.contains("\"kind\":\"plain-spill\""));
        assert!(json.contains("\"offset\":64"));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"fingerprint\":\""));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn severities_split_error_and_warning_kinds() {
        assert_eq!(ViolationKind::PlainSpill.severity(), Severity::Error);
        assert_eq!(ViolationKind::SpillGadget.severity(), Severity::Error);
        assert_eq!(ViolationKind::TweakDiversity.severity(), Severity::Warning);
        assert_eq!(ViolationKind::RawKeyFlow.severity(), Severity::Warning);
        // Warnings alone do not make a report "erroring".
        let mut report = Report::default();
        let mut v = sample_violation();
        v.kind = ViolationKind::TweakDiversity;
        report.violations.push(v);
        assert!(!report.is_clean());
        assert!(!report.has_errors());
        assert_eq!(report.count_by_severity(Severity::Warning), 1);
    }

    #[test]
    fn finalize_is_deterministic_and_dedups() {
        let mut a = Report::default();
        a.violations.push(sample_violation());
        a.violations.push(sample_violation()); // exact duplicate
        let mut other = sample_violation();
        other.offset = 0x10; // same shape at another site: kept, distinct fp
        a.violations.push(other);
        a.finalize();
        assert_eq!(a.violations.len(), 2);
        assert_eq!(a.violations[0].offset, 0x10);
        assert!(!a.violations[0].fingerprint.is_empty());
        assert_ne!(a.violations[0].fingerprint, a.violations[1].fingerprint);

        // Same content in reversed insertion order → identical rendering.
        let mut b = Report::default();
        let mut other = sample_violation();
        other.offset = 0x10;
        b.violations.push(other);
        b.violations.push(sample_violation());
        b.violations.push(sample_violation());
        b.finalize();
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn fingerprints_survive_code_motion() {
        // The same finding at a different offset keeps its fingerprint
        // (offsets are excluded from the hash).
        let mut a = Report::default();
        a.violations.push(sample_violation());
        a.finalize();
        let mut b = Report::default();
        let mut moved = sample_violation();
        moved.offset = 0x80;
        b.violations.push(moved);
        b.finalize();
        assert_eq!(a.violations[0].fingerprint, b.violations[0].fingerprint);
    }

    #[test]
    fn sarif_document_shape() {
        let mut report = Report::default();
        report.violations.push(sample_violation());
        report.finalize();
        let sarif = sarif_report(&[("img@full".to_owned(), &report)]);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"ruleId\":\"plain-spill\""));
        assert!(sarif.contains("\"uri\":\"img@full\""));
        assert!(sarif.contains("\"regvault/v1\""));
        assert!(sarif.contains("\"unprotected-spill-gadget\""));
    }
}
