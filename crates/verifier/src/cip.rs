//! Structural checker for chain-encrypted interrupt-frame saves (CIP,
//! §2.4.3 of the paper).
//!
//! A CIP save stub must encrypt register `i` with the *previous register's
//! plaintext* as tweak (the first tweak being the frame address), store the
//! ciphertexts to consecutive 8-byte slots, and close the chain with a
//! trailing encrypted zero. This module checks those rules *structurally*
//! over a linear instruction sequence: every `cre` must pair with the `sd`
//! that spills its result, slot offsets must be contiguous, tweaks must
//! chain, keys must agree, and the final plaintext must be `zero`.
//!
//! The repo's production trap path ([`regvault-kernel`]'s `save_context`)
//! runs in host Rust, so the checker is exercised against the reference
//! machine-code stub emitted by [`save_stub_asm`] — and against mutated
//! variants of it in the negative tests.

use regvault_isa::{Insn, KeyReg, Reg};

use crate::diag::ViolationKind;
use crate::taint::RawViolation;

/// One `cre` + `sd` pair of a chain save.
#[derive(Debug, Clone, Copy)]
struct Link {
    cre_offset: u64,
    key: KeyReg,
    plaintext: Reg,
    tweak: Reg,
    dst: Reg,
    store_offset: u64,
    store_base: Reg,
    store_disp: i64,
}

/// Checks the CIP chain discipline over `insns` (image offset + decoded
/// instruction, in program order). Returns the violations found.
///
/// `insns` should be the body of one save stub; instructions that are not
/// part of a `cre`/`sd` pair (address setup, the final `ret`) are ignored.
#[must_use]
pub fn check_chain(insns: &[(u64, Insn)]) -> Vec<RawViolation> {
    let mut violations = Vec::new();
    let mut links: Vec<Link> = Vec::new();
    let mut pending: Option<Link> = None;

    for &(offset, insn) in insns {
        match insn {
            Insn::Cre {
                key, rd, rs, rt, ..
            } => {
                if let Some(open) = pending.take() {
                    violations.push(RawViolation {
                        kind: ViolationKind::MalformedCipChain,
                        offset: open.cre_offset,
                        detail: "cre result is never stored to the frame".into(),
                    });
                }
                pending = Some(Link {
                    cre_offset: offset,
                    key,
                    plaintext: rs,
                    tweak: rt,
                    dst: rd,
                    store_offset: 0,
                    store_base: Reg::Zero,
                    store_disp: 0,
                });
            }
            Insn::Store {
                width: regvault_isa::MemWidth::Double,
                rs2,
                rs1,
                offset: disp,
            } => {
                if let Some(mut link) = pending.take() {
                    if rs2 == link.dst {
                        link.store_offset = offset;
                        link.store_base = rs1;
                        link.store_disp = i64::from(disp);
                        links.push(link);
                    } else {
                        pending = Some(link);
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(open) = pending {
        violations.push(RawViolation {
            kind: ViolationKind::MalformedCipChain,
            offset: open.cre_offset,
            detail: "cre result is never stored to the frame".into(),
        });
    }

    if links.is_empty() {
        violations.push(RawViolation {
            kind: ViolationKind::MalformedCipChain,
            offset: insns.first().map_or(0, |&(o, _)| o),
            detail: "no cre/sd chain links found in the save stub".into(),
        });
        return violations;
    }

    let first = links[0];
    if first.tweak != first.store_base {
        violations.push(RawViolation {
            kind: ViolationKind::MalformedCipChain,
            offset: first.cre_offset,
            detail: format!(
                "first chain tweak must be the frame base {} (spatial-substitution defense), found {}",
                first.store_base, first.tweak
            ),
        });
    }
    for window in links.windows(2) {
        let (prev, link) = (window[0], window[1]);
        if link.key != prev.key {
            violations.push(RawViolation {
                kind: ViolationKind::MalformedCipChain,
                offset: link.cre_offset,
                detail: format!(
                    "chain switches keys mid-frame (`{}` after `{}`)",
                    link.key, prev.key
                ),
            });
        }
        if link.tweak != prev.plaintext {
            violations.push(RawViolation {
                kind: ViolationKind::MalformedCipChain,
                offset: link.cre_offset,
                detail: format!(
                    "chain tweak must be the previous plaintext register {}, found {}",
                    prev.plaintext, link.tweak
                ),
            });
        }
        if link.store_base != prev.store_base || link.store_disp != prev.store_disp + 8 {
            violations.push(RawViolation {
                kind: ViolationKind::MalformedCipChain,
                offset: link.store_offset,
                detail: "chain slots are not contiguous 8-byte frame offsets".into(),
            });
        }
    }
    let last = *links.last().expect("non-empty");
    if last.plaintext != Reg::Zero {
        violations.push(RawViolation {
            kind: ViolationKind::MalformedCipChain,
            offset: last.cre_offset,
            detail: "chain is missing the trailing encrypted integrity zero".into(),
        });
    }

    violations
}

/// Emits the reference CIP save stub as assembly: chains `x1`–`x31` into the
/// frame whose base address is in `a0`, closes with an encrypted zero, and
/// returns.
///
/// Note the scratch-register caveat: the stub uses `t6` to stage each
/// ciphertext, so the slot nominally saving `t6` (x31) saves a clobbered
/// value — acceptable for a *structural* reference (the production save path
/// lives in the kernel, which snapshots the register file first).
#[must_use]
pub fn save_stub_asm(label: &str, key: KeyReg) -> String {
    let mut out = String::new();
    out.push_str(&format!("{label}:\n"));
    let mut tweak = "a0".to_owned();
    for i in 1..32u8 {
        let reg = Reg::from_index(i).expect("x1..x31");
        out.push_str(&format!("cre{key}k t6, {reg}[7:0], {tweak}\n"));
        out.push_str(&format!("sd t6, {}(a0)\n", 8 * (u32::from(i) - 1)));
        tweak = reg.name().to_owned();
    }
    out.push_str(&format!("cre{key}k t6, zero[7:0], {tweak}\n"));
    out.push_str(&format!("sd t6, {}(a0)\n", 8 * 31));
    out.push_str("ret\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::asm::assemble;
    use regvault_isa::decode::decode;

    fn decoded(src: &str) -> Vec<(u64, Insn)> {
        let program = assemble(src).unwrap();
        program
            .words()
            .iter()
            .enumerate()
            .map(|(i, &w)| ((i * 4) as u64, decode(w).unwrap()))
            .collect()
    }

    #[test]
    fn reference_stub_passes() {
        let stub = save_stub_asm("cip_save", KeyReg::C);
        let violations = check_chain(&decoded(&stub));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn wrong_first_tweak_is_flagged() {
        let v = check_chain(&decoded(
            "creck t6, ra[7:0], t0
             sd t6, 0(a0)
             creck t6, zero[7:0], ra
             sd t6, 8(a0)",
        ));
        assert!(
            v.iter().any(|r| r.detail.contains("first chain tweak")),
            "{v:?}"
        );
    }

    #[test]
    fn broken_tweak_chaining_is_flagged() {
        // Second link's tweak must be ra (previous plaintext), not sp.
        let v = check_chain(&decoded(
            "creck t6, ra[7:0], a0
             sd t6, 0(a0)
             creck t6, gp[7:0], sp
             sd t6, 8(a0)
             creck t6, zero[7:0], gp
             sd t6, 16(a0)",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].offset, 8);
        assert!(v[0].detail.contains("previous plaintext"));
    }

    #[test]
    fn missing_trailing_zero_is_flagged() {
        let v = check_chain(&decoded(
            "creck t6, ra[7:0], a0
             sd t6, 0(a0)
             creck t6, gp[7:0], ra
             sd t6, 8(a0)",
        ));
        assert!(v
            .iter()
            .any(|r| r.detail.contains("trailing encrypted integrity zero")));
    }

    #[test]
    fn non_contiguous_slots_are_flagged() {
        let v = check_chain(&decoded(
            "creck t6, ra[7:0], a0
             sd t6, 0(a0)
             creck t6, zero[7:0], ra
             sd t6, 16(a0)",
        ));
        assert!(v.iter().any(|r| r.detail.contains("contiguous")));
    }

    #[test]
    fn mixed_keys_are_flagged() {
        let v = check_chain(&decoded(
            "creck t6, ra[7:0], a0
             sd t6, 0(a0)
             credk t6, zero[7:0], ra
             sd t6, 8(a0)",
        ));
        assert!(v.iter().any(|r| r.detail.contains("switches keys")));
    }
}
