//! The abstract-interpretation core: a may-hold-plaintext taint dataflow
//! over a reconstructed CFG.
//!
//! # Lattice
//!
//! Each register and each abstract stack slot holds one [`Val`]:
//!
//! ```text
//!            Plain                 (may hold sensitive plaintext — top)
//!              |
//!             Key                  (may hold raw key material)
//!              |
//!           Unknown                (derived / untracked)
//!          /   |    \
//!   Const(k) Loc(a) Cipher{key,tweak}
//! ```
//!
//! `Plain` absorbs everything (a value that *may* be sensitive plaintext
//! stays so under join); `Key` absorbs everything except `Plain`; unequal
//! constants/locations collapse to `Unknown`; two ciphers join field-wise
//! (mismatched key or tweak becomes unknown). Chains are bounded, so the
//! worklist fixpoint terminates.
//!
//! # Seeding
//!
//! `Plain` enters the state from destinations of `crd[x]k` (a decrypt
//! *produces* sensitive plaintext by definition) and the registers listed in
//! the compiler's protection manifest as sensitive at function entry. `Key`
//! enters from loads of manifest-declared key-material symbols. ALU results
//! with a `Plain` (or `Key`) operand stay tainted.
//!
//! # Interprocedural mode
//!
//! [`analyze_full`] optionally takes a [`CallEnv`] mapping resolved call
//! sites to per-callee [`FnSummary`] facts. With an environment, resolved
//! calls are modelled by their callee's summary (argument spills flagged at
//! the call site, decrypted returns propagated into `a0`, callee-saved
//! registers preserved) instead of the conservative clobber model; the
//! analysis additionally records an [`Event`] stream (crypto sites, calls,
//! returns, raw saves, key flows) consumed by summary construction and the
//! lint passes in [`crate::lints`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use regvault_isa::abi::{ARG_REGS, CALLEE_SAVED, CALLER_SAVED};
use regvault_isa::{AluOp, Insn, KeyReg, Reg};

use crate::cfg::Cfg;
use crate::diag::ViolationKind;
use crate::summary::FnSummary;

/// Symbolic base of an abstract address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Base {
    /// The function's entry stack pointer.
    Sp,
    /// The image itself: `pc`-relative addresses (`auipc`/`la`) resolve to
    /// concrete image byte offsets, comparable across functions.
    Image,
    /// An opaque value identity (entry register or instruction definition).
    Id(u64),
}

/// An abstract address: a symbolic base plus a concrete byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Addr {
    /// Symbolic base.
    pub base: Base,
    /// Byte offset from the base.
    pub off: i64,
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.base {
            Base::Sp => write!(f, "sp{:+#x}", self.off),
            Base::Image => write!(f, "image+{:#x}", self.off),
            Base::Id(id) => write!(f, "v{id}{:+#x}", self.off),
        }
    }
}

/// What the dataflow knows about a cipher value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CipherInfo {
    /// The key register used by the producing `cre`, when unique.
    pub key: Option<KeyReg>,
    /// The tweak address of the producing `cre`, when unique and symbolic.
    pub tweak: Option<Addr>,
}

/// The abstract value lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Val {
    /// Nothing tracked.
    Unknown,
    /// A known constant.
    Const(i64),
    /// A symbolic location/identity (address arithmetic stays precise).
    Loc(Addr),
    /// May hold raw key material (loaded from a key-storage symbol).
    Key,
    /// May hold sensitive plaintext.
    Plain,
    /// Ciphertext produced by a `cre`.
    Cipher(CipherInfo),
}

impl Val {
    /// Lattice join: `Plain` absorbs, `Key` absorbs everything but `Plain`,
    /// mismatches widen to `Unknown`.
    #[must_use]
    pub fn join(self, other: Val) -> Val {
        if self == other {
            return self;
        }
        match (self, other) {
            (Val::Plain, _) | (_, Val::Plain) => Val::Plain,
            (Val::Key, _) | (_, Val::Key) => Val::Key,
            (Val::Cipher(a), Val::Cipher(b)) => Val::Cipher(CipherInfo {
                key: if a.key == b.key { a.key } else { None },
                tweak: if a.tweak == b.tweak { a.tweak } else { None },
            }),
            _ => Val::Unknown,
        }
    }
}

/// The abstract machine state: 32 registers plus entry-sp-relative stack
/// slots (8-byte granularity, keyed by byte offset from the entry `sp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Register file values, indexed by hardware register number.
    pub regs: [Val; 32],
    /// Stack slots, keyed by offset from the entry stack pointer.
    pub slots: BTreeMap<i64, Val>,
}

impl State {
    /// The function-entry state: `sp` is the symbolic stack base, `zero` is
    /// zero, every other register is an opaque entry identity — except the
    /// manifest-declared sensitive entry registers, which start `Plain`.
    #[must_use]
    pub fn entry(entry_sensitive: &[Reg]) -> State {
        let mut regs = [Val::Unknown; 32];
        for reg in Reg::ALL {
            let i = reg.index() as usize;
            regs[i] = match reg {
                Reg::Zero => Val::Const(0),
                Reg::Sp => Val::Loc(Addr {
                    base: Base::Sp,
                    off: 0,
                }),
                _ => entry_val(reg),
            };
        }
        for &reg in entry_sensitive {
            if reg != Reg::Zero {
                regs[reg.index() as usize] = Val::Plain;
            }
        }
        State {
            regs,
            slots: BTreeMap::new(),
        }
    }

    /// Joins `other` into `self`; returns `true` if anything changed.
    pub fn join_in_place(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let joined = self.regs[i].join(other.regs[i]);
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        // A slot missing on either side joins as Unknown; drop it (Unknown
        // is the implicit default) to keep the maps small.
        let keys: BTreeSet<i64> = self
            .slots
            .keys()
            .chain(other.slots.keys())
            .copied()
            .collect();
        for key in keys {
            let a = self.slots.get(&key).copied().unwrap_or(Val::Unknown);
            let b = other.slots.get(&key).copied().unwrap_or(Val::Unknown);
            let joined = a.join(b);
            let prev = if joined == Val::Unknown {
                self.slots.remove(&key).unwrap_or(Val::Unknown)
            } else {
                self.slots.insert(key, joined).unwrap_or(Val::Unknown)
            };
            changed |= prev != joined;
        }
        changed
    }

    fn get(&self, reg: Reg) -> Val {
        self.regs[reg.index() as usize]
    }

    fn set(&mut self, reg: Reg, val: Val) {
        if reg != Reg::Zero {
            self.regs[reg.index() as usize] = val;
        }
    }
}

/// Tag separating entry-register identities from instruction-definition
/// identities (`(offset << 6) | rd` stays below bit 40 for any real image).
const ENTRY_ID_TAG: u64 = 1 << 40;

/// The opaque entry identity of `reg` (what the register held on entry).
fn entry_val(reg: Reg) -> Val {
    Val::Loc(Addr {
        base: Base::Id(ENTRY_ID_TAG + u64::from(reg.index())),
        off: 0,
    })
}

fn def_id(offset: u64, rd: Reg) -> u64 {
    (offset << 6) | u64::from(rd.index())
}

fn fresh(offset: u64, rd: Reg) -> Val {
    Val::Loc(Addr {
        base: Base::Id(def_id(offset, rd)),
        off: 0,
    })
}

/// The effective address of a `offset(rs1)` memory operand, when symbolic.
fn mem_addr(state: &State, rs1: Reg, offset: i32) -> Option<Addr> {
    match state.get(rs1) {
        Val::Loc(a) => Some(Addr {
            base: a.base,
            off: a.off + i64::from(offset),
        }),
        _ => None,
    }
}

/// A violation found by the dataflow, before diagnostics are attached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawViolation {
    /// Invariant broken.
    pub kind: ViolationKind,
    /// Image byte offset of the offending instruction.
    pub offset: u64,
    /// Explanation.
    pub detail: String,
}

/// Dataflow configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaintOptions {
    /// Also flag `Plain` stores to *non-stack* memory. Off by default:
    /// programs legitimately store decrypted values to unprotected globals
    /// (the sensitivity boundary is the annotation, not the value's
    /// history), but compiler-internal traffic never should.
    pub strict: bool,
    /// Enforce the storage-address tweak discipline (ciphertext must be
    /// stored at — and decrypted under — its encryption tweak). On by
    /// default; disabled for CIP save stubs, whose tweaks deliberately
    /// chain over the previous *plaintext* instead (§2.4.3).
    pub tweak_discipline: bool,
    /// Seed `Plain` from `crd` destinations. On by default; the compiler
    /// gate turns it off for configurations without spill protection, where
    /// "decrypted values never hit memory unencrypted" is not promised.
    pub decrypt_taints: bool,
}

impl Default for TaintOptions {
    fn default() -> Self {
        TaintOptions {
            strict: false,
            tweak_discipline: true,
            decrypt_taints: true,
        }
    }
}

/// How a `cre` tweak value is identified for diversity analysis: either a
/// symbolic address or a known constant. Tweaks the dataflow cannot pin down
/// are absent from the [`Event::Cre`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TweakId {
    /// A symbolic address (stack slot, image offset, or opaque identity).
    Addr(Addr),
    /// A known constant tweak value.
    Const(i64),
}

impl std::fmt::Display for TweakId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TweakId::Addr(a) => write!(f, "{a}"),
            TweakId::Const(c) => write!(f, "{c:#x}"),
        }
    }
}

/// A semantic fact recorded while the fixpoint runs, consumed by summary
/// construction ([`crate::summary`]) and the lint passes ([`crate::lints`]).
///
/// Events are keyed by instruction offset; re-visits during the fixpoint
/// overwrite, so the recorded event reflects the final (widest) in-state of
/// its block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A `cre` site: what was encrypted, under which key and tweak.
    Cre {
        /// Image byte offset of the `cre`.
        offset: u64,
        /// Key register used.
        key: KeyReg,
        /// Identified tweak value, when the dataflow pinned it down.
        tweak: Option<TweakId>,
        /// Abstract value of the plaintext operand.
        plain: Val,
        /// `true` when the site sits in a CFG cycle (loop body).
        in_loop: bool,
    },
    /// A call site (including tail calls), with argument/register taint.
    Call {
        /// Image byte offset of the call instruction.
        offset: u64,
        /// Statically known target image offset (`jal`, or `jalr` through a
        /// resolved `la` address), if any.
        target: Option<u64>,
        /// `true` for `jalr`-based (indirect) calls.
        indirect: bool,
        /// `true` for tail calls (`jal zero` out of the extent, `jr`).
        tail: bool,
        /// Bit `i` set when argument register `a<i>` may hold plaintext.
        plain_args: u8,
        /// Bit `i` set when argument register `a<i>` may hold key material.
        key_args: u8,
        /// Bit per [`CALLEE_SAVED`] index: register may hold plaintext.
        plain_callee_saved: u16,
        /// Bit per [`CALLEE_SAVED`] index: register still holds its
        /// function-entry value (i.e. the caller's live value).
        entry_callee_saved: u16,
    },
    /// A function return (`ret`), with the abstract return value.
    Ret {
        /// Image byte offset of the `ret`.
        offset: u64,
        /// `a0` may hold sensitive plaintext.
        a0_plain: bool,
        /// `a0` may hold raw key material.
        a0_key: bool,
    },
    /// A store of a callee-saved register's *entry value* to memory without
    /// a wrapping `cre` — harmless locally, but a spill gadget if some
    /// caller keeps plaintext in that register across the call.
    PlainSave {
        /// Image byte offset of the store.
        offset: u64,
        /// The callee-saved register whose entry value is saved raw.
        reg: Reg,
    },
    /// A load from a manifest-declared key-storage symbol into a GPR.
    KeyLoad {
        /// Image byte offset of the load.
        offset: u64,
        /// Destination register now holding raw key material.
        rd: Reg,
    },
    /// A store of raw key material to memory without a wrapping `cre`.
    KeyStore {
        /// Image byte offset of the store.
        offset: u64,
        /// Source register holding the key material.
        rs2: Reg,
    },
}

impl Event {
    /// The image offset the event is anchored to.
    #[must_use]
    pub fn offset(&self) -> u64 {
        match *self {
            Event::Cre { offset, .. }
            | Event::Call { offset, .. }
            | Event::Ret { offset, .. }
            | Event::PlainSave { offset, .. }
            | Event::KeyLoad { offset, .. }
            | Event::KeyStore { offset, .. } => offset,
        }
    }
}

/// Interprocedural environment: resolved call targets plus the current
/// per-function summaries, applied at call sites instead of the conservative
/// clobber model.
#[derive(Debug, Clone, Copy)]
pub struct CallEnv<'a> {
    /// Call-site image offset → resolved callee symbol.
    pub targets: &'a BTreeMap<u64, String>,
    /// Callee symbol → taint summary.
    pub summaries: &'a BTreeMap<String, FnSummary>,
}

/// The full result of one dataflow run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Violations found, sorted and deduplicated.
    pub violations: Vec<RawViolation>,
    /// Semantic events in offset order.
    pub events: Vec<Event>,
}

/// Runs the worklist fixpoint over `cfg` and returns the violations.
///
/// `entry_sensitive` seeds `Plain` into the entry state (see [`State::entry`]).
/// Intraprocedural compatibility wrapper over [`analyze_full`].
#[must_use]
pub fn analyze(cfg: &Cfg, entry_sensitive: &[Reg], options: TaintOptions) -> Vec<RawViolation> {
    analyze_full(cfg, entry_sensitive, options, &[], None).violations
}

/// The bit of `reg` within [`CALLEE_SAVED`] bitmasks (`sp` excluded), as
/// used by [`Event::Call`] and [`FnSummary::plain_saves`].
#[must_use]
pub fn callee_saved_bit(reg: Reg) -> Option<u16> {
    if reg == Reg::Sp {
        return None;
    }
    CALLEE_SAVED
        .iter()
        .position(|&r| r == reg)
        .map(|i| 1u16 << i)
}

/// Per-run mutable context threaded through the transfer function.
struct Ctx<'a> {
    options: TaintOptions,
    key_regions: &'a [(u64, u64)],
    env: Option<&'a CallEnv<'a>>,
    extent: (u64, u64),
    in_loop: bool,
    violations: BTreeSet<RawViolation>,
    events: BTreeMap<(u64, u8, u8), Event>,
}

impl Ctx<'_> {
    fn record(&mut self, tag: u8, aux: u8, event: Event) {
        self.events.insert((event.offset(), tag, aux), event);
    }

    fn in_key_region(&self, off: i64) -> bool {
        u64::try_from(off).is_ok_and(|o| self.key_regions.iter().any(|&(s, e)| o >= s && o < e))
    }
}

/// Runs the worklist fixpoint over `cfg`, returning violations *and* the
/// event stream.
///
/// `key_regions` are `[start, end)` image extents of key-material symbols
/// (loads from them produce [`Val::Key`]); `env`, when present, switches
/// resolved call sites from the conservative clobber model to summary
/// application.
#[must_use]
pub fn analyze_full(
    cfg: &Cfg,
    entry_sensitive: &[Reg],
    options: TaintOptions,
    key_regions: &[(u64, u64)],
    env: Option<&CallEnv<'_>>,
) -> Analysis {
    let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
    if cfg.blocks.is_empty() {
        return Analysis::default();
    }
    let offsets: Vec<u64> = cfg
        .blocks
        .iter()
        .flat_map(|b| b.insns.iter().map(|&(at, _)| at))
        .collect();
    let extent = (
        offsets.iter().copied().min().unwrap_or(0),
        offsets.iter().copied().max().map_or(0, |hi| hi + 4),
    );
    let cyclic = crate::cfg::cyclic_blocks(cfg);
    let mut ctx = Ctx {
        options,
        key_regions,
        env,
        extent,
        in_loop: false,
        violations: BTreeSet::new(),
        events: BTreeMap::new(),
    };
    in_states[0] = Some(State::entry(entry_sensitive));

    let mut worklist: VecDeque<usize> = VecDeque::new();
    worklist.push_back(0);
    let mut queued = vec![false; cfg.blocks.len()];
    queued[0] = true;

    while let Some(idx) = worklist.pop_front() {
        queued[idx] = false;
        let Some(mut state) = in_states[idx].clone() else {
            continue;
        };
        ctx.in_loop = cyclic[idx];
        for &(offset, ref insn) in &cfg.blocks[idx].insns {
            transfer(&mut state, offset, insn, &mut ctx);
        }
        for &succ in &cfg.blocks[idx].succs {
            let changed = match in_states[succ].as_mut() {
                Some(existing) => existing.join_in_place(&state),
                None => {
                    in_states[succ] = Some(state.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                worklist.push_back(succ);
            }
        }
    }

    Analysis {
        violations: ctx.violations.into_iter().collect(),
        events: ctx.events.into_values().collect(),
    }
}

/// ALU transfer for two abstract operands.
fn alu(op: AluOp, a: Val, b: Val) -> Val {
    // Taint propagation dominates: any Plain operand keeps the result Plain
    // (mirrors the compiler's forward propagation through arithmetic), and
    // any Key operand keeps it Key — a value derived from key material is
    // still key material.
    if a == Val::Plain || b == Val::Plain {
        return Val::Plain;
    }
    if a == Val::Key || b == Val::Key {
        return Val::Key;
    }
    match (op, a, b) {
        (AluOp::Add, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_add(y)),
        (AluOp::Sub, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_sub(y)),
        (AluOp::Add, Val::Loc(l), Val::Const(c)) | (AluOp::Add, Val::Const(c), Val::Loc(l)) => {
            Val::Loc(Addr {
                base: l.base,
                off: l.off.wrapping_add(c),
            })
        }
        (AluOp::Sub, Val::Loc(l), Val::Const(c)) => Val::Loc(Addr {
            base: l.base,
            off: l.off.wrapping_sub(c),
        }),
        (AluOp::Xor, Val::Const(x), Val::Const(y)) => Val::Const(x ^ y),
        (AluOp::Or, Val::Const(x), Val::Const(y)) => Val::Const(x | y),
        (AluOp::And, Val::Const(x), Val::Const(y)) => Val::Const(x & y),
        (AluOp::Sll, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_shl(y as u32 & 63)),
        _ => Val::Unknown,
    }
}

/// Narrows an ALU result to 32-bit semantics (`opw`/`opimmw`).
fn narrow(v: Val) -> Val {
    match v {
        Val::Plain => Val::Plain,
        Val::Key => Val::Key,
        Val::Const(c) => Val::Const(i64::from(c as i32)),
        _ => Val::Unknown,
    }
}

/// The abstract transfer function for one instruction.
fn transfer(state: &mut State, offset: u64, insn: &Insn, ctx: &mut Ctx<'_>) {
    match *insn {
        Insn::Lui { rd, imm20 } => {
            state.set(rd, Val::Const(i64::from(imm20) << 12));
        }
        Insn::Auipc { rd, imm20 } => {
            // pc-relative addresses resolve to concrete image offsets: the
            // runtime load base cancels out of `auipc`+offset arithmetic, so
            // the image frame is exact regardless of where the image loads.
            state.set(
                rd,
                Val::Loc(Addr {
                    base: Base::Image,
                    off: offset as i64 + (i64::from(imm20) << 12),
                }),
            );
        }
        Insn::OpImm { op, rd, rs1, imm } => {
            let v = alu(op, state.get(rs1), Val::Const(i64::from(imm)));
            state.set(rd, v);
        }
        Insn::OpImmW { op, rd, rs1, imm } => {
            let v = narrow(alu(op, state.get(rs1), Val::Const(i64::from(imm))));
            state.set(rd, v);
        }
        Insn::Op { op, rd, rs1, rs2 } => {
            let v = alu(op, state.get(rs1), state.get(rs2));
            state.set(rd, v);
        }
        Insn::OpW { op, rd, rs1, rs2 } => {
            let v = narrow(alu(op, state.get(rs1), state.get(rs2)));
            state.set(rd, v);
        }
        Insn::Load {
            width,
            rd,
            rs1,
            offset: mem_off,
            ..
        } => {
            let v = match mem_addr(state, rs1, mem_off) {
                Some(Addr {
                    base: Base::Sp,
                    off,
                }) => {
                    let slot = state.slots.get(&off).copied().unwrap_or(Val::Unknown);
                    if width == regvault_isa::MemWidth::Double {
                        slot
                    } else if slot == Val::Plain || slot == Val::Key {
                        // A partial read of plaintext (or key bytes) is
                        // still tainted.
                        slot
                    } else {
                        Val::Unknown
                    }
                }
                Some(Addr {
                    base: Base::Image,
                    off,
                }) if ctx.in_key_region(off) => {
                    ctx.record(4, rd.index(), Event::KeyLoad { offset, rd });
                    Val::Key
                }
                _ => fresh(offset, rd),
            };
            state.set(rd, v);
        }
        Insn::Store {
            width,
            rs2,
            rs1,
            offset: mem_off,
        } => {
            let value = state.get(rs2);
            let addr = mem_addr(state, rs1, mem_off);
            match (value, addr) {
                (Val::Plain, Some(Addr { base: Base::Sp, .. })) => {
                    ctx.violations.insert(RawViolation {
                        kind: ViolationKind::PlainSpill,
                        offset,
                        detail: format!(
                            "sensitive plaintext in {rs2} stored to a stack slot without a wrapping cre"
                        ),
                    });
                }
                (Val::Plain, _) if ctx.options.strict => {
                    ctx.violations.insert(RawViolation {
                        kind: ViolationKind::PlainStore,
                        offset,
                        detail: format!(
                            "sensitive plaintext in {rs2} stored to memory without a wrapping cre (strict)"
                        ),
                    });
                }
                (Val::Cipher(info), Some(at)) => {
                    if let Some(tweak) = info.tweak {
                        // A ciphertext produced under a non-stack tweak may
                        // be *spilled* to the stack (it is protected data —
                        // copies are safe); every other mismatch breaks the
                        // storage-address tweak discipline.
                        let benign_spill = at.base == Base::Sp && tweak.base != Base::Sp;
                        if ctx.options.tweak_discipline && tweak != at && !benign_spill {
                            ctx.violations.insert(RawViolation {
                                kind: ViolationKind::TweakMismatch,
                                offset,
                                detail: format!(
                                    "ciphertext in {rs2} stored to an address that is not its encryption tweak (storage-address tweak discipline)"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
            if value == Val::Key {
                ctx.record(5, rs2.index(), Event::KeyStore { offset, rs2 });
            }
            // An unencrypted save of a callee-saved register's entry value:
            // benign here, but a spill gadget for any caller that keeps
            // plaintext in that register across the call.
            if width == regvault_isa::MemWidth::Double {
                if let Val::Loc(Addr {
                    base: Base::Id(id),
                    off: 0,
                }) = value
                {
                    if let Some(idx) = id.checked_sub(ENTRY_ID_TAG) {
                        if let Some(reg) = u8::try_from(idx).ok().and_then(Reg::from_index) {
                            if callee_saved_bit(reg).is_some() {
                                ctx.record(3, reg.index(), Event::PlainSave { offset, reg });
                            }
                        }
                    }
                }
            }
            if let Some(Addr {
                base: Base::Sp,
                off,
            }) = addr
            {
                if width == regvault_isa::MemWidth::Double {
                    if value == Val::Unknown {
                        state.slots.remove(&off);
                    } else {
                        state.slots.insert(off, value);
                    }
                } else {
                    // Partial overwrite: the 8-byte slot is no longer tracked,
                    // unless plaintext is (partially) landing in it.
                    if value == Val::Plain {
                        state.slots.insert(off, Val::Plain);
                    } else {
                        state.slots.remove(&off);
                    }
                }
            }
        }
        Insn::Cre {
            key, rd, rs, rt, ..
        } => {
            let tweak = match state.get(rt) {
                Val::Loc(a) => Some(a),
                _ => None,
            };
            let tweak_id = match state.get(rt) {
                Val::Loc(a) => Some(TweakId::Addr(a)),
                Val::Const(c) => Some(TweakId::Const(c)),
                _ => None,
            };
            ctx.record(
                0,
                0,
                Event::Cre {
                    offset,
                    key,
                    tweak: tweak_id,
                    plain: state.get(rs),
                    in_loop: ctx.in_loop,
                },
            );
            state.set(
                rd,
                Val::Cipher(CipherInfo {
                    key: Some(key),
                    tweak,
                }),
            );
        }
        Insn::Crd {
            key, rd, rs, rt, ..
        } => {
            if let Val::Cipher(info) = state.get(rs) {
                if let Some(cre_key) = info.key {
                    if cre_key != key {
                        ctx.violations.insert(RawViolation {
                            kind: ViolationKind::KeyMismatch,
                            offset,
                            detail: format!(
                                "crd uses key `{key}` but the ciphertext in {rs} was produced under key `{cre_key}`"
                            ),
                        });
                    }
                }
                if let Some(cre_tweak) = info.tweak {
                    // A tweak register holding a known non-address (a
                    // constant or decrypted plaintext) can never equal the
                    // recorded address tweak; only a lost address (Unknown)
                    // is given the benefit of the doubt.
                    let mismatch = match state.get(rt) {
                        Val::Loc(here) => cre_tweak != here,
                        Val::Const(_) | Val::Plain | Val::Key => true,
                        Val::Unknown | Val::Cipher(_) => false,
                    };
                    if ctx.options.tweak_discipline && mismatch {
                        ctx.violations.insert(RawViolation {
                            kind: ViolationKind::TweakMismatch,
                            offset,
                            detail: format!(
                                "crd tweak in {rt} differs from the tweak the ciphertext in {rs} was encrypted under"
                            ),
                        });
                    }
                }
            }
            // A decrypt produces sensitive plaintext by definition.
            state.set(
                rd,
                if ctx.options.decrypt_taints {
                    Val::Plain
                } else {
                    fresh(offset, rd)
                },
            );
        }
        Insn::Jal { rd, offset: delta } => {
            let target = u64::try_from(offset as i64 + i64::from(delta)).ok();
            if rd != Reg::Zero {
                handle_call(state, offset, target, false, false, ctx);
                state.set(rd, fresh(offset, rd));
            } else if target.is_none_or(|t| t < ctx.extent.0 || t >= ctx.extent.1) {
                // `jal zero` leaving the function extent: a direct tail call.
                handle_call(state, offset, target, false, true, ctx);
            }
        }
        Insn::Jalr {
            rd,
            rs1,
            offset: imm,
        } => {
            let target = match state.get(rs1) {
                Val::Loc(Addr {
                    base: Base::Image,
                    off,
                }) => u64::try_from(off + i64::from(imm)).ok(),
                _ => None,
            };
            if rd != Reg::Zero {
                handle_call(state, offset, target, true, false, ctx);
                state.set(rd, fresh(offset, rd));
            } else if rs1 == Reg::Ra && imm == 0 {
                ctx.record(
                    2,
                    0,
                    Event::Ret {
                        offset,
                        a0_plain: state.get(Reg::A0) == Val::Plain,
                        a0_key: state.get(Reg::A0) == Val::Key,
                    },
                );
            } else {
                // `jr rs` through a non-ra register: an indirect tail call.
                handle_call(state, offset, target, true, true, ctx);
            }
        }
        Insn::Branch { .. } => {}
        Insn::Csr { rd, .. } | Insn::CsrImm { rd, .. } => state.set(rd, fresh(offset, rd)),
        Insn::Ecall => {
            // Kernel syscall contract (see codegen): every register except
            // the a0 result is preserved; no register is spilled by the
            // guest at this boundary.
            state.set(Reg::A0, fresh(offset, Reg::A0));
        }
        Insn::Ebreak | Insn::Mret | Insn::Sret | Insn::Wfi | Insn::Fence => {}
    }
}

/// Models a call site: records the [`Event::Call`], then either applies the
/// resolved callee's summary (interprocedural mode) or falls back to the
/// conservative clobber model — flag sensitive plaintext left in callee-saved
/// registers (the callee may spill them unencrypted — §2.4.4's cross-call
/// hazard) and clobber the caller-saved file.
fn handle_call(
    state: &mut State,
    offset: u64,
    target: Option<u64>,
    indirect: bool,
    tail: bool,
    ctx: &mut Ctx<'_>,
) {
    let mut plain_args = 0u8;
    let mut key_args = 0u8;
    for (i, &reg) in ARG_REGS.iter().enumerate() {
        match state.get(reg) {
            Val::Plain => plain_args |= 1 << i,
            Val::Key => key_args |= 1 << i,
            _ => {}
        }
    }
    let mut plain_callee_saved = 0u16;
    let mut entry_callee_saved = 0u16;
    for &reg in &CALLEE_SAVED {
        let Some(bit) = callee_saved_bit(reg) else {
            continue;
        };
        if state.get(reg) == Val::Plain {
            plain_callee_saved |= bit;
        }
        if state.get(reg) == entry_val(reg) {
            entry_callee_saved |= bit;
        }
    }
    ctx.record(
        1,
        0,
        Event::Call {
            offset,
            target,
            indirect,
            tail,
            plain_args,
            key_args,
            plain_callee_saved,
            entry_callee_saved,
        },
    );

    let resolved = ctx.env.and_then(|env| {
        env.targets
            .get(&offset)
            .and_then(|name| env.summaries.get(name).map(|s| (name.as_str(), *s)))
    });
    if let Some((callee, summary)) = resolved {
        // Summary application: flag plaintext arguments the callee spills
        // unencrypted, propagate decrypted/key returns, and trust the ABI
        // for callee-saved registers (the spill-gadget lint audits the
        // callee's actual save behaviour separately).
        for (i, &reg) in ARG_REGS.iter().enumerate() {
            if plain_args & (1 << i) != 0 && summary.arg_spills & (1 << i) != 0 {
                ctx.violations.insert(RawViolation {
                    kind: ViolationKind::PlainSpill,
                    offset,
                    detail: format!(
                        "sensitive plaintext argument in {reg} is spilled unencrypted inside callee `{callee}`"
                    ),
                });
            }
        }
        if tail {
            return;
        }
        let returns_plain = summary.returns_plain
            || (0..8)
                .any(|i| plain_args & (1 << i) != 0 && summary.arg_returns_plain & (1 << i) != 0);
        for reg in CALLER_SAVED {
            state.set(reg, fresh(offset, reg));
        }
        if returns_plain {
            state.set(Reg::A0, Val::Plain);
        } else if summary.returns_key {
            state.set(Reg::A0, Val::Key);
        }
    } else if !tail {
        for reg in CALLEE_SAVED {
            if reg == Reg::Sp {
                continue;
            }
            if state.get(reg) == Val::Plain {
                ctx.violations.insert(RawViolation {
                    kind: ViolationKind::SensitiveAcrossCall,
                    offset,
                    detail: format!(
                        "sensitive plaintext live in callee-saved {reg} across a call (callee may spill it unencrypted)"
                    ),
                });
            }
        }
        for reg in CALLER_SAVED {
            state.set(reg, fresh(offset, reg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, FuncRegion};
    use regvault_isa::asm::assemble;

    fn analyze_asm(src: &str, entry_sensitive: &[Reg], strict: bool) -> Vec<RawViolation> {
        let program = assemble(src).unwrap();
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end: program.bytes().len() as u64,
        };
        let cfg = build(program.bytes(), &region).unwrap();
        analyze(
            &cfg,
            entry_sensitive,
            TaintOptions {
                strict,
                ..TaintOptions::default()
            },
        )
    }

    #[test]
    fn wrapped_ra_save_restore_is_clean() {
        // The codegen prologue/epilogue shape for protect_ra.
        let v = analyze_asm(
            "addi sp, sp, -16
             creak ra, ra[7:0], sp
             sd ra, 0(sp)
             addi a0, zero, 7
             ld ra, 0(sp)
             crdak ra, ra, sp, [7:0]
             addi sp, sp, 16
             ret",
            &[Reg::Ra],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrapped_ra_save_is_a_plain_spill() {
        let v = analyze_asm(
            "addi sp, sp, -16
             sd ra, 0(sp)
             ld ra, 0(sp)
             addi sp, sp, 16
             ret",
            &[Reg::Ra],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::PlainSpill);
        assert_eq!(v[0].offset, 4);
    }

    #[test]
    fn crd_destination_becomes_plain() {
        // Decrypt then spill unencrypted: must be flagged at the sd.
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             sd a0, 8(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::PlainSpill);
        assert_eq!(v[0].offset, 8);
    }

    #[test]
    fn taint_propagates_through_alu() {
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             addi a1, a0, 5
             add a2, a1, a1
             sd a2, 0(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].offset, 16);
    }

    #[test]
    fn spill_wrap_is_clean_and_key_mismatch_is_flagged() {
        // Wrapped spill with the spill key, reload decrypts with the wrong
        // key: the reload must be flagged, the store must not.
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             addi t6, sp, 0
             creek t5, a0[7:0], t6
             sd t5, 0(t6)
             ld a0, 0(sp)
             crdfk a0, a0, t6, [7:0]
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::KeyMismatch);
    }

    #[test]
    fn tweak_mismatch_on_store_is_flagged() {
        // Encrypt with tweak sp+8 but store at sp+0.
        let v = analyze_asm(
            "addi sp, sp, -16
             addi t6, sp, 8
             creek t5, a0[7:0], t6
             sd t5, 0(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::TweakMismatch);
    }

    #[test]
    fn sensitive_callee_saved_across_call_is_flagged() {
        let v = analyze_asm(
            "crddk s1, a0, t1, [7:0]
             call g
             ret
             g:
             ret",
            &[],
            false,
        );
        assert!(v
            .iter()
            .any(|r| r.kind == ViolationKind::SensitiveAcrossCall));
    }

    #[test]
    fn plain_store_to_global_needs_strict_mode() {
        let src = "lui s0, 16
                   crddk a0, a0, t1, [7:0]
                   sd a0, 0(s0)
                   ret";
        assert!(analyze_asm(src, &[], false).is_empty());
        let strict = analyze_asm(src, &[], true);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].kind, ViolationKind::PlainStore);
    }

    #[test]
    fn loops_terminate_and_stay_precise() {
        let v = analyze_asm(
            "addi sp, sp, -32
             addi a1, zero, 0
             .L_f_loop:
             addi a1, a1, 1
             blt a1, a0, .L_f_loop
             addi sp, sp, 32
             ret",
            &[Reg::Ra],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ecall_preserves_registers() {
        // A sensitive value in a callee-saved register across an ecall is
        // fine under the kernel contract (no guest-side spill happens).
        let v = analyze_asm(
            "crddk s1, a0, t1, [7:0]
             addi a7, zero, 1
             ecall
             ret",
            &[],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    fn full(src: &str, key_regions: &[(u64, u64)]) -> Analysis {
        let program = assemble(src).unwrap();
        // `f` extends to the next symbol (trailing data/functions excluded).
        let end = program
            .symbols()
            .values()
            .copied()
            .filter(|&o| o > 0)
            .min()
            .unwrap_or(program.bytes().len() as u64);
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end,
        };
        let cfg = build(program.bytes(), &region).unwrap();
        analyze_full(&cfg, &[], TaintOptions::default(), key_regions, None)
    }

    #[test]
    fn la_addresses_resolve_to_image_offsets() {
        // Two independent `la`s of the same symbol produce the *same*
        // abstract address, so cre-tweak vs store-address agree.
        let a = full(
            "f:
             la t0, blob
             creak t5, a0[7:0], t0
             la t1, blob
             sd t5, 0(t1)
             ret
             blob: .dword 0",
            &[],
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        let cre_tweak = a.events.iter().find_map(|e| match e {
            Event::Cre { tweak, .. } => *tweak,
            _ => None,
        });
        assert!(
            matches!(
                cre_tweak,
                Some(TweakId::Addr(Addr {
                    base: Base::Image,
                    ..
                }))
            ),
            "{cre_tweak:?}"
        );
    }

    #[test]
    fn key_region_load_and_store_are_recorded() {
        let src = "f:
             la t0, keyblob
             ld t4, 0(t0)
             addi t5, t4, 1
             sd t5, 8(t0)
             ret
             keyblob: .dword 0x1234";
        let program = assemble(src).unwrap();
        let key_start = *program.symbols().get("keyblob").unwrap();
        let a = full(src, &[(key_start, key_start + 8)]);
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, Event::KeyLoad { rd: Reg::T4, .. })));
        // The derived value t5 = t4 + 1 is still key material.
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, Event::KeyStore { rs2: Reg::T5, .. })));
    }

    #[test]
    fn ret_and_plain_save_events_are_recorded() {
        let a = full(
            "f:
             addi sp, sp, -16
             sd s1, 0(sp)
             crdak a0, a0, t1, [7:0]
             ld s1, 0(sp)
             addi sp, sp, 16
             ret",
            &[],
        );
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, Event::PlainSave { reg: Reg::S1, .. })));
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, Event::Ret { a0_plain: true, .. })));
    }

    #[test]
    fn call_event_records_taint_masks() {
        let a = full(
            "f:
             crdak s1, a1, t1, [7:0]
             crdak a0, a0, t1, [7:0]
             call g
             ret
             g:
             ret",
            &[],
        );
        let call = a
            .events
            .iter()
            .find_map(|e| match *e {
                Event::Call {
                    plain_args,
                    plain_callee_saved,
                    entry_callee_saved,
                    tail,
                    ..
                } => Some((plain_args, plain_callee_saved, entry_callee_saved, tail)),
                _ => None,
            })
            .expect("call event");
        assert_eq!(call.0 & 1, 1, "a0 plain");
        let s1_bit = callee_saved_bit(Reg::S1).unwrap();
        assert_eq!(call.1 & s1_bit, s1_bit, "s1 plain");
        // s2 still holds its entry value.
        let s2_bit = callee_saved_bit(Reg::S2).unwrap();
        assert_eq!(call.2 & s2_bit, s2_bit, "s2 entry");
        assert!(!call.3);
    }

    #[test]
    fn summary_application_replaces_conservative_clobber() {
        // Caller keeps plaintext in s1 across a call. Without an environment
        // this is SensitiveAcrossCall; with a summary proving the callee
        // saves nothing, it is clean — and a callee that returns decrypted
        // plaintext taints a0 so the spill downstream is caught.
        let src = "f:
             addi sp, sp, -16
             crdak s1, a1, t1, [7:0]
             call g
             sd a0, 0(sp)
             ret
             g:
             ret";
        let program = assemble(src).unwrap();
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end: *program.symbols().get("g").unwrap(),
        };
        let cfg = build(program.bytes(), &region).unwrap();
        let call_offset = 8; // addi, crdak, then the jal
        let mut targets = BTreeMap::new();
        targets.insert(call_offset, "g".to_owned());
        let mut summaries = BTreeMap::new();
        summaries.insert(
            "g".to_owned(),
            FnSummary {
                returns_plain: true,
                ..FnSummary::default()
            },
        );
        let env = CallEnv {
            targets: &targets,
            summaries: &summaries,
        };
        let a = analyze_full(&cfg, &[], TaintOptions::default(), &[], Some(&env));
        assert!(
            !a.violations
                .iter()
                .any(|v| v.kind == ViolationKind::SensitiveAcrossCall),
            "{:?}",
            a.violations
        );
        // a0 := Plain via the summary, spilled at the sd after the call.
        assert!(
            a.violations
                .iter()
                .any(|v| v.kind == ViolationKind::PlainSpill && v.offset == call_offset + 4),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn plain_argument_to_spilling_callee_is_flagged_at_the_call() {
        let src = "f:
             crdak a0, a0, t1, [7:0]
             call g
             ret
             g:
             ret";
        let program = assemble(src).unwrap();
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end: *program.symbols().get("g").unwrap(),
        };
        let cfg = build(program.bytes(), &region).unwrap();
        let mut targets = BTreeMap::new();
        targets.insert(4u64, "g".to_owned());
        let mut summaries = BTreeMap::new();
        summaries.insert(
            "g".to_owned(),
            FnSummary {
                arg_spills: 1,
                ..FnSummary::default()
            },
        );
        let env = CallEnv {
            targets: &targets,
            summaries: &summaries,
        };
        let a = analyze_full(&cfg, &[], TaintOptions::default(), &[], Some(&env));
        assert!(
            a.violations
                .iter()
                .any(|v| v.kind == ViolationKind::PlainSpill
                    && v.offset == 4
                    && v.detail.contains("callee `g`")),
            "{:?}",
            a.violations
        );
    }
}
