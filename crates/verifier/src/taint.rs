//! The abstract-interpretation core: a may-hold-plaintext taint dataflow
//! over a reconstructed CFG.
//!
//! # Lattice
//!
//! Each register and each abstract stack slot holds one [`Val`]:
//!
//! ```text
//!            Plain                 (may hold sensitive plaintext — top)
//!              |
//!           Unknown                (derived / untracked)
//!          /   |    \
//!   Const(k) Loc(a) Cipher{key,tweak}
//! ```
//!
//! `Plain` absorbs everything (a value that *may* be sensitive plaintext
//! stays so under join); unequal constants/locations collapse to `Unknown`;
//! two ciphers join field-wise (mismatched key or tweak becomes unknown).
//! Chains are bounded (length ≤ 4 per cell), so the worklist fixpoint
//! terminates.
//!
//! # Seeding
//!
//! `Plain` enters the state from exactly two sources, mirroring the paper's
//! taint rules: destinations of `crd[x]k` (a decrypt *produces* sensitive
//! plaintext by definition) and the registers listed in the compiler's
//! protection manifest as sensitive at function entry (`ra` under RA
//! protection, argument registers carrying sensitive parameters). ALU
//! results with a `Plain` operand stay `Plain`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use regvault_isa::abi::{CALLER_SAVED, CALLEE_SAVED};
use regvault_isa::{AluOp, Insn, KeyReg, Reg};

use crate::cfg::Cfg;
use crate::diag::ViolationKind;

/// Symbolic base of an abstract address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// The function's entry stack pointer.
    Sp,
    /// An opaque value identity (entry register or instruction definition).
    Id(u64),
}

/// An abstract address: a symbolic base plus a concrete byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addr {
    /// Symbolic base.
    pub base: Base,
    /// Byte offset from the base.
    pub off: i64,
}

/// What the dataflow knows about a cipher value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CipherInfo {
    /// The key register used by the producing `cre`, when unique.
    pub key: Option<KeyReg>,
    /// The tweak address of the producing `cre`, when unique and symbolic.
    pub tweak: Option<Addr>,
}

/// The abstract value lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Nothing tracked.
    Unknown,
    /// A known constant.
    Const(i64),
    /// A symbolic location/identity (address arithmetic stays precise).
    Loc(Addr),
    /// May hold sensitive plaintext.
    Plain,
    /// Ciphertext produced by a `cre`.
    Cipher(CipherInfo),
}

impl Val {
    /// Lattice join: `Plain` absorbs, mismatches widen to `Unknown`.
    #[must_use]
    pub fn join(self, other: Val) -> Val {
        if self == other {
            return self;
        }
        match (self, other) {
            (Val::Plain, _) | (_, Val::Plain) => Val::Plain,
            (Val::Cipher(a), Val::Cipher(b)) => Val::Cipher(CipherInfo {
                key: if a.key == b.key { a.key } else { None },
                tweak: if a.tweak == b.tweak { a.tweak } else { None },
            }),
            _ => Val::Unknown,
        }
    }
}

/// The abstract machine state: 32 registers plus entry-sp-relative stack
/// slots (8-byte granularity, keyed by byte offset from the entry `sp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Register file values, indexed by hardware register number.
    pub regs: [Val; 32],
    /// Stack slots, keyed by offset from the entry stack pointer.
    pub slots: BTreeMap<i64, Val>,
}

impl State {
    /// The function-entry state: `sp` is the symbolic stack base, `zero` is
    /// zero, every other register is an opaque entry identity — except the
    /// manifest-declared sensitive entry registers, which start `Plain`.
    #[must_use]
    pub fn entry(entry_sensitive: &[Reg]) -> State {
        let mut regs = [Val::Unknown; 32];
        for reg in Reg::ALL {
            let i = reg.index() as usize;
            regs[i] = match reg {
                Reg::Zero => Val::Const(0),
                Reg::Sp => Val::Loc(Addr {
                    base: Base::Sp,
                    off: 0,
                }),
                _ => Val::Loc(Addr {
                    base: Base::Id(ENTRY_ID_TAG + u64::from(reg.index())),
                    off: 0,
                }),
            };
        }
        for &reg in entry_sensitive {
            if reg != Reg::Zero {
                regs[reg.index() as usize] = Val::Plain;
            }
        }
        State {
            regs,
            slots: BTreeMap::new(),
        }
    }

    /// Joins `other` into `self`; returns `true` if anything changed.
    pub fn join_in_place(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let joined = self.regs[i].join(other.regs[i]);
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        // A slot missing on either side joins as Unknown; drop it (Unknown
        // is the implicit default) to keep the maps small.
        let keys: BTreeSet<i64> = self.slots.keys().chain(other.slots.keys()).copied().collect();
        for key in keys {
            let a = self.slots.get(&key).copied().unwrap_or(Val::Unknown);
            let b = other.slots.get(&key).copied().unwrap_or(Val::Unknown);
            let joined = a.join(b);
            let prev = if joined == Val::Unknown {
                self.slots.remove(&key).unwrap_or(Val::Unknown)
            } else {
                self.slots.insert(key, joined).unwrap_or(Val::Unknown)
            };
            changed |= prev != joined;
        }
        changed
    }

    fn get(&self, reg: Reg) -> Val {
        self.regs[reg.index() as usize]
    }

    fn set(&mut self, reg: Reg, val: Val) {
        if reg != Reg::Zero {
            self.regs[reg.index() as usize] = val;
        }
    }
}

/// Tag separating entry-register identities from instruction-definition
/// identities (`(offset << 6) | rd` stays below bit 40 for any real image).
const ENTRY_ID_TAG: u64 = 1 << 40;

fn def_id(offset: u64, rd: Reg) -> u64 {
    (offset << 6) | u64::from(rd.index())
}

fn fresh(offset: u64, rd: Reg) -> Val {
    Val::Loc(Addr {
        base: Base::Id(def_id(offset, rd)),
        off: 0,
    })
}

/// The effective address of a `offset(rs1)` memory operand, when symbolic.
fn mem_addr(state: &State, rs1: Reg, offset: i32) -> Option<Addr> {
    match state.get(rs1) {
        Val::Loc(a) => Some(Addr {
            base: a.base,
            off: a.off + i64::from(offset),
        }),
        _ => None,
    }
}

/// A violation found by the dataflow, before diagnostics are attached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawViolation {
    /// Invariant broken.
    pub kind: ViolationKind,
    /// Image byte offset of the offending instruction.
    pub offset: u64,
    /// Explanation.
    pub detail: String,
}

/// Dataflow configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaintOptions {
    /// Also flag `Plain` stores to *non-stack* memory. Off by default:
    /// programs legitimately store decrypted values to unprotected globals
    /// (the sensitivity boundary is the annotation, not the value's
    /// history), but compiler-internal traffic never should.
    pub strict: bool,
    /// Enforce the storage-address tweak discipline (ciphertext must be
    /// stored at — and decrypted under — its encryption tweak). On by
    /// default; disabled for CIP save stubs, whose tweaks deliberately
    /// chain over the previous *plaintext* instead (§2.4.3).
    pub tweak_discipline: bool,
    /// Seed `Plain` from `crd` destinations. On by default; the compiler
    /// gate turns it off for configurations without spill protection, where
    /// "decrypted values never hit memory unencrypted" is not promised.
    pub decrypt_taints: bool,
}

impl Default for TaintOptions {
    fn default() -> Self {
        TaintOptions {
            strict: false,
            tweak_discipline: true,
            decrypt_taints: true,
        }
    }
}

/// Runs the worklist fixpoint over `cfg` and returns the violations.
///
/// `entry_sensitive` seeds `Plain` into the entry state (see [`State::entry`]).
#[must_use]
pub fn analyze(cfg: &Cfg, entry_sensitive: &[Reg], options: TaintOptions) -> Vec<RawViolation> {
    let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
    let mut violations: BTreeSet<RawViolation> = BTreeSet::new();
    if cfg.blocks.is_empty() {
        return Vec::new();
    }
    in_states[0] = Some(State::entry(entry_sensitive));

    let mut worklist: VecDeque<usize> = VecDeque::new();
    worklist.push_back(0);
    let mut queued = vec![false; cfg.blocks.len()];
    queued[0] = true;

    while let Some(idx) = worklist.pop_front() {
        queued[idx] = false;
        let Some(mut state) = in_states[idx].clone() else {
            continue;
        };
        for &(offset, ref insn) in &cfg.blocks[idx].insns {
            transfer(&mut state, offset, insn, options, &mut violations);
        }
        for &succ in &cfg.blocks[idx].succs {
            let changed = match in_states[succ].as_mut() {
                Some(existing) => existing.join_in_place(&state),
                None => {
                    in_states[succ] = Some(state.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                worklist.push_back(succ);
            }
        }
    }

    violations.into_iter().collect()
}

/// ALU transfer for two abstract operands.
fn alu(op: AluOp, a: Val, b: Val) -> Val {
    // Taint propagation dominates: any Plain operand keeps the result Plain
    // (mirrors the compiler's forward propagation through arithmetic).
    if a == Val::Plain || b == Val::Plain {
        return Val::Plain;
    }
    match (op, a, b) {
        (AluOp::Add, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_add(y)),
        (AluOp::Sub, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_sub(y)),
        (AluOp::Add, Val::Loc(l), Val::Const(c)) | (AluOp::Add, Val::Const(c), Val::Loc(l)) => {
            Val::Loc(Addr {
                base: l.base,
                off: l.off.wrapping_add(c),
            })
        }
        (AluOp::Sub, Val::Loc(l), Val::Const(c)) => Val::Loc(Addr {
            base: l.base,
            off: l.off.wrapping_sub(c),
        }),
        (AluOp::Xor, Val::Const(x), Val::Const(y)) => Val::Const(x ^ y),
        (AluOp::Or, Val::Const(x), Val::Const(y)) => Val::Const(x | y),
        (AluOp::And, Val::Const(x), Val::Const(y)) => Val::Const(x & y),
        (AluOp::Sll, Val::Const(x), Val::Const(y)) => Val::Const(x.wrapping_shl(y as u32 & 63)),
        _ => Val::Unknown,
    }
}

/// The abstract transfer function for one instruction.
fn transfer(
    state: &mut State,
    offset: u64,
    insn: &Insn,
    options: TaintOptions,
    violations: &mut BTreeSet<RawViolation>,
) {
    match *insn {
        Insn::Lui { rd, imm20 } => {
            state.set(rd, Val::Const(i64::from(imm20) << 12));
        }
        Insn::Auipc { rd, .. } => state.set(rd, fresh(offset, rd)),
        Insn::OpImm { op, rd, rs1, imm } => {
            let v = alu(op, state.get(rs1), Val::Const(i64::from(imm)));
            state.set(rd, v);
        }
        Insn::OpImmW { op, rd, rs1, imm } => {
            // 32-bit ops truncate: constants fold with sign extension, taint
            // survives, addresses do not.
            let v = match alu(op, state.get(rs1), Val::Const(i64::from(imm))) {
                Val::Plain => Val::Plain,
                Val::Const(c) => Val::Const(i64::from(c as i32)),
                _ => Val::Unknown,
            };
            state.set(rd, v);
        }
        Insn::Op { op, rd, rs1, rs2 } => {
            let v = alu(op, state.get(rs1), state.get(rs2));
            state.set(rd, v);
        }
        Insn::OpW { op, rd, rs1, rs2 } => {
            let v = match alu(op, state.get(rs1), state.get(rs2)) {
                Val::Plain => Val::Plain,
                Val::Const(c) => Val::Const(i64::from(c as i32)),
                _ => Val::Unknown,
            };
            state.set(rd, v);
        }
        Insn::Load {
            width,
            rd,
            rs1,
            offset: mem_off,
            ..
        } => {
            let v = match mem_addr(state, rs1, mem_off) {
                Some(Addr {
                    base: Base::Sp,
                    off,
                }) => {
                    let slot = state.slots.get(&off).copied().unwrap_or(Val::Unknown);
                    if width == regvault_isa::MemWidth::Double {
                        slot
                    } else if slot == Val::Plain {
                        // A partial read of plaintext is still plaintext.
                        Val::Plain
                    } else {
                        Val::Unknown
                    }
                }
                _ => fresh(offset, rd),
            };
            state.set(rd, v);
        }
        Insn::Store {
            width,
            rs2,
            rs1,
            offset: mem_off,
        } => {
            let value = state.get(rs2);
            let addr = mem_addr(state, rs1, mem_off);
            match (value, addr) {
                (
                    Val::Plain,
                    Some(Addr {
                        base: Base::Sp, ..
                    }),
                ) => {
                    violations.insert(RawViolation {
                        kind: ViolationKind::PlainSpill,
                        offset,
                        detail: format!(
                            "sensitive plaintext in {rs2} stored to a stack slot without a wrapping cre"
                        ),
                    });
                }
                (Val::Plain, _) if options.strict => {
                    violations.insert(RawViolation {
                        kind: ViolationKind::PlainStore,
                        offset,
                        detail: format!(
                            "sensitive plaintext in {rs2} stored to memory without a wrapping cre (strict)"
                        ),
                    });
                }
                (Val::Cipher(info), Some(at)) => {
                    if let Some(tweak) = info.tweak {
                        // A ciphertext produced under a non-stack tweak may
                        // be *spilled* to the stack (it is protected data —
                        // copies are safe); every other mismatch breaks the
                        // storage-address tweak discipline.
                        let benign_spill = at.base == Base::Sp && tweak.base != Base::Sp;
                        if options.tweak_discipline && tweak != at && !benign_spill {
                            violations.insert(RawViolation {
                                kind: ViolationKind::TweakMismatch,
                                offset,
                                detail: format!(
                                    "ciphertext in {rs2} stored to an address that is not its encryption tweak (storage-address tweak discipline)"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
            if let Some(Addr {
                base: Base::Sp,
                off,
            }) = addr
            {
                if width == regvault_isa::MemWidth::Double {
                    if value == Val::Unknown {
                        state.slots.remove(&off);
                    } else {
                        state.slots.insert(off, value);
                    }
                } else {
                    // Partial overwrite: the 8-byte slot is no longer tracked,
                    // unless plaintext is (partially) landing in it.
                    if value == Val::Plain {
                        state.slots.insert(off, Val::Plain);
                    } else {
                        state.slots.remove(&off);
                    }
                }
            }
        }
        Insn::Cre {
            key, rd, rs: _, rt, ..
        } => {
            let tweak = match state.get(rt) {
                Val::Loc(a) => Some(a),
                _ => None,
            };
            state.set(
                rd,
                Val::Cipher(CipherInfo {
                    key: Some(key),
                    tweak,
                }),
            );
        }
        Insn::Crd { key, rd, rs, rt, .. } => {
            if let Val::Cipher(info) = state.get(rs) {
                if let Some(cre_key) = info.key {
                    if cre_key != key {
                        violations.insert(RawViolation {
                            kind: ViolationKind::KeyMismatch,
                            offset,
                            detail: format!(
                                "crd uses key `{key}` but the ciphertext in {rs} was produced under key `{cre_key}`"
                            ),
                        });
                    }
                }
                if let Some(cre_tweak) = info.tweak {
                    // A tweak register holding a known non-address (a
                    // constant or decrypted plaintext) can never equal the
                    // recorded address tweak; only a lost address (Unknown)
                    // is given the benefit of the doubt.
                    let mismatch = match state.get(rt) {
                        Val::Loc(here) => cre_tweak != here,
                        Val::Const(_) | Val::Plain => true,
                        Val::Unknown | Val::Cipher(_) => false,
                    };
                    if options.tweak_discipline && mismatch {
                        violations.insert(RawViolation {
                            kind: ViolationKind::TweakMismatch,
                            offset,
                            detail: format!(
                                "crd tweak in {rt} differs from the tweak the ciphertext in {rs} was encrypted under"
                            ),
                        });
                    }
                }
            }
            // A decrypt produces sensitive plaintext by definition.
            state.set(
                rd,
                if options.decrypt_taints {
                    Val::Plain
                } else {
                    fresh(offset, rd)
                },
            );
        }
        Insn::Jal { rd, .. } | Insn::Jalr { rd, .. } if rd != Reg::Zero => {
            call_transfer(state, offset, violations);
            state.set(rd, fresh(offset, rd));
        }
        Insn::Jal { .. } | Insn::Jalr { .. } | Insn::Branch { .. } => {}
        Insn::Csr { rd, .. } | Insn::CsrImm { rd, .. } => state.set(rd, fresh(offset, rd)),
        Insn::Ecall => {
            // Kernel syscall contract (see codegen): every register except
            // the a0 result is preserved; no register is spilled by the
            // guest at this boundary.
            state.set(Reg::A0, fresh(offset, Reg::A0));
        }
        Insn::Ebreak | Insn::Mret | Insn::Sret | Insn::Wfi | Insn::Fence => {}
    }
}

/// Models a call: flags sensitive plaintext left in callee-saved registers
/// (the callee will spill them unencrypted — §2.4.4's cross-call hazard) and
/// clobbers the caller-saved file.
fn call_transfer(state: &mut State, offset: u64, violations: &mut BTreeSet<RawViolation>) {
    for reg in CALLEE_SAVED {
        if reg == Reg::Sp {
            continue;
        }
        if state.get(reg) == Val::Plain {
            violations.insert(RawViolation {
                kind: ViolationKind::SensitiveAcrossCall,
                offset,
                detail: format!(
                    "sensitive plaintext live in callee-saved {reg} across a call (callee may spill it unencrypted)"
                ),
            });
        }
    }
    for reg in CALLER_SAVED {
        state.set(reg, fresh(offset, reg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, FuncRegion};
    use regvault_isa::asm::assemble;

    fn analyze_asm(src: &str, entry_sensitive: &[Reg], strict: bool) -> Vec<RawViolation> {
        let program = assemble(src).unwrap();
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end: program.bytes().len() as u64,
        };
        let cfg = build(program.bytes(), &region).unwrap();
        analyze(
            &cfg,
            entry_sensitive,
            TaintOptions {
                strict,
                ..TaintOptions::default()
            },
        )
    }

    #[test]
    fn wrapped_ra_save_restore_is_clean() {
        // The codegen prologue/epilogue shape for protect_ra.
        let v = analyze_asm(
            "addi sp, sp, -16
             creak ra, ra[7:0], sp
             sd ra, 0(sp)
             addi a0, zero, 7
             ld ra, 0(sp)
             crdak ra, ra, sp, [7:0]
             addi sp, sp, 16
             ret",
            &[Reg::Ra],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrapped_ra_save_is_a_plain_spill() {
        let v = analyze_asm(
            "addi sp, sp, -16
             sd ra, 0(sp)
             ld ra, 0(sp)
             addi sp, sp, 16
             ret",
            &[Reg::Ra],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::PlainSpill);
        assert_eq!(v[0].offset, 4);
    }

    #[test]
    fn crd_destination_becomes_plain() {
        // Decrypt then spill unencrypted: must be flagged at the sd.
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             sd a0, 8(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::PlainSpill);
        assert_eq!(v[0].offset, 8);
    }

    #[test]
    fn taint_propagates_through_alu() {
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             addi a1, a0, 5
             add a2, a1, a1
             sd a2, 0(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].offset, 16);
    }

    #[test]
    fn spill_wrap_is_clean_and_key_mismatch_is_flagged() {
        // Wrapped spill with the spill key, reload decrypts with the wrong
        // key: the reload must be flagged, the store must not.
        let v = analyze_asm(
            "addi sp, sp, -16
             crddk a0, a0, t1, [7:0]
             addi t6, sp, 0
             creek t5, a0[7:0], t6
             sd t5, 0(t6)
             ld a0, 0(sp)
             crdfk a0, a0, t6, [7:0]
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::KeyMismatch);
    }

    #[test]
    fn tweak_mismatch_on_store_is_flagged() {
        // Encrypt with tweak sp+8 but store at sp+0.
        let v = analyze_asm(
            "addi sp, sp, -16
             addi t6, sp, 8
             creek t5, a0[7:0], t6
             sd t5, 0(sp)
             ret",
            &[],
            false,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::TweakMismatch);
    }

    #[test]
    fn sensitive_callee_saved_across_call_is_flagged() {
        let v = analyze_asm(
            "crddk s1, a0, t1, [7:0]
             call g
             ret
             g:
             ret",
            &[],
            false,
        );
        assert!(v.iter().any(|r| r.kind == ViolationKind::SensitiveAcrossCall));
    }

    #[test]
    fn plain_store_to_global_needs_strict_mode() {
        let src = "lui s0, 16
                   crddk a0, a0, t1, [7:0]
                   sd a0, 0(s0)
                   ret";
        assert!(analyze_asm(src, &[], false).is_empty());
        let strict = analyze_asm(src, &[], true);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].kind, ViolationKind::PlainStore);
    }

    #[test]
    fn loops_terminate_and_stay_precise() {
        let v = analyze_asm(
            "addi sp, sp, -32
             addi a1, zero, 0
             .L_f_loop:
             addi a1, a1, 1
             blt a1, a0, .L_f_loop
             addi sp, sp, 32
             ret",
            &[Reg::Ra],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ecall_preserves_registers() {
        // A sensitive value in a callee-saved register across an ecall is
        // fine under the kernel contract (no guest-side spill happens).
        let v = analyze_asm(
            "crddk s1, a0, t1, [7:0]
             addi a7, zero, 1
             ecall
             ret",
            &[],
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
