//! Whole-program call-graph recovery from decoded machine code.
//!
//! Direct calls (`jal ra, f` and `j f` tail jumps out of the extent) resolve
//! statically; indirect calls (`jalr` / `jr`) resolve when the dataflow pins
//! the target register to a concrete image offset (an `la`-materialized
//! function address — [`crate::taint::Base::Image`]). A resolved target must
//! land exactly on a function entry; anything else stays unresolved and is
//! reported in the stats, so coverage gaps are visible rather than silent.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, FuncRegion};
use crate::taint::{analyze_full, Event, TaintOptions};

/// Call-graph coverage statistics, reported alongside verification results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallGraphStats {
    /// Functions (code regions) in the image.
    pub functions: usize,
    /// Distinct caller→callee edges.
    pub edges: usize,
    /// Direct (`jal`) call sites.
    pub direct_calls: usize,
    /// Indirect (`jalr`) call sites resolved to a function entry.
    pub resolved_indirect: usize,
    /// Indirect call sites the dataflow could not resolve — these fall back
    /// to the conservative clobber model.
    pub unresolved_indirect: usize,
    /// Tail-call sites (direct or indirect) among the above.
    pub tail_calls: usize,
}

/// The recovered whole-program call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Call-site image offset → resolved callee symbol (calls and tails).
    pub targets: BTreeMap<u64, String>,
    /// Distinct `(caller, callee)` edges.
    pub edges: BTreeSet<(String, String)>,
    /// Image offsets of call sites that did not resolve.
    pub unresolved: Vec<u64>,
    /// Coverage statistics.
    pub stats: CallGraphStats,
}

/// Recovers the call graph over all function regions.
///
/// Runs one seed-free dataflow pass per function (no summaries applied) and
/// classifies every [`Event::Call`]: a target is resolved only when it is
/// exactly a function entry offset.
#[must_use]
pub fn build(funcs: &[(FuncRegion, Cfg, TaintOptions)], key_regions: &[(u64, u64)]) -> CallGraph {
    let entries: BTreeMap<u64, &str> = funcs
        .iter()
        .map(|(region, _, _)| (region.start, region.name.as_str()))
        .collect();
    let mut graph = CallGraph {
        stats: CallGraphStats {
            functions: funcs.len(),
            ..CallGraphStats::default()
        },
        ..CallGraph::default()
    };
    for (region, cfg, options) in funcs {
        let analysis = analyze_full(cfg, &[], *options, key_regions, None);
        for event in &analysis.events {
            let Event::Call {
                offset,
                target,
                indirect,
                tail,
                ..
            } = *event
            else {
                continue;
            };
            let callee = target.and_then(|t| entries.get(&t).copied());
            match (indirect, callee) {
                (false, _) => graph.stats.direct_calls += 1,
                (true, Some(_)) => graph.stats.resolved_indirect += 1,
                (true, None) => graph.stats.unresolved_indirect += 1,
            }
            if tail {
                graph.stats.tail_calls += 1;
            }
            if let Some(callee) = callee {
                graph.targets.insert(offset, callee.to_owned());
                graph.edges.insert((region.name.clone(), callee.to_owned()));
            } else {
                graph.unresolved.push(offset);
            }
        }
    }
    graph.unresolved.sort_unstable();
    graph.stats.edges = graph.edges.len();
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build as build_cfg, regions_from_symbols};
    use regvault_isa::asm::assemble;

    fn graph_of(src: &str) -> CallGraph {
        let program = assemble(src).unwrap();
        let regions =
            regions_from_symbols(program.symbols().iter(), program.bytes().len() as u64, &[]);
        let funcs: Vec<(FuncRegion, Cfg, TaintOptions)> = regions
            .iter()
            .map(|r| {
                (
                    r.clone(),
                    build_cfg(program.bytes(), r).unwrap(),
                    TaintOptions::default(),
                )
            })
            .collect();
        build(&funcs, &[])
    }

    #[test]
    fn direct_calls_resolve_by_offset() {
        let g = graph_of(
            "main:
             call helper
             ret
             helper:
             ret",
        );
        assert_eq!(g.stats.functions, 2);
        assert_eq!(g.stats.direct_calls, 1);
        assert_eq!(g.stats.edges, 1);
        assert!(g.edges.contains(&("main".to_owned(), "helper".to_owned())));
        assert_eq!(g.targets.get(&0), Some(&"helper".to_owned()));
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn la_materialized_jalr_call_resolves() {
        let g = graph_of(
            "main:
             la t0, helper
             jalr ra, 0(t0)
             ret
             helper:
             ret",
        );
        assert_eq!(g.stats.resolved_indirect, 1);
        assert_eq!(g.stats.unresolved_indirect, 0);
        assert!(g.targets.values().any(|n| n == "helper"));
    }

    #[test]
    fn jalr_tail_call_resolves_as_tail_edge() {
        let g = graph_of(
            "main:
             la t0, helper
             jr t0
             helper:
             ret",
        );
        assert_eq!(g.stats.resolved_indirect, 1);
        assert_eq!(g.stats.tail_calls, 1);
        assert!(g.edges.contains(&("main".to_owned(), "helper".to_owned())));
    }

    #[test]
    fn unresolved_indirect_calls_are_counted_not_guessed() {
        // The target register comes from a load — the dataflow cannot pin
        // it, so the site must be reported unresolved.
        let g = graph_of(
            "main:
             ld t0, 0(a0)
             jalr ra, 0(t0)
             ret
             helper:
             ret",
        );
        assert_eq!(g.stats.unresolved_indirect, 1);
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.targets.is_empty());
    }

    #[test]
    fn direct_tail_jump_is_an_edge_and_a_tail() {
        let g = graph_of(
            "main:
             j helper
             helper:
             ret",
        );
        assert_eq!(g.stats.direct_calls, 1);
        assert_eq!(g.stats.tail_calls, 1);
        assert!(g.edges.contains(&("main".to_owned(), "helper".to_owned())));
    }
}
