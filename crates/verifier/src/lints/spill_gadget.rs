//! The unprotected-spill-gadget lint: sensitive plaintext in a callee-saved
//! register, live across a call into a function that (transitively) saves
//! that register to memory without a wrapping `cre`.
//!
//! This is §2.4.4's cross-call hazard made *whole-program*: the caller obeys
//! the discipline (it never stores the value itself), the callee obeys its
//! own local view (the register holds an opaque entry value, so its raw save
//! is locally clean) — yet composed, the caller's plaintext hits memory.
//! The per-function pass can only over-approximate this as "anything across
//! a call is dangerous"; with call-graph resolution and
//! [`FnSummary::plain_saves`](crate::summary::FnSummary) the lint flags
//! exactly the call sites whose callee really does save the live register.

use regvault_isa::abi::CALLEE_SAVED;

use crate::diag::ViolationKind;
use crate::taint::{callee_saved_bit, Event, RawViolation};

use super::{Finding, Lint, LintContext};

/// The unprotected-spill-gadget lint pass.
pub struct SpillGadget;

impl Lint for SpillGadget {
    fn kind(&self) -> ViolationKind {
        ViolationKind::SpillGadget
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (function, events) in ctx.facts {
            for event in events {
                let Event::Call {
                    offset,
                    plain_callee_saved,
                    ..
                } = *event
                else {
                    continue;
                };
                if plain_callee_saved == 0 {
                    continue;
                }
                let Some(callee) = ctx.graph.targets.get(&offset) else {
                    continue; // unresolved: the conservative model already flagged it
                };
                let Some(summary) = ctx.summaries.get(callee) else {
                    continue;
                };
                let gadget = plain_callee_saved & summary.plain_saves;
                if gadget == 0 {
                    continue;
                }
                for &reg in &CALLEE_SAVED {
                    let Some(bit) = callee_saved_bit(reg) else {
                        continue;
                    };
                    if gadget & bit != 0 {
                        findings.push(Finding {
                            function: function.clone(),
                            violation: RawViolation {
                                kind: ViolationKind::SpillGadget,
                                offset,
                                detail: format!(
                                    "sensitive plaintext in {reg} is live across the call to `{callee}`, which saves {reg} to memory without a wrapping cre (whole-program spill gadget)"
                                ),
                            },
                        });
                    }
                }
            }
        }
        findings
    }
}
