//! The raw-key-flow lint: no value derived from key material may reach a
//! general-purpose register or memory unencrypted.
//!
//! This is the KeyVisor invariant (arxiv 2410.01777): once a kernel can hold
//! raw keys in GPRs, every spill, swap, or transient-execution window leaks
//! them. The dataflow marks loads from manifest-declared key-storage symbols
//! as [`Val::Key`](crate::taint::Val) and propagates the taint through
//! arithmetic; this lint turns every escape — a load into a GPR, an
//! unencrypted store, a key passed as a call argument, a key returned in
//! `a0` — into a finding. Legacy key-install paths necessarily trip the
//! load rule today, which is the point: the findings inventory exactly the
//! sites a future `khcreate`/`khuse` handle scheme (ROADMAP item 3) must
//! replace, and the baseline ratchet keeps the inventory from growing.

use regvault_isa::abi::ARG_REGS;

use crate::diag::ViolationKind;
use crate::taint::{Event, RawViolation};

use super::{Finding, Lint, LintContext};

/// The raw-key-flow lint pass.
pub struct RawKeyFlow;

impl Lint for RawKeyFlow {
    fn kind(&self) -> ViolationKind {
        ViolationKind::RawKeyFlow
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut push = |function: &str, offset: u64, detail: String| {
            findings.push(Finding {
                function: function.to_owned(),
                violation: RawViolation {
                    kind: ViolationKind::RawKeyFlow,
                    offset,
                    detail,
                },
            });
        };
        for (function, events) in ctx.facts {
            for event in events {
                match *event {
                    Event::KeyLoad { offset, rd } => push(
                        function,
                        offset,
                        format!(
                            "raw key material loaded from key storage into {rd} — keys must not reach general-purpose registers (KeyVisor invariant)"
                        ),
                    ),
                    Event::KeyStore { offset, rs2 } => push(
                        function,
                        offset,
                        format!(
                            "raw key material in {rs2} stored to memory without a wrapping cre"
                        ),
                    ),
                    Event::Call {
                        offset, key_args, ..
                    } if key_args != 0 => {
                        for (i, &reg) in ARG_REGS.iter().enumerate() {
                            if key_args & (1 << i) != 0 {
                                push(
                                    function,
                                    offset,
                                    format!(
                                        "raw key material passed as a plain call argument in {reg}"
                                    ),
                                );
                            }
                        }
                    }
                    Event::Ret {
                        offset,
                        a0_key: true,
                        ..
                    } => push(
                        function,
                        offset,
                        "raw key material returned to the caller in a0".to_owned(),
                    ),
                    _ => {}
                }
            }
        }
        findings
    }
}
