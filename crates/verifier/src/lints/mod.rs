//! Whole-program lint passes over the interprocedural analysis results.
//!
//! Lints consume the per-function [`Event`](crate::taint::Event) streams,
//! the fixpoint [`FnSummary`](crate::summary::FnSummary) map, and the
//! recovered [`CallGraph`](crate::callgraph::CallGraph) — they add *cross-
//! cutting* judgements the core dataflow does not make:
//!
//! * [`tweak_diversity`] — the CipherGuard dictionary precondition: a
//!   `(key, tweak)` pair that can repeat across distinct plaintexts makes
//!   ciphertext equality observable (arxiv 2502.13401);
//! * [`raw_key_flow`] — the KeyVisor invariant: no value derived from key
//!   material may reach a general-purpose register or memory unencrypted
//!   (arxiv 2410.01777, ROADMAP item 3 groundwork);
//! * [`spill_gadget`] — a callee-saved register holding sensitive plaintext
//!   live across a call into a function that (transitively) saves that
//!   register to memory without a wrapping `cre`.
//!
//! Lints only run in interprocedural mode
//! ([`VerifyOptions::interprocedural`](crate::VerifyOptions)); their
//! findings carry [`Severity`](crate::diag::Severity) levels and stable
//! fingerprints so they can be baselined and ratcheted in CI.

pub mod raw_key_flow;
pub mod spill_gadget;
pub mod tweak_diversity;

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::diag::ViolationKind;
use crate::summary::FnSummary;
use crate::taint::{Event, RawViolation};

/// Everything a lint pass may look at.
#[derive(Debug, Clone, Copy)]
pub struct LintContext<'a> {
    /// Final-pass event stream per function symbol.
    pub facts: &'a BTreeMap<String, Vec<Event>>,
    /// Fixpoint summaries per function symbol.
    pub summaries: &'a BTreeMap<String, FnSummary>,
    /// The recovered call graph.
    pub graph: &'a CallGraph,
}

/// A lint finding: a raw violation anchored to a function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Function symbol the finding is anchored in.
    pub function: String,
    /// The violation (kind, offset, detail).
    pub violation: RawViolation,
}

/// A whole-program lint pass.
pub trait Lint {
    /// The violation kind this lint reports.
    fn kind(&self) -> ViolationKind;
    /// Stable lint name (the violation kind's id).
    fn name(&self) -> &'static str {
        self.kind().id()
    }
    /// Runs the pass and returns its findings.
    fn run(&self, ctx: &LintContext<'_>) -> Vec<Finding>;
}

/// All registered lint passes, in report order.
#[must_use]
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(tweak_diversity::TweakDiversity),
        Box::new(raw_key_flow::RawKeyFlow),
        Box::new(spill_gadget::SpillGadget),
    ]
}
