//! The tweak-diversity lint: flags `cre` sites whose `(key, tweak)` pair can
//! repeat across distinct plaintexts.
//!
//! RegVault's `cre` is deterministic per `(key, tweak, plaintext)`, so an
//! attacker observing memory can build a ciphertext dictionary and detect
//! value reuse — the ciphertext side channel CipherGuard targets. The
//! dictionary precondition is exactly a `(key, tweak)` pair encrypting more
//! than one plaintext value; this lint finds three shapes of it:
//!
//! 1. **Same function, same pair**: two `cre` sites share `(key, tweak)` and
//!    their plaintexts are not provably the same value.
//! 2. **Loop-invariant tweak**: a `cre` inside a CFG cycle whose tweak
//!    survived the loop join (i.e. is the same every iteration) while the
//!    plaintext is unconstrained — iterations encrypting equal values
//!    produce equal ciphertext.
//! 3. **Cross-function reuse**: an image-global or constant tweak used under
//!    the same key in two different functions (stack tweaks are frame-
//!    relative and excluded).

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::ViolationKind;
use crate::taint::{Addr, Base, Event, RawViolation, TweakId, Val};

use super::{Finding, Lint, LintContext};

/// The tweak-diversity lint pass.
pub struct TweakDiversity;

/// Sites grouped by frame-independent `(key, tweak)` pair:
/// `(function, offset, abstract plaintext)` per site.
type GlobalSites = BTreeMap<(regvault_isa::KeyReg, TweakId), Vec<(String, u64, Val)>>;

/// Could `a` and `b` be the same runtime value? Only identical constants,
/// locations, or ciphers are provably equal *within one function's frame*.
fn provably_same(a: Val, b: Val) -> bool {
    a == b && matches!(a, Val::Const(_) | Val::Loc(_) | Val::Cipher(_))
}

/// Cross-function value equality: only equal constants survive a frame
/// change (entry identities and stack locations are function-relative).
fn provably_same_cross(a: Val, b: Val) -> bool {
    a == b && matches!(a, Val::Const(_))
}

/// Human description of an abstract plaintext operand.
fn describe(v: Val) -> &'static str {
    match v {
        Val::Plain => "sensitive plaintext",
        Val::Key => "key material",
        Val::Unknown => "an untracked value",
        Val::Const(_) => "a constant",
        Val::Loc(_) => "a stable value",
        Val::Cipher(_) => "a ciphertext",
    }
}

/// A tweak usable for cross-function comparison (frame-independent).
fn global_tweak(tweak: TweakId) -> bool {
    matches!(
        tweak,
        TweakId::Const(_)
            | TweakId::Addr(Addr {
                base: Base::Image,
                ..
            })
    )
}

impl Lint for TweakDiversity {
    fn kind(&self) -> ViolationKind {
        ViolationKind::TweakDiversity
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let mut findings: Vec<Finding> = Vec::new();
        // One finding per site, first matching rule wins.
        let mut claimed: BTreeSet<(String, u64)> = BTreeSet::new();
        let claim = |claimed: &mut BTreeSet<(String, u64)>,
                     findings: &mut Vec<Finding>,
                     function: &str,
                     offset: u64,
                     detail: String| {
            if claimed.insert((function.to_owned(), offset)) {
                findings.push(Finding {
                    function: function.to_owned(),
                    violation: RawViolation {
                        kind: ViolationKind::TweakDiversity,
                        offset,
                        detail,
                    },
                });
            }
        };

        // Rule 1: same (key, tweak) pair reused within one function.
        for (function, events) in ctx.facts {
            let mut groups: BTreeMap<(regvault_isa::KeyReg, TweakId), Vec<(u64, Val)>> =
                BTreeMap::new();
            for event in events {
                if let Event::Cre {
                    offset,
                    key,
                    tweak: Some(tweak),
                    plain,
                    ..
                } = *event
                {
                    groups
                        .entry((key, tweak))
                        .or_default()
                        .push((offset, plain));
                }
            }
            for ((key, tweak), sites) in &groups {
                let (_, first_plain) = sites[0];
                for &(offset, plain) in &sites[1..] {
                    if !provably_same(first_plain, plain) {
                        claim(
                            &mut claimed,
                            &mut findings,
                            function,
                            offset,
                            format!(
                                "cre under key `{key}` reuses tweak {tweak} already used earlier in this function across possibly distinct plaintexts ({} vs {}) — identical (key, tweak) pairs enable a ciphertext dictionary",
                                describe(first_plain),
                                describe(plain)
                            ),
                        );
                    }
                }
            }
        }

        // Rule 2: loop-invariant tweak over varying plaintext.
        for (function, events) in ctx.facts {
            for event in events {
                if let Event::Cre {
                    offset,
                    key,
                    tweak: Some(tweak),
                    plain,
                    in_loop: true,
                } = *event
                {
                    if matches!(plain, Val::Plain | Val::Unknown) {
                        claim(
                            &mut claimed,
                            &mut findings,
                            function,
                            offset,
                            format!(
                                "cre under key `{key}` executes in a loop with loop-invariant tweak {tweak} over varying plaintext — iterations encrypting equal values produce equal ciphertext (dictionary/reuse channel)"
                            ),
                        );
                    }
                }
            }
        }

        // Rule 3: a frame-independent tweak shared across functions.
        let mut global: GlobalSites = BTreeMap::new();
        for (function, events) in ctx.facts {
            for event in events {
                if let Event::Cre {
                    offset,
                    key,
                    tweak: Some(tweak),
                    plain,
                    ..
                } = *event
                {
                    if global_tweak(tweak) {
                        global.entry((key, tweak)).or_default().push((
                            function.clone(),
                            offset,
                            plain,
                        ));
                    }
                }
            }
        }
        for ((key, tweak), sites) in &global {
            let functions: BTreeSet<&str> = sites.iter().map(|(f, _, _)| f.as_str()).collect();
            if functions.len() < 2 {
                continue;
            }
            let (first_fn, _, first_plain) = &sites[0];
            for (function, offset, plain) in &sites[1..] {
                if function != first_fn && !provably_same_cross(*first_plain, *plain) {
                    claim(
                        &mut claimed,
                        &mut findings,
                        function,
                        *offset,
                        format!(
                            "cre under key `{key}` uses tweak {tweak}, which `{first_fn}` also encrypts under — cross-function (key, tweak) sharing enables a ciphertext dictionary"
                        ),
                    );
                }
            }
        }

        findings
    }
}
