//! Control-flow-graph reconstruction from decoded machine code.
//!
//! Functions are linear byte extents (derived from assembler symbols); the
//! CFG splits an extent into basic blocks at branch targets and after
//! control-transfer instructions, and resolves intra-function successor
//! edges. Calls (`jal ra, ...` / `jalr ra, ...`) are *not* edges — the
//! dataflow models their clobber effect instead — and branch or jump targets
//! outside the function extent are treated as tail exits.

use regvault_isa::decode::decode;
use regvault_isa::{Insn, Reg};

/// A function extent inside an image: `[start, end)` byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRegion {
    /// Symbol name.
    pub name: String,
    /// First byte offset (inclusive).
    pub start: u64,
    /// One past the last byte offset (exclusive).
    pub end: u64,
}

/// Derives function extents from an assembler symbol table.
///
/// Local block labels (prefix `.L`) are skipped; every other symbol opens a
/// region that runs to the next symbol or to `image_len`. Symbols named in
/// `exclude` (e.g. data globals emitted before code) are dropped.
#[must_use]
pub fn regions_from_symbols<'a, I>(symbols: I, image_len: u64, exclude: &[&str]) -> Vec<FuncRegion>
where
    I: IntoIterator<Item = (&'a String, &'a u64)>,
{
    let mut named: Vec<(String, u64)> = symbols
        .into_iter()
        .filter(|(name, _)| !name.starts_with(".L"))
        .map(|(name, &off)| (name.clone(), off))
        .collect();
    named.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    // A boundary at *any* non-local symbol (even an excluded data one) ends
    // the previous region, so code regions never swallow trailing data.
    let mut regions = Vec::with_capacity(named.len());
    for (i, (name, start)) in named.iter().enumerate() {
        if exclude.contains(&name.as_str()) {
            continue;
        }
        let end = named
            .get(i + 1)
            .map_or(image_len, |(_, next_start)| *next_start);
        if end > *start {
            regions.push(FuncRegion {
                name: name.clone(),
                start: *start,
                end,
            });
        }
    }
    regions
}

/// How an instruction ends a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ender {
    /// Conditional branch: taken target + fallthrough.
    Branch(i64),
    /// Unconditional jump (`jal zero` / `j`): target only.
    Jump(i64),
    /// A call (`jal ra` / `jalr ra`): fallthrough only, clobbers registers.
    Call,
    /// Indirect jump that is not a call (`jalr zero`, i.e. `ret`): no
    /// intra-function successors.
    IndirectExit,
    /// Trap/stop (`ebreak`, `mret`, `sret`, `ecall` is NOT one): no
    /// successors.
    Stop,
}

/// Classifies whether `insn` ends a basic block, and how.
#[must_use]
pub fn ender(insn: &Insn) -> Option<Ender> {
    match *insn {
        Insn::Jal { rd, offset } => {
            if rd == Reg::Zero {
                Some(Ender::Jump(i64::from(offset)))
            } else {
                Some(Ender::Call)
            }
        }
        Insn::Jalr { rd, .. } => {
            if rd == Reg::Zero {
                Some(Ender::IndirectExit)
            } else {
                Some(Ender::Call)
            }
        }
        Insn::Branch { offset, .. } => Some(Ender::Branch(i64::from(offset))),
        Insn::Ebreak | Insn::Mret | Insn::Sret => Some(Ender::Stop),
        _ => None,
    }
}

/// A basic block: a run of instructions plus successor block indices.
#[derive(Debug, Clone)]
pub struct Block {
    /// `(image_offset, insn)` pairs in program order.
    pub insns: Vec<(u64, Insn)>,
    /// Indices of successor blocks within the owning [`Cfg`].
    pub succs: Vec<usize>,
}

/// A reconstructed per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks; block 0 is the function entry.
    pub blocks: Vec<Block>,
}

/// Marks each block that sits on a CFG cycle (reachable from itself).
///
/// Used by the tweak-diversity lint: a `cre` site inside a cycle may execute
/// many times per function activation, so a loop-invariant tweak means
/// ciphertext reuse across iterations.
#[must_use]
pub fn cyclic_blocks(cfg: &Cfg) -> Vec<bool> {
    let n = cfg.blocks.len();
    let mut cyclic = vec![false; n];
    for (start, flag) in cyclic.iter_mut().enumerate() {
        // BFS from the successors of `start`: can we get back to `start`?
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = cfg.blocks[start].succs.clone();
        while let Some(b) = queue.pop() {
            if b == start {
                *flag = true;
                break;
            }
            if !seen[b] {
                seen[b] = true;
                queue.extend(cfg.blocks[b].succs.iter().copied());
            }
        }
    }
    cyclic
}

/// A word inside a function extent that did not decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeFailure {
    /// Byte offset of the undecodable word.
    pub offset: u64,
    /// The raw word.
    pub word: u32,
}

/// Builds the CFG for the bytes of `region` within `image`.
///
/// # Errors
///
/// Returns the first [`DecodeFailure`] if any word in the extent does not
/// decode — callers decide whether that is a violation (compiler output) or
/// evidence the region is data (hand-written images).
pub fn build(image: &[u8], region: &FuncRegion) -> Result<Cfg, DecodeFailure> {
    let start = region.start as usize;
    let end = (region.end as usize).min(image.len());
    let mut insns = Vec::new();
    let mut off = start;
    while off + 4 <= end {
        let word = u32::from_le_bytes(image[off..off + 4].try_into().expect("4-byte slice"));
        let insn = decode(word).map_err(|_| DecodeFailure {
            offset: off as u64,
            word,
        })?;
        insns.push((off as u64, insn));
        off += 4;
    }

    // Leaders: function entry, branch/jump targets inside the extent, and
    // the instruction after any block ender.
    let in_extent = |target: i64| -> Option<u64> {
        let t = u64::try_from(target).ok()?;
        (t >= region.start && t < region.end && t % 4 == 0).then_some(t)
    };
    let mut leaders: Vec<u64> = vec![region.start];
    for &(at, ref insn) in &insns {
        match ender(insn) {
            Some(Ender::Branch(delta)) => {
                if let Some(t) = in_extent(at as i64 + delta) {
                    leaders.push(t);
                }
                leaders.push(at + 4);
            }
            Some(Ender::Jump(delta)) => {
                if let Some(t) = in_extent(at as i64 + delta) {
                    leaders.push(t);
                }
                leaders.push(at + 4);
            }
            Some(Ender::Call) => leaders.push(at + 4),
            Some(Ender::IndirectExit | Ender::Stop) => leaders.push(at + 4),
            None => {}
        }
    }
    leaders.sort_unstable();
    leaders.dedup();
    leaders.retain(|&l| l < region.end);

    // Slice the instruction run into blocks at leader offsets.
    let mut blocks: Vec<Block> = Vec::new();
    let mut block_of: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut current: Option<Block> = None;
    for &(at, insn) in &insns {
        if leaders.binary_search(&at).is_ok() {
            if let Some(done) = current.take() {
                blocks.push(done);
            }
            block_of.insert(at, blocks.len());
            current = Some(Block {
                insns: Vec::new(),
                succs: Vec::new(),
            });
        }
        if let Some(block) = current.as_mut() {
            block.insns.push((at, insn));
        }
    }
    if let Some(done) = current.take() {
        blocks.push(done);
    }

    // Resolve successor edges.
    for block in &mut blocks {
        let Some(&(at, last)) = block.insns.last() else {
            continue;
        };
        let mut succs = Vec::new();
        let mut push = |target: u64, block_of: &std::collections::BTreeMap<u64, usize>| {
            if let Some(&b) = block_of.get(&target) {
                succs.push(b);
            }
        };
        match ender(&last) {
            Some(Ender::Branch(delta)) => {
                if let Some(t) = in_extent(at as i64 + delta) {
                    push(t, &block_of);
                }
                push(at + 4, &block_of);
            }
            Some(Ender::Jump(delta)) => {
                if let Some(t) = in_extent(at as i64 + delta) {
                    push(t, &block_of);
                }
            }
            Some(Ender::Call) | None => push(at + 4, &block_of),
            Some(Ender::IndirectExit | Ender::Stop) => {}
        }
        succs.dedup();
        block.succs = succs;
    }

    Ok(Cfg { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regvault_isa::asm::assemble;

    fn region_of(program: &regvault_isa::asm::Program, name: &str) -> FuncRegion {
        let regions =
            regions_from_symbols(program.symbols().iter(), program.bytes().len() as u64, &[]);
        regions.into_iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let program = assemble(
            "f:
             addi a0, a0, 1
             addi a0, a0, 2
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn diamond_control_flow() {
        let program = assemble(
            "f:
             bne a0, zero, .L_f_then
             addi a1, zero, 1
             j .L_f_join
             .L_f_then:
             addi a1, zero, 2
             .L_f_join:
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        assert_eq!(cfg.blocks.len(), 4);
        // Entry branches to then + fallthrough.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        // Join block has no successors (ret).
        assert!(cfg.blocks.last().unwrap().succs.is_empty());
    }

    #[test]
    fn loops_form_back_edges() {
        let program = assemble(
            "f:
             addi a1, zero, 0
             .L_f_loop:
             addi a1, a1, 1
             blt a1, a0, .L_f_loop
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        // Loop block must list itself as a successor.
        let looping = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.contains(&i));
        assert!(looping);
    }

    #[test]
    fn calls_fall_through_without_target_edge() {
        let program = assemble(
            "f:
             call g
             ret
             g:
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
    }

    #[test]
    fn jalr_tail_call_ends_the_block_without_successors() {
        // `jr t0` is an indirect tail call: the block ends, there is no
        // fallthrough edge, and the following code is a separate block only
        // if it is a branch target.
        let program = assemble(
            "f:
             la t0, g
             jr t0
             g:
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        let (_, last) = *cfg.blocks[0].insns.last().unwrap();
        assert_eq!(ender(&last), Some(Ender::IndirectExit));
    }

    #[test]
    fn direct_tail_jump_out_of_extent_has_no_edge() {
        // `j g` with g outside the extent: block ends, no intra-function
        // successor (the target belongs to another region).
        let program = assemble(
            "f:
             addi a0, a0, 1
             j g
             g:
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn cyclic_blocks_marks_only_loop_members() {
        let program = assemble(
            "f:
             addi a1, zero, 0
             .L_f_loop:
             addi a1, a1, 1
             blt a1, a0, .L_f_loop
             ret",
        )
        .unwrap();
        let cfg = build(program.bytes(), &region_of(&program, "f")).unwrap();
        let cyclic = cyclic_blocks(&cfg);
        // Exactly the self-looping block is cyclic; entry and exit are not.
        let marked: Vec<usize> = cyclic
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i))
            .collect();
        assert_eq!(marked.len(), 1);
        assert!(cfg.blocks[marked[0]].succs.contains(&marked[0]));
    }

    #[test]
    fn regions_skip_local_labels_and_excludes() {
        let program = assemble(
            "glob: .dword 7
             f:
             ret",
        )
        .unwrap();
        let regions = regions_from_symbols(
            program.symbols().iter(),
            program.bytes().len() as u64,
            &["glob"],
        );
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].name, "f");
        assert_eq!(regions[0].start, 8);
    }

    #[test]
    fn undecodable_word_is_reported() {
        let region = FuncRegion {
            name: "f".into(),
            start: 0,
            end: 4,
        };
        let err = build(&0xFFFF_FFFFu32.to_le_bytes(), &region).unwrap_err();
        assert_eq!(err.offset, 0);
    }
}
