//! The protection manifest: what the compiler promised, for the verifier to
//! check against what the binary delivers.
//!
//! The manifest is deliberately minimal — it does not describe *where*
//! crypto must appear (the dataflow derives that), only (a) which registers
//! carry sensitive plaintext at function entry (seeding the taint), and (b)
//! a lower bound on the `cre`/`crd` population per function so that whole
//! protection sites cannot silently vanish (e.g. a dead-code pass deleting
//! an `Encrypt`).

use std::collections::BTreeMap;

use regvault_isa::Reg;

/// Per-function expectations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnExpect {
    /// Registers that hold sensitive plaintext when the function is entered
    /// (`ra` under RA protection; argument registers carrying sensitive
    /// parameters under spill protection).
    pub entry_sensitive: Vec<Reg>,
    /// Minimum number of `cre` instructions the function must contain.
    pub min_cre: usize,
    /// Minimum number of `crd` instructions the function must contain.
    pub min_crd: usize,
}

/// What the compiler promised about an image, keyed by function symbol.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtectionManifest {
    /// Expectations per function symbol. Functions absent from the map are
    /// verified with empty expectations (dataflow invariants still apply).
    pub functions: BTreeMap<String, FnExpect>,
    /// Symbols that are data, not code (excluded from CFG construction).
    pub data_symbols: Vec<String>,
    /// Data symbols holding raw key material. Also excluded from CFG
    /// construction; in interprocedural mode, loads from these extents are
    /// tracked as key taint by the raw-key-flow lint.
    pub key_symbols: Vec<String>,
}

impl ProtectionManifest {
    /// The expectations for `function`, or the empty default.
    #[must_use]
    pub fn expect_for(&self, function: &str) -> FnExpect {
        self.functions.get(function).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_functions_get_empty_expectations() {
        let manifest = ProtectionManifest::default();
        let expect = manifest.expect_for("nope");
        assert!(expect.entry_sensitive.is_empty());
        assert_eq!(expect.min_cre, 0);
    }
}
