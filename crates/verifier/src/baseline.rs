//! The findings baseline: a committed inventory of known findings that the
//! CI ratchet compares fresh reports against.
//!
//! The ratchet's contract is monotone improvement: a verification run fails
//! only when it produces a finding whose `(image, kind, fingerprint)` key is
//! *not* in the baseline. Fixing findings never breaks the build (stale
//! baseline entries are reported as "resolved" so the baseline can be
//! re-generated), while any *new* finding — a fresh tweak-reuse site, a new
//! raw-key load — fails it. Fingerprints exclude byte offsets (see
//! [`crate::diag::Report::finalize`]), so recompiling with unrelated code
//! motion does not churn the file.
//!
//! File format (line-oriented, diff-friendly, sorted):
//!
//! ```text
//! # regvault verifier baseline v1
//! <image> <kind> <function> <fingerprint>
//! ```

use std::collections::BTreeSet;

use crate::diag::Report;

/// Header line identifying the baseline format.
pub const HEADER: &str = "# regvault verifier baseline v1";

/// A parsed baseline: the set of accepted `(image, kind, fingerprint)` keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted findings as `(image, kind-id, function, fingerprint)` rows.
    /// Matching ignores the function column (it is informational), but rows
    /// keep it so the file stays human-auditable.
    pub entries: BTreeSet<(String, String, String, String)>,
}

/// A violation of the ratchet found by [`Baseline::check`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NewFinding {
    /// Image label the finding appeared in.
    pub image: String,
    /// Violation kind id.
    pub kind: String,
    /// Function the finding is anchored in.
    pub function: String,
    /// The finding's fingerprint.
    pub fingerprint: String,
    /// One-line description.
    pub detail: String,
}

impl Baseline {
    /// Parses a baseline file. Blank lines and `#` comments are ignored;
    /// any other malformed line is an error (a truncated baseline must not
    /// silently accept everything).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(format!(
                    "baseline line {}: expected `<image> <kind> <function> <fingerprint>`, got `{line}`",
                    lineno + 1
                ));
            }
            entries.insert((
                fields[0].to_owned(),
                fields[1].to_owned(),
                fields[2].to_owned(),
                fields[3].to_owned(),
            ));
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from labeled reports (the `--update-baseline` path).
    #[must_use]
    pub fn from_reports(runs: &[(String, &Report)]) -> Self {
        let mut entries = BTreeSet::new();
        for (image, report) in runs {
            for v in &report.violations {
                entries.insert((
                    image.clone(),
                    v.kind.id().to_owned(),
                    v.function.clone(),
                    v.fingerprint.clone(),
                ));
            }
        }
        Baseline { entries }
    }

    /// Renders the baseline file (sorted, byte-stable).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (image, kind, function, fingerprint) in &self.entries {
            out.push_str(&format!("{image} {kind} {function} {fingerprint}\n"));
        }
        out
    }

    /// Does the baseline accept this `(image, kind, fingerprint)` finding?
    #[must_use]
    pub fn contains(&self, image: &str, kind: &str, fingerprint: &str) -> bool {
        self.entries
            .iter()
            .any(|(i, k, _, f)| i == image && k == kind && f == fingerprint)
    }

    /// Checks labeled reports against the baseline. Returns the findings not
    /// covered by it (the ratchet fails when this is non-empty) and the
    /// number of baseline entries no longer observed (resolved debt).
    #[must_use]
    pub fn check(&self, runs: &[(String, &Report)]) -> (Vec<NewFinding>, usize) {
        let mut new = Vec::new();
        let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
        for (image, report) in runs {
            for v in &report.violations {
                let kind = v.kind.id();
                seen.insert((image.clone(), kind.to_owned(), v.fingerprint.clone()));
                if !self.contains(image, kind, &v.fingerprint) {
                    new.push(NewFinding {
                        image: image.clone(),
                        kind: kind.to_owned(),
                        function: v.function.clone(),
                        fingerprint: v.fingerprint.clone(),
                        detail: v.detail.clone(),
                    });
                }
            }
        }
        let resolved = self
            .entries
            .iter()
            .filter(|(i, k, _, f)| !seen.contains(&(i.clone(), k.clone(), f.clone())))
            .count();
        new.sort();
        new.dedup();
        (new, resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Violation, ViolationKind};

    fn report_with(kind: ViolationKind, function: &str, detail: &str) -> Report {
        let mut report = Report::default();
        report.violations.push(Violation {
            kind,
            function: function.into(),
            offset: 0x40,
            insn: "sd t0, 0(sp)".into(),
            detail: detail.into(),
            context: Vec::new(),
            fingerprint: String::new(),
        });
        report.finalize();
        report
    }

    #[test]
    fn roundtrip_parse_render() {
        let report = report_with(ViolationKind::TweakDiversity, "main", "reuse");
        let runs = vec![("img".to_owned(), &report)];
        let baseline = Baseline::from_reports(&runs);
        let rendered = baseline.render();
        assert!(rendered.starts_with(HEADER));
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("img tweak-diversity main").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().entries.is_empty());
    }

    #[test]
    fn ratchet_accepts_baselined_and_flags_new() {
        let old = report_with(ViolationKind::TweakDiversity, "main", "reuse");
        let runs = vec![("img".to_owned(), &old)];
        let baseline = Baseline::from_reports(&runs);

        // Same findings: clean ratchet.
        let (new, resolved) = baseline.check(&runs);
        assert!(new.is_empty());
        assert_eq!(resolved, 0);

        // A new finding in the same image: flagged.
        let grown = report_with(ViolationKind::RawKeyFlow, "main", "key load");
        let grown_runs = vec![("img".to_owned(), &grown)];
        let (new, resolved) = baseline.check(&grown_runs);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].kind, "raw-key-flow");
        // ...and the old entry is now resolved debt, not an error.
        assert_eq!(resolved, 1);
    }

    #[test]
    fn same_fingerprint_in_another_image_is_new() {
        let report = report_with(ViolationKind::TweakDiversity, "main", "reuse");
        let baseline = Baseline::from_reports(&[("a".to_owned(), &report)]);
        let (new, _) = baseline.check(&[("b".to_owned(), &report)]);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].image, "b");
    }
}
